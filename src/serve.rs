//! `vtld serve` — the long-running label-dynamics daemon.
//!
//! The batch CLI answers one question and exits; `serve` keeps the
//! whole measurement *live*. One ingest thread pulls the chaos-injected
//! feed through the fault-tolerant collector, cuts the accepted stream
//! into sealed [`vt_store::Segment`]s, folds each one into the cached
//! [`IncrementalStudy`] partials (O(segment) per seal, under
//! `pipeline/segment` obs spans), and publishes a fresh immutable
//! snapshot after every fold. Concurrent clients query over plain
//! TCP with newline-delimited JSON and always see one epoch-consistent
//! snapshot — never a half-updated study.
//!
//! ## Snapshot semantics
//!
//! Published state lives behind `RwLock<Arc<Snapshot>>`. The ingest
//! thread builds the next snapshot off to the side and swaps the `Arc`
//! in one write; request handlers clone the `Arc` (one read-lock hit)
//! and answer every question from that pinned snapshot. Epochs start at
//! 0 (the empty study), increase by exactly 1 per folded segment, and
//! take one final step when ingestion completes, so any client's
//! observed epoch sequence is monotone.
//!
//! ## Wire protocol
//!
//! One JSON object per line, both directions. Requests:
//! `{"cmd":"status"}`, `{"cmd":"results"}`, `{"cmd":"engines"}`,
//! `{"cmd":"metrics"}`, `{"cmd":"shutdown"}`. Every response carries
//! the snapshot's `"epoch"`; malformed input gets an `"error"` member
//! instead of a dropped connection. See `DESIGN.md` §10 for the full
//! schema.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use crate::dynamics::{par, records_from_store, Collector, IncrementalStudy};
use crate::engines::EngineFleet;
use crate::model::EngineId;
use crate::obs::Obs;
use crate::sim::fault::{FaultPlan, FaultyFeed};
use crate::sim::{SimConfig, VirusTotalSim};
use crate::store::{read_segment, write_segment, PartitionStats, SegmentWriter};

/// Sample ordinals ingested per collector run (one `FaultyFeed` each);
/// several collector runs typically contribute to one sealed segment.
const INGEST_CHUNK_SAMPLES: u64 = 1_024;

/// Everything `vtld serve` needs to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Samples the simulated feed delivers before ingestion completes.
    pub samples: u64,
    /// Platform seed (fleet seed derived as in [`SimConfig::new`]).
    pub seed: u64,
    /// Reports per sealed segment (the incremental fold granularity).
    pub segment_reports: u64,
    /// Worker threads for per-segment folds.
    pub workers: usize,
    /// Bind address, e.g. `127.0.0.1:7311` (port 0 picks one).
    pub addr: String,
    /// Fault injection applied to the feed (the daemon ingests through
    /// the same collector the chaos tests exercise).
    pub plan: FaultPlan,
}

impl ServeConfig {
    /// A config with the daemon defaults: ephemeral localhost port,
    /// 20k-report segments, default worker count, and a lightly chaotic
    /// feed (1% duplicates, 5% reordering within the collector's
    /// horizon).
    pub fn new(samples: u64, seed: u64) -> Self {
        Self {
            samples,
            seed,
            segment_reports: 20_000,
            workers: par::default_workers(),
            addr: "127.0.0.1:0".to_string(),
            plan: FaultPlan::clean(seed)
                .with_duplicates(0.01)
                .with_reordering(0.05, 30),
        }
    }
}

/// One epoch-consistent view of the study, with every response
/// pre-rendered at publish time so request handling is allocation-only.
#[derive(Debug)]
struct Snapshot {
    epoch: u64,
    status: String,
    results: String,
    engines: String,
    metrics: String,
}

/// State shared between the ingest thread, the accept loop and every
/// connection handler.
struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    shutdown: AtomicBool,
    obs: Obs,
}

impl Shared {
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    fn publish(&self, snapshot: Snapshot) {
        *self.snapshot.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
    }
}

/// A running `vtld serve` daemon: ingest + accept threads, plus the
/// published snapshot they share.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ingest: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("epoch", &self.shared.current().epoch)
            .finish()
    }
}

impl Server {
    /// Binds the listener, publishes the epoch-0 (empty study)
    /// snapshot, and starts the ingest and accept threads.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(empty_snapshot(&config))),
            shutdown: AtomicBool::new(false),
            obs: Obs::new(),
        });

        let ingest = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || ingest_loop(&config, &shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            addr,
            shared,
            ingest: Some(ingest),
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// Signals shutdown: ingestion stops at the next chunk boundary and
    /// the accept loop exits. Idempotent; does not wait (see
    /// [`wait`](Self::wait)).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be parked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until both daemon threads exit (after
    /// [`shutdown`](Self::shutdown), or a client's `shutdown` command).
    pub fn wait(mut self) {
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// The epoch-0 snapshot: the finished empty study, so every query has a
/// well-formed answer before the first segment seals.
fn empty_snapshot(config: &ServeConfig) -> Snapshot {
    let fleet = EngineFleet::with_seed(config.seed ^ 0xF1EE_7000);
    let window_start = SimConfig::new(config.seed, config.samples).window_start();
    let study = IncrementalStudy::new(&fleet, window_start);
    let results = study.results(Vec::new(), Obs::noop());
    render_snapshot(
        0,
        &results,
        &fleet,
        &IngestProgress::default(),
        &Obs::noop().snapshot(),
    )
}

/// Running totals the `status` response reports alongside the study.
#[derive(Debug, Default, Clone)]
struct IngestProgress {
    segments: u64,
    samples: u64,
    reports: u64,
    accepted: u64,
    quarantined: u64,
    done: bool,
}

/// The ingest thread: simulate → chaos feed → collector → segment
/// writer → incremental fold → snapshot swap, until the feed is
/// exhausted or shutdown is requested.
fn ingest_loop(config: &ServeConfig, shared: &Shared) {
    let sim = VirusTotalSim::new(SimConfig::new(config.seed, config.samples));
    let window_start = sim.config().window_start();
    let mut study = IncrementalStudy::new(sim.fleet(), window_start).with_workers(config.workers);
    let mut writer = SegmentWriter::new(config.segment_reports.max(1));
    let mut partitions: Vec<PartitionStats> = Vec::new();
    let mut progress = IngestProgress::default();
    let mut epoch = 0u64;

    let mut fold = |segment: crate::store::Segment,
                    study: &mut IncrementalStudy,
                    partitions: &mut Vec<PartitionStats>,
                    progress: &mut IngestProgress| {
        // Round-trip the sealed segment through its checksummed on-disk
        // container: what the daemon folds is exactly what a restart
        // would recover from disk.
        let mut buf = Vec::new();
        write_segment(&segment, &mut buf).expect("in-memory segment write");
        let segment = read_segment(&mut buf.as_slice()).expect("own segment re-reads");
        merge_partitions(partitions, &segment.store().partition_stats());
        let records = records_from_store(segment.store());
        progress.segments += 1;
        progress.samples += records.len() as u64;
        progress.reports += segment.store().report_count();
        study.fold_segment(&records, &shared.obs);
        epoch += 1;
        let results = study.results(partitions.clone(), &shared.obs);
        shared.publish(render_snapshot(
            epoch,
            &results,
            sim.fleet(),
            progress,
            &shared.obs.snapshot(),
        ));
    };

    let mut start = 0u64;
    while start < config.samples && !shared.shutdown.load(Ordering::SeqCst) {
        let end = (start + INGEST_CHUNK_SAMPLES).min(config.samples);
        let feed = FaultyFeed::from_sim(&sim, start..end, config.plan);
        let outcome = Collector::default().run_with_obs(feed, &shared.obs);
        progress.accepted += outcome.stats.accepted;
        progress.quarantined += outcome.stats.quarantined;
        for (_, reports) in outcome.store.group_by_sample() {
            if let Some(segment) = writer.push_sample(&reports) {
                fold(segment, &mut study, &mut partitions, &mut progress);
            }
        }
        start = end;
    }
    if let Some(tail) = writer.finish() {
        fold(tail, &mut study, &mut partitions, &mut progress);
    }

    // Final swap marks ingestion complete in the status response.
    progress.done = true;
    epoch += 1;
    let results = study.results(partitions.clone(), &shared.obs);
    shared.publish(render_snapshot(
        epoch,
        &results,
        sim.fleet(),
        &progress,
        &shared.obs.snapshot(),
    ));
}

/// Month-wise accumulation of per-segment Table 2 accounting.
fn merge_partitions(acc: &mut Vec<PartitionStats>, seg: &[PartitionStats]) {
    for stat in seg {
        match acc.iter_mut().find(|a| a.month == stat.month) {
            Some(a) => {
                a.reports += stat.reports;
                a.raw_bytes += stat.raw_bytes;
                a.stored_bytes += stat.stored_bytes;
            }
            None => acc.push(*stat),
        }
    }
}

/// The accept loop: one handler thread per connection, until shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(stream, &shared));
    }
}

/// One client connection: newline-delimited JSON requests, each
/// answered from the snapshot current at that moment.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = respond(&line, shared);
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
        if shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            if let Ok(addr) = writer.local_addr() {
                let _ = TcpStream::connect(SocketAddr::new(addr.ip(), addr.port()));
            }
            break;
        }
    }
}

/// Routes one request line to its pre-rendered response. Returns the
/// response and whether the request asked the daemon to shut down.
fn respond(line: &str, shared: &Shared) -> (String, bool) {
    let snap = shared.current();
    let parsed = match crate::obs::json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                format!(
                    "{{\"epoch\":{},\"error\":{}}}",
                    snap.epoch,
                    json_string(&format!("bad request: {e}"))
                ),
                false,
            )
        }
    };
    match parsed.get("cmd").and_then(|c| c.as_str()) {
        Some("status") => (snap.status.clone(), false),
        Some("results") => (snap.results.clone(), false),
        Some("engines") => (snap.engines.clone(), false),
        Some("metrics") => (snap.metrics.clone(), false),
        Some("shutdown") => (
            format!("{{\"epoch\":{},\"shutting_down\":true}}", snap.epoch),
            true,
        ),
        Some(other) => (
            format!(
                "{{\"epoch\":{},\"error\":{}}}",
                snap.epoch,
                json_string(&format!("unknown command '{other}'"))
            ),
            false,
        ),
        None => (
            format!(
                "{{\"epoch\":{},\"error\":\"missing string member 'cmd'\"}}",
                snap.epoch
            ),
            false,
        ),
    }
}

// ---- response rendering ------------------------------------------------

/// JSON number for an `f64`: non-finite values have no JSON spelling
/// and render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders every response for one epoch in one place, so a snapshot can
/// never mix stages of the study.
fn render_snapshot(
    epoch: u64,
    results: &crate::dynamics::StudyResults,
    fleet: &EngineFleet,
    progress: &IngestProgress,
    metrics: &crate::obs::RunMetrics,
) -> Snapshot {
    let status = format!(
        "{{\"epoch\":{epoch},\"segments\":{},\"samples\":{},\"reports\":{},\
         \"accepted\":{},\"quarantined\":{},\"s_samples\":{},\"ingest_done\":{}}}",
        progress.segments,
        progress.samples,
        progress.reports,
        progress.accepted,
        progress.quarantined,
        results.s_samples,
        progress.done,
    );

    let c = &results.correlation_global;
    let ranks: Vec<String> = results
        .rank_stabilization
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"samples\":{},\"stabilized\":{}}}",
                r.r, r.samples, r.stabilized
            )
        })
        .collect();
    let results_json = format!(
        "{{\"epoch\":{epoch},\"dataset\":{{\"samples\":{},\"reports\":{}}},\
         \"s_samples\":{},\"s_reports\":{},\
         \"stability\":{{\"stable\":{},\"dynamic\":{}}},\
         \"window_growth\":{},\
         \"flips\":{{\"total\":{},\"up\":{},\"down\":{},\"hazard\":{}}},\
         \"correlation\":{{\"engine_count\":{},\"rows\":{},\"strong_pairs\":{},\"groups\":{}}},\
         \"rank_stabilization\":[{}]}}",
        results.dataset.total_samples(),
        results.dataset.total_reports(),
        results.s_samples,
        results.s_reports,
        results.stability.stable,
        results.stability.dynamic,
        json_f64(results.window_growth),
        results.flips.flips,
        results.flips.flips_up,
        results.flips.flips_down,
        results.flips.hazard_flips,
        c.engine_count,
        c.rows,
        c.strong_pairs.len(),
        c.groups.len(),
        ranks.join(","),
    );

    let engines: Vec<String> = (0..results.flips.engine_count)
        .map(|i| {
            let id = EngineId::new(i);
            let row = &results.flips.matrix[i];
            let flips: u64 = row.iter().map(|cell| cell.flips).sum();
            let opportunities: u64 = row.iter().map(|cell| cell.opportunities).sum();
            let ratio = if opportunities == 0 {
                0.0
            } else {
                flips as f64 / opportunities as f64
            };
            format!(
                "{{\"name\":{},\"flips\":{flips},\"opportunities\":{opportunities},\
                 \"flip_ratio\":{}}}",
                json_string(fleet.profile(id).name),
                json_f64(ratio)
            )
        })
        .collect();
    let engines_json = format!("{{\"epoch\":{epoch},\"engines\":[{}]}}", engines.join(","));

    // `RunMetrics::to_json` pretty-prints; the wire format is one line
    // per response. String values escape control characters, so every
    // literal newline in the rendering is structural whitespace.
    let metrics_json = format!(
        "{{\"epoch\":{epoch},\"metrics\":{}}}",
        metrics.to_json().replace('\n', " ")
    );

    Snapshot {
        epoch,
        status,
        results: results_json,
        engines: engines_json,
        metrics: metrics_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_helpers_guard_edge_cases() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_snapshot_renders_parseable_responses() {
        let config = ServeConfig::new(100, 7);
        let snap = empty_snapshot(&config);
        assert_eq!(snap.epoch, 0);
        for doc in [&snap.status, &snap.results, &snap.engines, &snap.metrics] {
            let v = crate::obs::json::parse(doc).expect("valid JSON");
            assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0));
        }
    }

    #[test]
    fn merge_partitions_accumulates_by_month() {
        let a = PartitionStats {
            month: None,
            reports: 3,
            raw_bytes: 30,
            stored_bytes: 10,
        };
        let mut acc = vec![a];
        merge_partitions(&mut acc.clone(), &[]);
        merge_partitions(&mut acc, &[a, a]);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].reports, 9);
        assert_eq!(acc[0].stored_bytes, 30);
    }
}
