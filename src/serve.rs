//! `vtld serve` — the long-running label-dynamics daemon, hardened.
//!
//! The batch CLI answers one question and exits; `serve` keeps the
//! whole measurement *live*, and survives what a long-running service
//! meets in practice: crashes, slow or hostile clients, and overload.
//! Three robustness layers sit on top of the PR 5 incremental engine:
//!
//! ## Crash recovery (the segment log is the WAL)
//!
//! With `--data-dir`, every sealed segment is persisted through
//! [`vt_store::SegmentDir`] — written, fsynced, renamed into place,
//! directory-fsynced — *before* it is folded or published
//! (seal → fsync → publish). On restart with `recover`, the directory
//! is scanned with the salvage reader: each slot's clean segment prefix
//! replays into the study, segments salvage cannot fully recover (and
//! everything orphaned behind them) move to `quarantine/`, and live
//! ingest resumes from the last whole-sample boundary — samples already
//! sealed are skipped, everything else (including quarantined samples)
//! is re-ingested. Because every stage's Partial algebra satisfies
//! `merge(fold(x), fold(y)) == fold(x ++ y)` bit-identically, a daemon
//! killed mid-ingest and recovered converges to a snapshot
//! bit-identical to the never-killed run's (`tests/serve_chaos.rs`).
//!
//! ## Sharded ingest fleet
//!
//! Accepted samples are partitioned by hash into [`INGEST_SLOTS`] fixed
//! slots; each slot is an independent segment stream folded by one of
//! `shards` worker threads into slot-local
//! [`crate::dynamics::StudyPartials`]. A merger thread
//! reassembles the global study by merging slot partials **in slot
//! order** — the canonical concatenation `slot 0 ++ slot 1 ++ …` — and
//! publishes the epoch-swapped `Arc<Snapshot>`. The slot count is fixed
//! (not the shard count), so the merge order, and therefore every
//! published bit, is identical at shards 1, 2 and 4.
//!
//! ## Admission control and graceful degradation
//!
//! The accept path is capped: beyond `max_clients` concurrent
//! connections, new clients get a typed `overloaded` response and are
//! closed (`serve/rejected`). Every accepted connection carries read and
//! write deadlines and a request-line length limit; slow or hostile
//! clients are evicted with a typed response (`serve/evicted`), never
//! serviced forever. The ingest queues between feeder and shard workers
//! are bounded: when folds lag, the feeder *blocks* (backpressure —
//! accepted samples are never dropped), with the high-water depth on the
//! `serve/queue_depth` gauge. Shutdown drains: the feeder seals and
//! persists in-progress segments, workers fold what is queued, and the
//! merger publishes a final snapshot before the daemon exits.
//!
//! ## Snapshot semantics
//!
//! Published state lives behind `RwLock<Arc<Snapshot>>`; handlers clone
//! the `Arc` and answer from that pinned snapshot. Epochs start at 0
//! (the empty study) and increase by at least 1 per publish; the final
//! publish (after every sealed segment has been folded and merged)
//! reports `ingest_done` when the feed was fully consumed. Any client's
//! observed epoch sequence is monotone.
//!
//! ## Wire protocol
//!
//! One JSON object per line, both directions. Requests:
//! `{"cmd":"status"}`, `{"cmd":"results"}`, `{"cmd":"engines"}`,
//! `{"cmd":"metrics"}`, `{"cmd":"fingerprint"}`, `{"cmd":"shutdown"}`.
//! Every response carries the snapshot's `"epoch"`; malformed input gets
//! an `"error"` member, overload gets `"overloaded":true`, eviction gets
//! `"evicted":true`. See `DESIGN.md` §11 for the full schema.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::dynamics::{
    par, records_from_store, Collector, IncrementalStudy, StudyPartials, StudyResults,
};
use crate::engines::EngineFleet;
use crate::model::{EngineId, SampleHash};
use crate::obs::{Counter, Gauge, Obs};
use crate::sim::fault::{FaultPlan, FaultyFeed};
use crate::sim::{SimConfig, VirusTotalSim};
use crate::store::{
    read_segment, write_segment, DurableWriter, PartitionStats, Segment, SegmentDir, SegmentWriter,
};

/// Fixed number of hash-partition slots accepted samples are routed
/// through. Slots — not shard workers — are the unit the merger
/// reassembles in order, so the published study is bit-identical at any
/// shard count; `shards` only decides how many threads fold the slot
/// streams. Fixed so a data dir written at one shard count recovers
/// correctly at another.
pub const INGEST_SLOTS: usize = 8;

/// Sample ordinals ingested per collector run (one `FaultyFeed` each);
/// several collector runs typically contribute to one sealed segment.
const INGEST_CHUNK_SAMPLES: u64 = 1_024;

/// Sealed segments allowed in flight per shard worker before the feeder
/// blocks (the backpressure bound).
const SHARD_QUEUE_SEGMENTS: usize = 4;

/// Everything `vtld serve` needs to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Samples the simulated feed delivers before ingestion completes.
    pub samples: u64,
    /// Platform seed (fleet seed derived as in [`SimConfig::new`]).
    pub seed: u64,
    /// Reports per sealed segment (the incremental fold granularity),
    /// per slot stream.
    pub segment_reports: u64,
    /// Worker threads inside each per-segment fold.
    pub workers: usize,
    /// Shard worker threads folding the slot streams (clamped to
    /// `1..=`[`INGEST_SLOTS`]).
    pub shards: usize,
    /// Bind address, e.g. `127.0.0.1:7311` (port 0 picks one).
    pub addr: String,
    /// Fault injection applied to the feed (the daemon ingests through
    /// the same collector the chaos tests exercise).
    pub plan: FaultPlan,
    /// Segment write-ahead-log directory. `None` runs in-memory (no
    /// durability, no recovery).
    pub data_dir: Option<PathBuf>,
    /// Replay the data dir's sealed segments on startup and resume
    /// ingest past them. Requires `data_dir`. Without it, a data dir
    /// that already holds segments refuses to start (instead of
    /// silently interleaving two runs' streams).
    pub recover: bool,
    /// Concurrent connections admitted before new clients are shed with
    /// a typed `overloaded` response.
    pub max_clients: usize,
    /// Per-connection read deadline: a client that sends nothing for
    /// this long is evicted (typed response, connection closed).
    pub read_timeout: Duration,
    /// Per-connection write deadline: a client that will not drain its
    /// responses is evicted.
    pub write_timeout: Duration,
    /// Maximum request line length in bytes; longer lines evict.
    pub max_line_bytes: usize,
}

impl ServeConfig {
    /// A config with the daemon defaults: ephemeral localhost port,
    /// 20k-report segments, one shard, default fold workers, 256-client
    /// cap, 10s deadlines, 64 KiB request lines, in-memory (no data
    /// dir), and a lightly chaotic feed (1% duplicates, 5% reordering
    /// within the collector's horizon).
    pub fn new(samples: u64, seed: u64) -> Self {
        Self {
            samples,
            seed,
            segment_reports: 20_000,
            workers: par::default_workers(),
            shards: 1,
            addr: "127.0.0.1:0".to_string(),
            plan: FaultPlan::clean(seed)
                .with_duplicates(0.01)
                .with_reordering(0.05, 30),
            data_dir: None,
            recover: false,
            max_clients: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
        }
    }

    /// Clamps the tunables into their valid ranges.
    fn normalized(mut self) -> Self {
        self.segment_reports = self.segment_reports.max(1);
        self.workers = self.workers.max(1);
        self.shards = self.shards.clamp(1, INGEST_SLOTS);
        self.max_clients = self.max_clients.max(1);
        self.max_line_bytes = self.max_line_bytes.max(64);
        self
    }
}

/// One epoch-consistent view of the study, with every response
/// pre-rendered at publish time so request handling is allocation-only.
#[derive(Debug)]
struct Snapshot {
    epoch: u64,
    status: String,
    results: String,
    engines: String,
    metrics: String,
    fingerprint: String,
}

/// Obs handles for the serve tier's own health metrics, registered once
/// at startup.
#[derive(Debug)]
struct ServeCounters {
    /// Connections shed at the accept gate (`serve/rejected`).
    rejected: Counter,
    /// Connections evicted mid-life — idle timeout, oversized line,
    /// stuck writes (`serve/evicted`).
    evicted: Counter,
    /// Sealed segments replayed from the data dir
    /// (`serve/recovered_segments`).
    recovered: Counter,
    /// Segment files quarantined at recovery
    /// (`serve/quarantined_segments`).
    quarantined: Counter,
    /// High-water mark of sealed segments queued between the feeder and
    /// the shard workers (`serve/queue_depth`).
    queue_depth: Gauge,
}

impl ServeCounters {
    fn register(obs: &Obs) -> Self {
        Self {
            rejected: obs.counter("serve/rejected"),
            evicted: obs.counter("serve/evicted"),
            recovered: obs.counter("serve/recovered_segments"),
            quarantined: obs.counter("serve/quarantined_segments"),
            queue_depth: obs.gauge("serve/queue_depth"),
        }
    }
}

/// Running ingest totals, updated by the feeder and the shard workers,
/// read by the merger at publish time.
#[derive(Debug, Default)]
struct Progress {
    accepted: AtomicU64,
    quarantined: AtomicU64,
    segments: AtomicU64,
    samples: AtomicU64,
    reports: AtomicU64,
    feed_done: AtomicBool,
}

/// State shared between every daemon thread and every connection
/// handler.
struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    shutdown: AtomicBool,
    obs: Obs,
    active_clients: AtomicU64,
    queue_depth: AtomicU64,
    counters: ServeCounters,
    progress: Progress,
}

impl Shared {
    fn new() -> Self {
        let obs = Obs::new();
        let counters = ServeCounters::register(&obs);
        Shared {
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                status: String::new(),
                results: String::new(),
                engines: String::new(),
                metrics: String::new(),
                fingerprint: String::new(),
            })),
            shutdown: AtomicBool::new(false),
            obs,
            active_clients: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            counters,
            progress: Progress::default(),
        }
    }

    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    fn publish(&self, snapshot: Snapshot) {
        *self.snapshot.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Slot-local accumulation the shard workers write and the merger
/// reads: the slot's merged [`StudyPartials`] plus its Table 2 store
/// accounting.
#[derive(Debug, Default)]
struct SlotState {
    partials: Option<StudyPartials>,
    partitions: Vec<PartitionStats>,
}

/// One mutex per slot — a worker updates its slot while the merger
/// walks all of them; neither holds a lock for longer than a clone.
struct SlotTable {
    slots: Vec<Mutex<SlotState>>,
}

impl SlotTable {
    fn new() -> Self {
        Self {
            slots: (0..INGEST_SLOTS).map(|_| Mutex::default()).collect(),
        }
    }
}

/// One sealed segment travelling from the feeder to a shard worker.
struct SegmentMsg {
    slot: usize,
    segment: Segment,
    /// Replayed from the data dir (already round-tripped through the
    /// on-disk container) rather than freshly sealed.
    recovered: bool,
}

/// Shard-worker → merger notifications.
enum MergeEvent {
    Folded,
    WorkerExited,
}

/// A running `vtld serve` daemon: feeder, shard fleet, merger and
/// accept threads, plus the published snapshot they share.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("epoch", &self.shared.current().epoch)
            .finish()
    }
}

impl Server {
    /// Binds the listener, opens (and on `recover` validates) the data
    /// dir, publishes the epoch-0 (empty study) snapshot, and starts
    /// the feeder, shard, merger and accept threads.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let config = config.normalized();
        let segdir = match &config.data_dir {
            Some(path) => {
                let dir = SegmentDir::open(path, INGEST_SLOTS as u32)?;
                if !config.recover && dir.has_segments()? {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!(
                            "data dir {} already holds sealed segments; \
                             restart with recovery enabled or point at a clean directory",
                            dir.root().display()
                        ),
                    ));
                }
                Some(dir)
            }
            None if config.recover => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "recovery needs a data dir to replay",
                ));
            }
            None => None,
        };

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new());
        let sim = Arc::new(VirusTotalSim::new(SimConfig::new(
            config.seed,
            config.samples,
        )));
        shared.publish(empty_snapshot(&config, sim.fleet()));
        let table = Arc::new(SlotTable::new());

        let mut threads = Vec::new();
        let (merge_tx, merge_rx) = channel::<MergeEvent>();
        let mut shard_txs: Vec<SyncSender<SegmentMsg>> = Vec::new();
        for _ in 0..config.shards {
            let (tx, rx) = sync_channel::<SegmentMsg>(SHARD_QUEUE_SEGMENTS);
            shard_txs.push(tx);
            let (sim, shared, table, merge_tx) = (
                Arc::clone(&sim),
                Arc::clone(&shared),
                Arc::clone(&table),
                merge_tx.clone(),
            );
            let fold_workers = config.workers;
            threads.push(std::thread::spawn(move || {
                shard_worker(rx, &sim, &shared, &table, &merge_tx, fold_workers)
            }));
        }
        drop(merge_tx);

        {
            let (sim, shared, table, config) = (
                Arc::clone(&sim),
                Arc::clone(&shared),
                Arc::clone(&table),
                config.clone(),
            );
            threads.push(std::thread::spawn(move || {
                merger_loop(&merge_rx, &shared, &table, &sim, &config)
            }));
        }
        {
            let (shared, config) = (Arc::clone(&shared), config.clone());
            threads.push(std::thread::spawn(move || {
                ingest_loop(&config, &shared, &sim, &shard_txs, segdir)
            }));
        }
        {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &shared, &config)
            }));
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// Signals shutdown: the feeder drains at the next boundary (sealing
    /// and persisting in-progress segments), workers fold what is
    /// queued, the merger publishes a final snapshot, and the accept
    /// loop exits. Idempotent; does not wait (see [`wait`](Self::wait)).
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
        // The accept loop may be parked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until every daemon thread exits (after
    /// [`shutdown`](Self::shutdown), feed exhaustion plus a client's
    /// `shutdown` command, or a fatal ingest error).
    pub fn wait(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The slot an accepted sample's whole trajectory is routed to. Purely
/// a function of the (well-mixed) hash, so every run at every shard
/// count routes identically.
fn slot_of(hash: SampleHash) -> usize {
    (hash.0 % INGEST_SLOTS as u128) as usize
}

/// A slot's segment writer: durable (fsync-before-sealed through the
/// data dir) or in-memory.
enum SlotWriter {
    Durable(DurableWriter),
    Memory(SegmentWriter),
}

impl SlotWriter {
    fn push_sample(
        &mut self,
        reports: &[crate::model::ScanReport],
    ) -> std::io::Result<Option<Segment>> {
        match self {
            SlotWriter::Durable(w) => w.push_sample(reports),
            SlotWriter::Memory(w) => Ok(w.push_sample(reports)),
        }
    }

    fn finish(self) -> std::io::Result<Option<Segment>> {
        match self {
            SlotWriter::Durable(w) => w.finish(),
            SlotWriter::Memory(w) => Ok(w.finish()),
        }
    }
}

/// Hands one sealed segment to its slot's shard worker, blocking when
/// the bounded queue is full (backpressure — the feed waits, accepted
/// samples are never dropped). Returns `false` if the worker is gone
/// (it panicked); the feeder then stops.
fn send_segment(shared: &Shared, senders: &[SyncSender<SegmentMsg>], msg: SegmentMsg) -> bool {
    let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
    shared.counters.queue_depth.set_max(depth);
    if senders[msg.slot % senders.len()].send(msg).is_err() {
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared.request_shutdown();
        return false;
    }
    true
}

/// The feeder thread: replay the data dir (under recovery), then
/// simulate → chaos feed → collector → hash-route → seal durably →
/// hand to the shard fleet, until the feed is exhausted or shutdown is
/// requested — at which point it drains (seals and ships in-progress
/// segments) before dropping the queues.
fn ingest_loop(
    config: &ServeConfig,
    shared: &Shared,
    sim: &Arc<VirusTotalSim>,
    senders: &[SyncSender<SegmentMsg>],
    segdir: Option<SegmentDir>,
) {
    // ---- recovery replay --------------------------------------------
    let mut sealed_hashes: HashSet<SampleHash> = HashSet::new();
    let mut next_seq = [0u64; INGEST_SLOTS];
    if let (Some(dir), true) = (&segdir, config.recover) {
        let replay = match dir.replay() {
            Ok(replay) => replay,
            Err(e) => {
                eprintln!("vtld serve: recovery replay failed: {e}");
                shared.request_shutdown();
                return;
            }
        };
        shared.counters.quarantined.add(replay.quarantined_segments);
        for (slot, segments) in replay.slots.into_iter().enumerate() {
            next_seq[slot] = segments.len() as u64;
            for segment in segments {
                for hash in segment.store().sample_hashes() {
                    sealed_hashes.insert(hash);
                }
                if !send_segment(
                    shared,
                    senders,
                    SegmentMsg {
                        slot,
                        segment,
                        recovered: true,
                    },
                ) {
                    return;
                }
            }
        }
    }

    // ---- live ingest ------------------------------------------------
    let mut writers: Vec<Option<SlotWriter>> = (0..INGEST_SLOTS)
        .map(|slot| {
            Some(match &segdir {
                Some(dir) => SlotWriter::Durable(DurableWriter::new(
                    dir.clone(),
                    slot as u32,
                    config.segment_reports,
                    next_seq[slot],
                )),
                None => SlotWriter::Memory(SegmentWriter::resuming(
                    config.segment_reports,
                    next_seq[slot],
                )),
            })
        })
        .collect();

    let mut start = 0u64;
    'feed: while start < config.samples && !shared.shutdown_requested() {
        let end = (start + INGEST_CHUNK_SAMPLES).min(config.samples);
        // Resume fast-path: a chunk whose samples were all sealed before
        // the crash needs no re-simulation at all.
        if !sealed_hashes.is_empty()
            && (start..end).all(|o| sealed_hashes.contains(&sim.population().sample(o).hash))
        {
            start = end;
            continue;
        }
        let feed = FaultyFeed::from_sim(sim, start..end, config.plan);
        let outcome = Collector::default().run_with_obs(feed, &shared.obs);
        shared
            .progress
            .accepted
            .fetch_add(outcome.stats.accepted, Ordering::SeqCst);
        shared
            .progress
            .quarantined
            .fetch_add(outcome.stats.quarantined, Ordering::SeqCst);
        for (hash, reports) in outcome.store.group_by_sample() {
            if sealed_hashes.contains(&hash) {
                continue;
            }
            let slot = slot_of(hash);
            match writers[slot]
                .as_mut()
                .expect("writer taken only at drain")
                .push_sample(&reports)
            {
                Ok(Some(segment)) => {
                    if !send_segment(
                        shared,
                        senders,
                        SegmentMsg {
                            slot,
                            segment,
                            recovered: false,
                        },
                    ) {
                        break 'feed;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("vtld serve: segment persist failed, stopping ingest: {e}");
                    shared.request_shutdown();
                    break 'feed;
                }
            }
        }
        start = end;
    }
    let completed = start >= config.samples;

    // ---- drain: seal in-progress segments, even on shutdown ---------
    for (slot, writer) in writers.iter_mut().enumerate() {
        let writer = writer.take().expect("each writer drains once");
        match writer.finish() {
            Ok(Some(segment)) => {
                send_segment(
                    shared,
                    senders,
                    SegmentMsg {
                        slot,
                        segment,
                        recovered: false,
                    },
                );
            }
            Ok(None) => {}
            Err(e) => eprintln!("vtld serve: tail segment persist failed: {e}"),
        }
    }
    if completed {
        shared.progress.feed_done.store(true, Ordering::SeqCst);
    }
    // Senders drop here: workers drain their queues and exit, and the
    // merger publishes the final snapshot once they have.
}

/// One shard worker: folds its slots' segment streams, in arrival
/// (= per-slot seal) order, into slot-local partials, and notifies the
/// merger after every fold.
fn shard_worker(
    rx: Receiver<SegmentMsg>,
    sim: &VirusTotalSim,
    shared: &Shared,
    table: &SlotTable,
    merge_tx: &Sender<MergeEvent>,
    fold_workers: usize,
) {
    let fleet = sim.fleet();
    let window_start = sim.config().window_start();
    let mut studies: HashMap<usize, IncrementalStudy<'_>> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let SegmentMsg {
            slot,
            segment,
            recovered,
        } = msg;
        // Freshly sealed segments round-trip through their checksummed
        // container before folding: what the daemon folds is exactly
        // what a restart would recover from disk. Replayed segments
        // already came through it.
        let segment = if recovered {
            segment
        } else {
            let mut buf = Vec::new();
            write_segment(&segment, &mut buf).expect("in-memory segment write");
            read_segment(&mut buf.as_slice()).expect("own segment re-reads")
        };
        let records = records_from_store(segment.store());
        let study = studies.entry(slot).or_insert_with(|| {
            IncrementalStudy::new(fleet, window_start).with_workers(fold_workers)
        });
        study.fold_segment(&records, &shared.obs);
        {
            let mut state = table.slots[slot].lock().expect("slot lock poisoned");
            state.partials = study.partials().cloned();
            merge_partitions(&mut state.partitions, &segment.store().partition_stats());
        }
        shared.progress.segments.fetch_add(1, Ordering::SeqCst);
        shared
            .progress
            .samples
            .fetch_add(records.len() as u64, Ordering::SeqCst);
        shared
            .progress
            .reports
            .fetch_add(segment.store().report_count(), Ordering::SeqCst);
        if recovered {
            shared.counters.recovered.incr();
        }
        let _ = merge_tx.send(MergeEvent::Folded);
    }
    let _ = merge_tx.send(MergeEvent::WorkerExited);
}

/// The merger thread: on every fold notification (coalescing bursts),
/// merge the slot partials in slot order, finish the study, and publish
/// the next epoch. After the whole fleet exits — every sealed segment
/// folded — publish the final snapshot, marking `ingest_done` when the
/// feed was fully consumed.
fn merger_loop(
    rx: &Receiver<MergeEvent>,
    shared: &Shared,
    table: &SlotTable,
    sim: &VirusTotalSim,
    config: &ServeConfig,
) {
    let fleet = sim.fleet();
    let mut epoch = 0u64;
    let mut exited = 0usize;
    while exited < config.shards {
        let Ok(first) = rx.recv() else { break };
        let mut folded = false;
        for event in std::iter::once(first).chain(std::iter::from_fn(|| rx.try_recv().ok())) {
            match event {
                MergeEvent::Folded => folded = true,
                MergeEvent::WorkerExited => exited += 1,
            }
        }
        if folded && exited < config.shards {
            epoch += 1;
            publish_merged(epoch, false, shared, table, sim, config);
        }
    }
    // Final publish: every sealed segment has been folded and merged.
    epoch += 1;
    let done = shared.progress.feed_done.load(Ordering::SeqCst);
    publish_merged(epoch, done, shared, table, sim, config);
    let _ = fleet;
}

/// Merges the slot partials in canonical slot order and publishes the
/// rendered snapshot.
fn publish_merged(
    epoch: u64,
    done: bool,
    shared: &Shared,
    table: &SlotTable,
    sim: &VirusTotalSim,
    config: &ServeConfig,
) {
    let mut acc: Option<StudyPartials> = None;
    let mut partitions: Vec<PartitionStats> = Vec::new();
    for slot in &table.slots {
        let state = slot.lock().expect("slot lock poisoned");
        if let Some(partials) = &state.partials {
            acc = Some(match acc {
                None => partials.clone(),
                Some(earlier) => earlier.merge(partials.clone()),
            });
        }
        merge_partitions(&mut partitions, &state.partitions);
    }
    let results = match acc {
        Some(partials) => partials.finish(partitions, &shared.obs),
        None => IncrementalStudy::new(sim.fleet(), sim.config().window_start())
            .results(partitions, &shared.obs),
    };
    let view = StatusView::collect(shared, done, config.shards);
    shared.publish(render_snapshot(
        epoch,
        &results,
        sim.fleet(),
        &view,
        &shared.obs.snapshot(),
    ));
}

/// Month-wise accumulation of per-segment Table 2 accounting.
fn merge_partitions(acc: &mut Vec<PartitionStats>, seg: &[PartitionStats]) {
    for stat in seg {
        match acc.iter_mut().find(|a| a.month == stat.month) {
            Some(a) => {
                a.reports += stat.reports;
                a.raw_bytes += stat.raw_bytes;
                a.stored_bytes += stat.stored_bytes;
            }
            None => acc.push(*stat),
        }
    }
}

/// The epoch-0 snapshot: the finished empty study, so every query has a
/// well-formed answer before the first segment folds.
fn empty_snapshot(config: &ServeConfig, fleet: &EngineFleet) -> Snapshot {
    let window_start = SimConfig::new(config.seed, config.samples).window_start();
    let study = IncrementalStudy::new(fleet, window_start);
    let results = study.results(Vec::new(), Obs::noop());
    render_snapshot(
        0,
        &results,
        fleet,
        &StatusView::empty(config.shards),
        &Obs::noop().snapshot(),
    )
}

// ---- connection handling -----------------------------------------------

/// The accept loop: admission-controlled, one handler thread per
/// admitted connection, until shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, config: &ServeConfig) {
    for stream in listener.incoming() {
        if shared.shutdown_requested() {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.active_clients.load(Ordering::SeqCst) >= config.max_clients as u64 {
            shed_connection(stream, shared, config);
            continue;
        }
        shared.active_clients.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let config = config.clone();
        std::thread::spawn(move || {
            // Decrement even if the handler panics, so one bad
            // connection can never wedge the admission gate.
            struct Guard(Arc<Shared>);
            impl Drop for Guard {
                fn drop(&mut self) {
                    self.0.active_clients.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let guard = Guard(Arc::clone(&shared));
            handle_connection(stream, &shared, &config);
            drop(guard);
        });
    }
}

/// Sheds one connection at the admission gate with a typed `overloaded`
/// response (best effort — a client that will not even read it is
/// simply dropped).
fn shed_connection(mut stream: TcpStream, shared: &Shared, config: &ServeConfig) {
    shared.counters.rejected.incr();
    let epoch = shared.current().epoch;
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.write_all(
        format!(
            "{{\"epoch\":{epoch},\"overloaded\":true,\
             \"error\":\"overloaded: connection limit reached, retry later\"}}\n"
        )
        .as_bytes(),
    );
}

/// Why a bounded line read stopped without producing a line.
enum LineError {
    /// The line exceeded the configured byte limit.
    TooLong,
    /// The read deadline expired with no complete line.
    Timeout,
    /// Any other I/O failure (connection reset and friends).
    Io,
}

/// Reads one `\n`-terminated line of at most `max` bytes (exclusive of
/// the terminator). `Ok(None)` is EOF; a partial line truncated by EOF
/// is also EOF (there is no requester left to answer).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> Result<Option<String>, LineError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, complete) = {
            let available = match reader.fill_buf() {
                Ok([]) => return Ok(None),
                Ok(bytes) => bytes,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(LineError::Timeout)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(LineError::Io),
            };
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    (pos + 1, true)
                }
                None => {
                    buf.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if buf.len() > max {
            return Err(LineError::TooLong);
        }
        if complete {
            // Non-UTF-8 input degrades to a replacement-character string
            // that fails JSON parsing and earns a typed error response.
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

/// One client connection: newline-delimited JSON requests under read
/// and write deadlines, each answered from the snapshot current at that
/// moment; deadline or line-limit violations evict with a typed
/// response.
fn handle_connection(stream: TcpStream, shared: &Shared, config: &ServeConfig) {
    if stream
        .set_read_timeout(Some(config.read_timeout))
        .and_then(|()| stream.set_write_timeout(Some(config.write_timeout)))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        if shared.shutdown_requested() {
            break;
        }
        match read_bounded_line(&mut reader, config.max_line_bytes) {
            Ok(None) => break,
            Ok(Some(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (response, shutdown) = respond(&line, shared);
                if writer
                    .write_all(format!("{response}\n").as_bytes())
                    .is_err()
                {
                    shared.counters.evicted.incr();
                    break;
                }
                if shutdown {
                    shared.request_shutdown();
                    // Wake the accept loop so it observes the flag.
                    if let Ok(addr) = writer.local_addr() {
                        let _ = TcpStream::connect(SocketAddr::new(addr.ip(), addr.port()));
                    }
                    break;
                }
            }
            Err(LineError::TooLong) => {
                evict(&mut writer, shared, "request line exceeds the length limit");
                break;
            }
            Err(LineError::Timeout) => {
                evict(&mut writer, shared, "idle past the read deadline");
                break;
            }
            Err(LineError::Io) => break,
        }
    }
}

/// Evicts one connection with a typed response (best effort) and counts
/// it.
fn evict(writer: &mut TcpStream, shared: &Shared, reason: &str) {
    shared.counters.evicted.incr();
    let epoch = shared.current().epoch;
    let _ = writer.write_all(
        format!(
            "{{\"epoch\":{epoch},\"evicted\":true,\"error\":{}}}\n",
            json_string(&format!("connection evicted: {reason}"))
        )
        .as_bytes(),
    );
}

/// Routes one request line to its pre-rendered response. Returns the
/// response and whether the request asked the daemon to shut down.
fn respond(line: &str, shared: &Shared) -> (String, bool) {
    let snap = shared.current();
    let parsed = match crate::obs::json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                format!(
                    "{{\"epoch\":{},\"error\":{}}}",
                    snap.epoch,
                    json_string(&format!("bad request: {e}"))
                ),
                false,
            )
        }
    };
    match parsed.get("cmd").and_then(|c| c.as_str()) {
        Some("status") => (snap.status.clone(), false),
        Some("results") => (snap.results.clone(), false),
        Some("engines") => (snap.engines.clone(), false),
        Some("metrics") => (snap.metrics.clone(), false),
        Some("fingerprint") => (snap.fingerprint.clone(), false),
        Some("shutdown") => (
            format!("{{\"epoch\":{},\"shutting_down\":true}}", snap.epoch),
            true,
        ),
        Some(other) => (
            format!(
                "{{\"epoch\":{},\"error\":{}}}",
                snap.epoch,
                json_string(&format!("unknown command '{other}'"))
            ),
            false,
        ),
        None => (
            format!(
                "{{\"epoch\":{},\"error\":\"missing string member 'cmd'\"}}",
                snap.epoch
            ),
            false,
        ),
    }
}

// ---- response rendering ------------------------------------------------

/// The ingest totals one rendered snapshot reports.
#[derive(Debug, Default)]
struct StatusView {
    segments: u64,
    samples: u64,
    reports: u64,
    accepted: u64,
    quarantined: u64,
    done: bool,
    shards: usize,
    recovered_segments: u64,
    quarantined_segments: u64,
    rejected: u64,
    evicted: u64,
}

impl StatusView {
    fn collect(shared: &Shared, done: bool, shards: usize) -> Self {
        StatusView {
            segments: shared.progress.segments.load(Ordering::SeqCst),
            samples: shared.progress.samples.load(Ordering::SeqCst),
            reports: shared.progress.reports.load(Ordering::SeqCst),
            accepted: shared.progress.accepted.load(Ordering::SeqCst),
            quarantined: shared.progress.quarantined.load(Ordering::SeqCst),
            done,
            shards,
            recovered_segments: shared.counters.recovered.value(),
            quarantined_segments: shared.counters.quarantined.value(),
            rejected: shared.counters.rejected.value(),
            evicted: shared.counters.evicted.value(),
        }
    }

    fn empty(shards: usize) -> Self {
        StatusView {
            shards,
            ..StatusView::default()
        }
    }
}

/// JSON number for an `f64`: non-finite values have no JSON spelling
/// and render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// FNV-1a accumulation over a byte slice.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// The chaos-gate fingerprint of a finished study: an FNV-1a digest of
/// the Debug rendering of every result field **except** the wall-clock
/// `stage_timings` (never deterministic), plus a digest of the raw
/// `to_bits` of every Spearman plane (global + per-type), so NaN
/// payloads and signed zeros count. Two runs whose fingerprints match
/// agree on every published statistic bit for bit — this is what
/// `tests/serve_chaos.rs` compares across kill/restart and shard
/// counts.
fn study_fingerprint(results: &StudyResults) -> (u64, u64) {
    let debug = format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        results.dataset,
        results.fig1,
        results.partitions,
        results.stability,
        results.s_samples,
        results.s_reports,
        results.metrics,
        results.window_growth,
        results.intervals,
        results.categories_all,
        results.categories_pe,
        results.causes,
        results.rank_stabilization,
        results.label_stabilization_all,
        results.label_stabilization_multi,
        results.flips,
        results.correlation_global,
        results.correlation_per_type,
    );
    let mut debug_fnv = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut debug_fnv, debug.as_bytes());
    fnv1a(
        &mut debug_fnv,
        &results.window_growth.to_bits().to_le_bytes(),
    );
    let mut rho_fnv = 0xcbf2_9ce4_8422_2325u64;
    for plane in std::iter::once(&results.correlation_global).chain(&results.correlation_per_type) {
        for v in &plane.rho {
            fnv1a(&mut rho_fnv, &v.to_bits().to_le_bytes());
        }
    }
    (debug_fnv, rho_fnv)
}

/// Renders every response for one epoch in one place, so a snapshot can
/// never mix stages of the study.
fn render_snapshot(
    epoch: u64,
    results: &StudyResults,
    fleet: &EngineFleet,
    view: &StatusView,
    metrics: &crate::obs::RunMetrics,
) -> Snapshot {
    let status = format!(
        "{{\"epoch\":{epoch},\"segments\":{},\"samples\":{},\"reports\":{},\
         \"accepted\":{},\"quarantined\":{},\"s_samples\":{},\"ingest_done\":{},\
         \"shards\":{},\"recovered_segments\":{},\"quarantined_segments\":{},\
         \"rejected\":{},\"evicted\":{}}}",
        view.segments,
        view.samples,
        view.reports,
        view.accepted,
        view.quarantined,
        results.s_samples,
        view.done,
        view.shards,
        view.recovered_segments,
        view.quarantined_segments,
        view.rejected,
        view.evicted,
    );

    let c = &results.correlation_global;
    let ranks: Vec<String> = results
        .rank_stabilization
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"samples\":{},\"stabilized\":{}}}",
                r.r, r.samples, r.stabilized
            )
        })
        .collect();
    let results_json = format!(
        "{{\"epoch\":{epoch},\"dataset\":{{\"samples\":{},\"reports\":{}}},\
         \"s_samples\":{},\"s_reports\":{},\
         \"stability\":{{\"stable\":{},\"dynamic\":{}}},\
         \"window_growth\":{},\
         \"flips\":{{\"total\":{},\"up\":{},\"down\":{},\"hazard\":{}}},\
         \"correlation\":{{\"engine_count\":{},\"rows\":{},\"strong_pairs\":{},\"groups\":{}}},\
         \"rank_stabilization\":[{}]}}",
        results.dataset.total_samples(),
        results.dataset.total_reports(),
        results.s_samples,
        results.s_reports,
        results.stability.stable,
        results.stability.dynamic,
        json_f64(results.window_growth),
        results.flips.flips,
        results.flips.flips_up,
        results.flips.flips_down,
        results.flips.hazard_flips,
        c.engine_count,
        c.rows,
        c.strong_pairs.len(),
        c.groups.len(),
        ranks.join(","),
    );

    let engines: Vec<String> = (0..results.flips.engine_count)
        .map(|i| {
            let id = EngineId::new(i);
            let row = &results.flips.matrix[i];
            let flips: u64 = row.iter().map(|cell| cell.flips).sum();
            let opportunities: u64 = row.iter().map(|cell| cell.opportunities).sum();
            let ratio = if opportunities == 0 {
                0.0
            } else {
                flips as f64 / opportunities as f64
            };
            format!(
                "{{\"name\":{},\"flips\":{flips},\"opportunities\":{opportunities},\
                 \"flip_ratio\":{}}}",
                json_string(fleet.profile(id).name),
                json_f64(ratio)
            )
        })
        .collect();
    let engines_json = format!("{{\"epoch\":{epoch},\"engines\":[{}]}}", engines.join(","));

    // `RunMetrics::to_json` pretty-prints; the wire format is one line
    // per response. String values escape control characters, so every
    // literal newline in the rendering is structural whitespace.
    let metrics_json = format!(
        "{{\"epoch\":{epoch},\"metrics\":{}}}",
        metrics.to_json().replace('\n', " ")
    );

    let (debug_fnv, rho_fnv) = study_fingerprint(results);
    let fingerprint = format!(
        "{{\"epoch\":{epoch},\"ingest_done\":{},\
         \"fingerprint\":\"{debug_fnv:016x}\",\"rho_fnv\":\"{rho_fnv:016x}\"}}",
        view.done,
    );

    Snapshot {
        epoch,
        status,
        results: results_json,
        engines: engines_json,
        metrics: metrics_json,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_helpers_guard_edge_cases() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_snapshot_renders_parseable_responses() {
        let config = ServeConfig::new(100, 7);
        let fleet = EngineFleet::with_seed(config.seed ^ 0xF1EE_7000);
        let snap = empty_snapshot(&config, &fleet);
        assert_eq!(snap.epoch, 0);
        for doc in [
            &snap.status,
            &snap.results,
            &snap.engines,
            &snap.metrics,
            &snap.fingerprint,
        ] {
            let v = crate::obs::json::parse(doc).expect("valid JSON");
            assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0));
        }
        let v = crate::obs::json::parse(&snap.fingerprint).expect("valid JSON");
        assert_eq!(
            v.get("fingerprint").and_then(|f| f.as_str()).map(str::len),
            Some(16)
        );
    }

    #[test]
    fn merge_partitions_accumulates_by_month() {
        let a = PartitionStats {
            month: None,
            reports: 3,
            raw_bytes: 30,
            stored_bytes: 10,
        };
        let mut acc = vec![a];
        merge_partitions(&mut acc.clone(), &[]);
        merge_partitions(&mut acc, &[a, a]);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].reports, 9);
        assert_eq!(acc[0].stored_bytes, 30);
    }

    #[test]
    fn slot_routing_is_total_and_stable() {
        for ordinal in 0..512u64 {
            let hash = SampleHash::from_ordinal(ordinal);
            let slot = slot_of(hash);
            assert!(slot < INGEST_SLOTS);
            assert_eq!(slot, slot_of(hash), "routing must be pure");
        }
    }

    #[test]
    fn config_normalization_clamps() {
        let mut config = ServeConfig::new(10, 1);
        config.shards = 0;
        config.segment_reports = 0;
        config.max_clients = 0;
        let n = config.normalized();
        assert_eq!(n.shards, 1);
        assert_eq!(n.segment_reports, 1);
        assert_eq!(n.max_clients, 1);
        let mut config = ServeConfig::new(10, 1);
        config.shards = 64;
        assert_eq!(config.normalized().shards, INGEST_SLOTS);
    }

    #[test]
    fn fingerprint_ignores_stage_timings_only() {
        let fleet = EngineFleet::with_seed(42);
        let window_start = SimConfig::new(42, 10).window_start();
        let study = IncrementalStudy::new(&fleet, window_start);
        let mut a = study.results(Vec::new(), Obs::noop());
        let b = study.results(Vec::new(), Obs::noop());
        let fp_a = study_fingerprint(&a);
        assert_eq!(fp_a, study_fingerprint(&b), "same study, same fingerprint");
        a.s_samples += 1;
        assert_ne!(fp_a, study_fingerprint(&a), "results changes must show");
    }
}
