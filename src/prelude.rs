//! The blessed one-stop import surface.
//!
//! Everything a typical study — batch, incremental or served — touches,
//! re-exported flat so examples and downstream users write one `use`:
//!
//! ```
//! use vt_label_dynamics::prelude::*;
//!
//! let study = Study::generate(SimConfig::new(7, 500));
//! let results = study.run();
//! assert_eq!(results.dataset.total_samples(), 500);
//! ```
//!
//! The facade's per-subsystem modules ([`crate::dynamics`],
//! [`crate::store`], …) stay available for everything deeper; the
//! prelude is the stable subset whose names the project commits to.

pub use crate::aggregate::{Aggregator, Threshold};
pub use crate::dynamics::{
    analyze_records, analyze_records_obs, records_from_store, Alert, AlertConfig, AlertEngine,
    AlertKind, AlertTotals, Analysis, AnalysisCtx, Collector, CollectorConfig, DecodeArena,
    IncrementalStudy, IngestOutcome, SampleIndex, SampleRecord, SampleSummary, Study,
    StudyPartials, StudyResults, TrajectoryTable,
};
pub use crate::engines::{EngineFleet, FleetConfig};
pub use crate::model::{EngineId, FileType, ScanReport};
pub use crate::obs::{Obs, RunMetrics};
pub use crate::serve::{ServeConfig, Server};
pub use crate::sim::fault::{FaultPlan, FaultyFeed};
pub use crate::sim::{SimConfig, VirusTotalSim};
pub use crate::store::{
    read_segment, read_store, write_segment, write_store, ReportRow, ReportSink, ReportStore,
    Segment, SegmentWriter,
};
