//! The serve tier's typed wire protocol.
//!
//! Requests arrive as one JSON object per line; [`Request::parse_line`]
//! turns a raw line into a typed [`Request`] or a typed [`WireError`],
//! and the connection reactor dispatches on the enum — there is no
//! stringly `cmd` matching outside this module. Every error a malformed
//! request can earn is a [`WireError`] variant whose [`Render`] output
//! reproduces the historical error strings byte for byte (pinned by the
//! unit tests below), so the typed redesign is invisible on the wire.
//!
//! Alert bodies ([`render_alert`]) are also rendered here: one JSON
//! object per alert carrying only deterministic fields — the
//! `(slot, seq, detector, ordinal)` identity key plus the detector
//! payload in exact integers and resolved engine names — never the
//! publish epoch, so alert streams compare bit-identical across shard
//! and worker grids and across crash-recovery replays.

use crate::dynamics::alerts::{Alert, AlertKind};
use crate::dynamics::stabilization::FIG9_THRESHOLDS;
use crate::dynamics::MonitorEvent;
use crate::model::SampleHash;
use crate::obs::json::Value;

use super::json_string;

/// Largest `k` the `flip_leaders` verb will rank (the response is
/// rendered per request; an unbounded `k` would be a cheap DoS).
pub(super) const MAX_FLIP_LEADERS: u64 = 1_000;

/// One parsed request. Verbs that carry payloads validate them at parse
/// time, so dispatch never sees a half-checked member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) enum Request {
    /// `{"cmd":"status"}` — ingest totals and serve-tier counters.
    Status,
    /// `{"cmd":"results"}` — the study's headline aggregates.
    Results,
    /// `{"cmd":"engines"}` — the per-engine flip roster.
    Engines,
    /// `{"cmd":"metrics"}` — the observability snapshot.
    Metrics,
    /// `{"cmd":"fingerprint"}` — the chaos-gate study fingerprint.
    Fingerprint,
    /// `{"cmd":"shutdown"}` — ack, then stop the daemon.
    Shutdown,
    /// `{"cmd":"sample","hash":H}` — one hash's trajectory summary.
    Sample {
        /// The queried sample.
        hash: SampleHash,
    },
    /// `{"cmd":"stabilized","hash":H,"threshold":T}` — §6.2 label
    /// stabilization at one Fig. 9 threshold.
    Stabilized {
        /// The queried sample.
        hash: SampleHash,
        /// A Fig. 9 threshold (validated at parse time).
        threshold: u32,
    },
    /// `{"cmd":"engine","name":N}` — one engine's flip scorecard. The
    /// name resolves against the snapshot's roster at dispatch time
    /// (parsing cannot know the roster).
    Engine {
        /// The engine name as the client sent it.
        name: String,
    },
    /// `{"cmd":"flip_leaders","k":K}` — top-`k` samples by flip count.
    FlipLeaders {
        /// Requested leader count, clamped to [`MAX_FLIP_LEADERS`].
        k: usize,
    },
    /// `{"cmd":"alerts","since":E}` — drift alerts published after
    /// epoch `E` (`since` defaults to 0: the full retained stream).
    Alerts {
        /// Publish-epoch low-water mark (exclusive).
        since: u64,
    },
    /// `{"cmd":"subscribe"}` — switch the connection to push mode:
    /// after the ack, the daemon streams alerts as they publish.
    Subscribe,
    /// `{"cmd":"recommend"}` — the online Maat-style recommendation:
    /// the AV-Rank threshold and engine subset that would have labeled
    /// the stream most accurately so far.
    Recommend,
}

/// A typed request rejection. [`Render`] reproduces the legacy error
/// strings byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) enum WireError {
    /// The line was not valid JSON.
    BadJson(String),
    /// No string `cmd` member.
    MissingCmd,
    /// A `cmd` this protocol does not know.
    UnknownCmd(String),
    /// A per-hash verb without a string `hash` member.
    MissingHash,
    /// A `hash` member that is not 1–32 hex digits.
    BadHash(String),
    /// `stabilized` without a numeric `threshold` member.
    MissingThreshold,
    /// A `threshold` outside the Fig. 9 sweep.
    BadThreshold(u64),
    /// `engine` without a string `name` member.
    MissingName,
    /// A `k` member that is not a non-negative integer.
    BadK,
    /// A `since` member that is not a non-negative integer.
    BadSince,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadJson(e) => write!(f, "bad request: {e}"),
            WireError::MissingCmd => write!(f, "missing string member 'cmd'"),
            WireError::UnknownCmd(cmd) => write!(f, "unknown command '{cmd}'"),
            WireError::MissingHash => write!(f, "missing string member 'hash'"),
            WireError::BadHash(hex) => {
                write!(f, "bad hash '{hex}': expected 1-32 hex digits")
            }
            WireError::MissingThreshold => write!(f, "missing numeric member 'threshold'"),
            WireError::BadThreshold(t) => write!(
                f,
                "threshold {t} is not a Fig. 9 threshold; valid: {FIG9_THRESHOLDS:?}"
            ),
            WireError::MissingName => write!(f, "missing string member 'name'"),
            WireError::BadK => write!(f, "member 'k' must be a non-negative integer"),
            WireError::BadSince => write!(f, "member 'since' must be a non-negative integer"),
        }
    }
}

/// Anything the reactor writes back: rendered under the serving
/// snapshot's epoch, one JSON object per line.
pub(super) trait Render {
    /// The response body for one epoch.
    fn render(&self, epoch: u64) -> String;
}

impl Render for WireError {
    fn render(&self, epoch: u64) -> String {
        format!(
            "{{\"epoch\":{epoch},\"error\":{}}}",
            json_string(&self.to_string())
        )
    }
}

/// The `shutdown` verb's acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct ShutdownAck;

impl Render for ShutdownAck {
    fn render(&self, epoch: u64) -> String {
        format!("{{\"epoch\":{epoch},\"shutting_down\":true}}")
    }
}

/// The `subscribe` verb's acknowledgement — everything after it on the
/// connection is pushed alerts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct SubscribeAck;

impl Render for SubscribeAck {
    fn render(&self, epoch: u64) -> String {
        format!("{{\"epoch\":{epoch},\"subscribed\":true}}")
    }
}

impl Request {
    /// Parses one raw request line.
    pub(super) fn parse_line(line: &str) -> Result<Request, WireError> {
        let parsed =
            crate::obs::json::parse(line).map_err(|e| WireError::BadJson(e.to_string()))?;
        Request::parse(&parsed)
    }

    /// Parses one already-decoded JSON request.
    pub(super) fn parse(parsed: &Value) -> Result<Request, WireError> {
        let Some(cmd) = parsed.get("cmd").and_then(|c| c.as_str()) else {
            return Err(WireError::MissingCmd);
        };
        match cmd {
            "status" => Ok(Request::Status),
            "results" => Ok(Request::Results),
            "engines" => Ok(Request::Engines),
            "metrics" => Ok(Request::Metrics),
            "fingerprint" => Ok(Request::Fingerprint),
            "shutdown" => Ok(Request::Shutdown),
            "sample" => Ok(Request::Sample {
                hash: parse_hash_member(parsed)?,
            }),
            "stabilized" => {
                let hash = parse_hash_member(parsed)?;
                let Some(threshold) = parsed.get("threshold").and_then(|t| t.as_u64()) else {
                    return Err(WireError::MissingThreshold);
                };
                if !FIG9_THRESHOLDS.contains(&(threshold as u32)) {
                    return Err(WireError::BadThreshold(threshold));
                }
                Ok(Request::Stabilized {
                    hash,
                    threshold: threshold as u32,
                })
            }
            "engine" => {
                let Some(name) = parsed.get("name").and_then(|n| n.as_str()) else {
                    return Err(WireError::MissingName);
                };
                Ok(Request::Engine {
                    name: name.to_string(),
                })
            }
            "flip_leaders" => {
                let k = match parsed.get("k") {
                    None => 10,
                    Some(v) => match v.as_u64() {
                        Some(k) => k.min(MAX_FLIP_LEADERS) as usize,
                        None => return Err(WireError::BadK),
                    },
                };
                Ok(Request::FlipLeaders { k })
            }
            "alerts" => {
                let since = match parsed.get("since") {
                    None => 0,
                    Some(v) => match v.as_u64() {
                        Some(since) => since,
                        None => return Err(WireError::BadSince),
                    },
                };
                Ok(Request::Alerts { since })
            }
            "subscribe" => Ok(Request::Subscribe),
            "recommend" => Ok(Request::Recommend),
            other => Err(WireError::UnknownCmd(other.to_string())),
        }
    }
}

/// Extracts and parses the `"hash"` member: 1–32 hex digits, as
/// [`SampleHash::to_hex`] prints them.
fn parse_hash_member(parsed: &Value) -> Result<SampleHash, WireError> {
    let Some(hex) = parsed.get("hash").and_then(|h| h.as_str()) else {
        return Err(WireError::MissingHash);
    };
    if hex.is_empty() || hex.len() > 32 {
        return Err(WireError::BadHash(hex.to_string()));
    }
    u128::from_str_radix(hex, 16)
        .map(SampleHash)
        .map_err(|_| WireError::BadHash(hex.to_string()))
}

/// Resolves a dense engine index to its roster name; out-of-roster
/// indexes (possible only with a truncated name table) degrade to the
/// index spelled as a string, still deterministically.
fn engine_name(names: &[String], engine: u32) -> String {
    match names.get(engine as usize) {
        Some(name) => json_string(name),
        None => json_string(&engine.to_string()),
    }
}

/// Renders one alert body: identity key first, then the detector
/// payload. Deterministic by construction — exact integers, resolved
/// engine names, no publish epoch — so two daemons that folded the same
/// WAL render byte-identical streams regardless of shard or worker
/// counts.
pub(super) fn render_alert(alert: &Alert, names: &[String]) -> String {
    let head = format!(
        "{{\"slot\":{},\"seq\":{},\"detector\":\"{}\",\"ordinal\":{}",
        alert.slot,
        alert.seq,
        alert.detector_name(),
        alert.ordinal,
    );
    let body = match &alert.kind {
        AlertKind::EngineBurst { engine, day, flips } => format!(
            ",\"engine\":{},\"day\":{day},\"flips\":{flips}",
            engine_name(names, *engine)
        ),
        AlertKind::RateCrossover {
            overtaking,
            overtaken,
            overtaking_detections,
            overtaking_scans,
            overtaken_detections,
            overtaken_scans,
        } => format!(
            ",\"overtaking\":{},\"overtaken\":{},\
             \"overtaking_detections\":{overtaking_detections},\
             \"overtaking_scans\":{overtaking_scans},\
             \"overtaken_detections\":{overtaken_detections},\
             \"overtaken_scans\":{overtaken_scans}",
            engine_name(names, *overtaking),
            engine_name(names, *overtaken),
        ),
        AlertKind::StabilizationRegression {
            threshold,
            segment_mean_minutes,
            baseline_mean_minutes,
            segment_stabilized,
        } => format!(
            ",\"threshold\":{threshold},\
             \"segment_mean_minutes\":{segment_mean_minutes},\
             \"baseline_mean_minutes\":{baseline_mean_minutes},\
             \"segment_stabilized\":{segment_stabilized}"
        ),
        AlertKind::SampleEvent { hash, event } => {
            let event = match event {
                MonitorEvent::Stabilized {
                    at,
                    since,
                    rank_min,
                    rank_max,
                } => format!(
                    "\"event\":\"stabilized\",\"at\":{},\"since\":{},\
                     \"rank_min\":{rank_min},\"rank_max\":{rank_max}",
                    at.0, since.0
                ),
                MonitorEvent::Destabilized {
                    at,
                    rank,
                    previous_min,
                    previous_max,
                } => format!(
                    "\"event\":\"destabilized\",\"at\":{},\"rank\":{rank},\
                     \"previous_min\":{previous_min},\"previous_max\":{previous_max}",
                    at.0
                ),
                MonitorEvent::Swing {
                    at,
                    delta,
                    interval,
                } => format!(
                    "\"event\":\"swing\",\"at\":{},\"delta\":{delta},\
                     \"interval_minutes\":{}",
                    at.0, interval.0
                ),
            };
            format!(",\"hash\":\"{}\",{event}", hash.to_hex())
        }
    };
    format!("{head}{body}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::alerts::detector;
    use vt_model::time::{Duration, Timestamp};

    fn parse(line: &str) -> Result<Request, WireError> {
        Request::parse_line(line)
    }

    #[test]
    fn bare_verbs_parse() {
        assert_eq!(parse("{\"cmd\":\"status\"}"), Ok(Request::Status));
        assert_eq!(parse("{\"cmd\":\"results\"}"), Ok(Request::Results));
        assert_eq!(parse("{\"cmd\":\"engines\"}"), Ok(Request::Engines));
        assert_eq!(parse("{\"cmd\":\"metrics\"}"), Ok(Request::Metrics));
        assert_eq!(parse("{\"cmd\":\"fingerprint\"}"), Ok(Request::Fingerprint));
        assert_eq!(parse("{\"cmd\":\"shutdown\"}"), Ok(Request::Shutdown));
        assert_eq!(parse("{\"cmd\":\"subscribe\"}"), Ok(Request::Subscribe));
        assert_eq!(parse("{\"cmd\":\"recommend\"}"), Ok(Request::Recommend));
    }

    #[test]
    fn cmd_errors_render_the_legacy_strings() {
        let err = parse("{\"k\":3}").unwrap_err();
        assert_eq!(err.to_string(), "missing string member 'cmd'");
        let err = parse("{\"cmd\":\"frobnicate\"}").unwrap_err();
        assert_eq!(err.to_string(), "unknown command 'frobnicate'");
        let err = parse("not json").unwrap_err();
        assert!(err.to_string().starts_with("bad request: "), "got {err}");
        // The rendered response wraps the message under the epoch.
        assert_eq!(
            WireError::MissingCmd.render(7),
            "{\"epoch\":7,\"error\":\"missing string member 'cmd'\"}"
        );
    }

    #[test]
    fn hash_member_parses_hex_and_rejects_garbage() {
        assert_eq!(
            parse("{\"cmd\":\"sample\",\"hash\":\"ff\"}"),
            Ok(Request::Sample {
                hash: SampleHash(0xff)
            })
        );
        let full = "f".repeat(32);
        assert_eq!(
            parse(&format!("{{\"cmd\":\"sample\",\"hash\":\"{full}\"}}")),
            Ok(Request::Sample {
                hash: SampleHash(u128::MAX)
            })
        );
        assert_eq!(
            parse("{\"cmd\":\"sample\"}").unwrap_err().to_string(),
            "missing string member 'hash'"
        );
        for bad in ["", "xyz", "-1"] {
            assert_eq!(
                parse(&format!("{{\"cmd\":\"sample\",\"hash\":\"{bad}\"}}"))
                    .unwrap_err()
                    .to_string(),
                format!("bad hash '{bad}': expected 1-32 hex digits"),
            );
        }
        assert!(
            parse(&format!("{{\"cmd\":\"sample\",\"hash\":\"{full}0\"}}")).is_err(),
            "33 digits overflow"
        );
        assert!(
            parse("{\"cmd\":\"sample\",\"hash\":17}").is_err(),
            "numbers are not hex strings"
        );
        // Round-trip: to_hex output parses back to the same hash.
        let hash = SampleHash::from_ordinal(99);
        assert_eq!(
            parse(&format!(
                "{{\"cmd\":\"sample\",\"hash\":\"{}\"}}",
                hash.to_hex()
            )),
            Ok(Request::Sample { hash })
        );
    }

    #[test]
    fn stabilized_validates_the_threshold() {
        assert_eq!(
            parse("{\"cmd\":\"stabilized\",\"hash\":\"a\",\"threshold\":10}"),
            Ok(Request::Stabilized {
                hash: SampleHash(0xa),
                threshold: 10
            })
        );
        assert_eq!(
            parse("{\"cmd\":\"stabilized\",\"hash\":\"a\"}")
                .unwrap_err()
                .to_string(),
            "missing numeric member 'threshold'"
        );
        assert_eq!(
            parse("{\"cmd\":\"stabilized\",\"hash\":\"a\",\"threshold\":11}")
                .unwrap_err()
                .to_string(),
            format!("threshold 11 is not a Fig. 9 threshold; valid: {FIG9_THRESHOLDS:?}")
        );
        // The hash is validated before the threshold, as it always was.
        assert_eq!(
            parse("{\"cmd\":\"stabilized\",\"threshold\":10}")
                .unwrap_err()
                .to_string(),
            "missing string member 'hash'"
        );
    }

    #[test]
    fn engine_and_flip_leaders_payloads() {
        assert_eq!(
            parse("{\"cmd\":\"engine\",\"name\":\"Avira\"}"),
            Ok(Request::Engine {
                name: "Avira".to_string()
            })
        );
        assert_eq!(
            parse("{\"cmd\":\"engine\"}").unwrap_err().to_string(),
            "missing string member 'name'"
        );
        assert_eq!(
            parse("{\"cmd\":\"flip_leaders\"}"),
            Ok(Request::FlipLeaders { k: 10 }),
            "k defaults to 10"
        );
        assert_eq!(
            parse("{\"cmd\":\"flip_leaders\",\"k\":3}"),
            Ok(Request::FlipLeaders { k: 3 })
        );
        assert_eq!(
            parse("{\"cmd\":\"flip_leaders\",\"k\":99999999}"),
            Ok(Request::FlipLeaders {
                k: MAX_FLIP_LEADERS as usize
            }),
            "k clamps to the rank bound"
        );
        assert_eq!(
            parse("{\"cmd\":\"flip_leaders\",\"k\":\"x\"}")
                .unwrap_err()
                .to_string(),
            "member 'k' must be a non-negative integer"
        );
    }

    #[test]
    fn alerts_since_defaults_and_validates() {
        assert_eq!(
            parse("{\"cmd\":\"alerts\"}"),
            Ok(Request::Alerts { since: 0 })
        );
        assert_eq!(
            parse("{\"cmd\":\"alerts\",\"since\":17}"),
            Ok(Request::Alerts { since: 17 })
        );
        assert_eq!(
            parse("{\"cmd\":\"alerts\",\"since\":\"x\"}")
                .unwrap_err()
                .to_string(),
            "member 'since' must be a non-negative integer"
        );
    }

    #[test]
    fn acks_render_under_the_epoch() {
        assert_eq!(
            ShutdownAck.render(3),
            "{\"epoch\":3,\"shutting_down\":true}"
        );
        assert_eq!(SubscribeAck.render(4), "{\"epoch\":4,\"subscribed\":true}");
    }

    #[test]
    fn alert_bodies_render_deterministic_json() {
        let names = vec!["Alpha".to_string(), "Beta\"Quote".to_string()];
        let burst = Alert {
            slot: 2,
            seq: 5,
            detector: detector::ENGINE_BURST,
            ordinal: 0,
            kind: AlertKind::EngineBurst {
                engine: 0,
                day: 18751,
                flips: 12,
            },
        };
        assert_eq!(
            render_alert(&burst, &names),
            "{\"slot\":2,\"seq\":5,\"detector\":\"engine_burst\",\"ordinal\":0,\
             \"engine\":\"Alpha\",\"day\":18751,\"flips\":12}"
        );
        // Quotes in roster names escape; unknown indexes degrade to the
        // index as a string.
        let cross = Alert {
            slot: 0,
            seq: 1,
            detector: detector::RATE_CROSSOVER,
            ordinal: 3,
            kind: AlertKind::RateCrossover {
                overtaking: 1,
                overtaken: 77,
                overtaking_detections: 10,
                overtaking_scans: 100,
                overtaken_detections: 9,
                overtaken_scans: 100,
            },
        };
        let rendered = render_alert(&cross, &names);
        assert!(
            rendered.contains("\"overtaking\":\"Beta\\\"Quote\""),
            "{rendered}"
        );
        assert!(rendered.contains("\"overtaken\":\"77\""), "{rendered}");
        let event = Alert {
            slot: 7,
            seq: 9,
            detector: detector::SAMPLE_EVENT,
            ordinal: 1,
            kind: AlertKind::SampleEvent {
                hash: SampleHash(0xabc),
                event: MonitorEvent::Swing {
                    at: Timestamp(1000),
                    delta: 15,
                    interval: Duration(30),
                },
            },
        };
        assert_eq!(
            render_alert(&event, &names),
            "{\"slot\":7,\"seq\":9,\"detector\":\"sample_event\",\"ordinal\":1,\
             \"hash\":\"00000000000000000000000000000abc\",\
             \"event\":\"swing\",\"at\":1000,\"delta\":15,\"interval_minutes\":30}"
        );
        // Every body parses as standalone JSON.
        for body in [
            render_alert(&burst, &names),
            render_alert(&cross, &names),
            render_alert(&event, &names),
        ] {
            crate::obs::json::parse(&body).expect("alert bodies are valid JSON");
        }
    }
}
