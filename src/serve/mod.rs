//! `vtld serve` — the long-running label-dynamics daemon, hardened.
//!
//! The batch CLI answers one question and exits; `serve` keeps the
//! whole measurement *live*, and survives what a long-running service
//! meets in practice: crashes, slow or hostile clients, and overload.
//! Three robustness layers sit on top of the PR 5 incremental engine:
//!
//! ## Crash recovery (the segment log is the WAL)
//!
//! With `--data-dir`, every sealed segment is persisted through
//! [`vt_store::SegmentDir`] — written, fsynced, renamed into place,
//! directory-fsynced — *before* it is folded or published
//! (seal → fsync → publish). On restart with `recover`, the directory
//! is scanned with the salvage reader: each slot's clean segment prefix
//! replays into the study, segments salvage cannot fully recover (and
//! everything orphaned behind them) move to `quarantine/`, and live
//! ingest resumes from the last whole-sample boundary — samples already
//! sealed are skipped, everything else (including quarantined samples)
//! is re-ingested. Because every stage's Partial algebra satisfies
//! `merge(fold(x), fold(y)) == fold(x ++ y)` bit-identically, a daemon
//! killed mid-ingest and recovered converges to a snapshot
//! bit-identical to the never-killed run's (`tests/serve_chaos.rs`).
//!
//! ## Sharded ingest fleet
//!
//! Accepted samples are partitioned by hash into [`INGEST_SLOTS`] fixed
//! slots; each slot is an independent segment stream folded by one of
//! `shards` worker threads into slot-local
//! [`crate::dynamics::StudyPartials`]. A merger thread reassembles the
//! global study through a [`SlotMergeTree`] — a fixed-shape binary
//! merge tree over the slots whose cached internal nodes make each
//! publish O(changed-slot): a fold that touched one slot re-merges only
//! that leaf's log₂([`INGEST_SLOTS`]) path to the root, and the other
//! slots' partials are not even cloned. The tree's in-order leaf walk
//! is the canonical concatenation `slot 0 ++ slot 1 ++ …`, so the root
//! equals the flat slot-order merge bit for bit, and every published
//! bit is identical at shards 1, 2 and 4. The merger then finishes the
//! cached root and publishes the epoch-swapped `Arc<Snapshot>`.
//!
//! ## Admission control and graceful degradation
//!
//! The accept path is capped: beyond `max_clients` concurrent
//! connections, new clients get a typed `overloaded` response and are
//! closed (`serve/rejected`). Every accepted connection carries read and
//! write deadlines and a request-line length limit; slow or hostile
//! clients are evicted with a typed response (`serve/evicted`), never
//! serviced forever. The ingest queues between feeder and shard workers
//! are bounded: when folds lag, the feeder *blocks* (backpressure —
//! accepted samples are never dropped), with the high-water depth on the
//! `serve/queue_depth` gauge. Shutdown drains: the feeder seals and
//! persists in-progress segments, workers fold what is queued, and the
//! merger publishes a final snapshot before the daemon exits.
//!
//! ## Snapshot semantics
//!
//! Published state lives behind `RwLock<Arc<Snapshot>>`; handlers clone
//! the `Arc` and answer from that pinned snapshot. Epochs start at 0
//! (the empty study) and increase by at least 1 per publish; the final
//! publish (after every sealed segment has been folded and merged)
//! reports `ingest_done` when the feed was fully consumed. Any client's
//! observed epoch sequence is monotone.
//!
//! ## Per-hash queries (the sample index)
//!
//! Each shard worker folds a [`crate::dynamics::SampleIndex`] alongside
//! its slot's `StudyPartials`; the published `Arc<Snapshot>` carries
//! one index `Arc` **per slot** (a publish replaces only the dirty
//! slots' pointers — slot indexes are never merged), and per-hash
//! verbs route straight to `slot_of(hash)`'s index — so a per-hash
//! answer is always rendered from exactly the data its epoch's
//! aggregates summarize. Unlike the four aggregate responses, per-hash
//! responses are rendered lazily per request behind a bounded LRU cache
//! keyed by the canonical request; entries are stamped with the epoch
//! their *slot* last changed at, so an epoch swap invalidates only the
//! answers whose slot actually republished — a hot sample in an
//! untouched slot stays cached across swaps (its epoch member is
//! spliced to the live epoch at serve time), and a cached answer can
//! never leak stale data across a swap.
//!
//! ## Drift alerting (streaming detectors over the segment folds)
//!
//! When alerting is on (the default), every shard worker's
//! [`IncrementalStudy`] carries a slot-local
//! [`crate::dynamics::AlertEngine`]: four streaming detectors (engine
//! model-update bursts, detection-rate crossovers, stabilization-time
//! regressions, per-sample [`crate::dynamics::SampleMonitor`] events)
//! observing each sealed segment's delta as it folds. Alerts are keyed
//! `(slot, seq, detector, ordinal)` — a pure function of the WAL, so
//! the stream is bit-identical at any shard × worker count and across
//! crash-recovery replay. The merger pulls each dirty slot's new alerts
//! at publish (tracked by a per-slot high-water key), stamps them with
//! the publish epoch, and ships a key-sorted, capped ring on every
//! `Arc<Snapshot>`; clients pull with `{"cmd":"alerts","since":E}` or
//! switch the connection to push mode with `{"cmd":"subscribe"}`.
//! Workers also hand fresh batches straight to the connector sinks
//! ([`sink`]): a JSONL file (`--alerts-out`, exactly-once across
//! recovery via content dedup) and a webhook-shaped TCP endpoint
//! (`--alerts-tcp`, at-most-once with retry/backoff). The
//! `{"cmd":"recommend"}` verb caps it with a Maat-style online
//! recommendation — the Fig. 9 AV-Rank threshold and engine subset that
//! would have labeled the stream most accurately, from the §6
//! stabilization masks already in the slot indexes.
//!
//! ## Wire protocol
//!
//! One JSON object per line, both directions, parsed into the typed
//! [`wire::Request`] enum (see [`wire`] — every legacy error string is
//! preserved byte for byte). Requests:
//! `{"cmd":"status"}`, `{"cmd":"results"}`, `{"cmd":"engines"}`,
//! `{"cmd":"metrics"}`, `{"cmd":"fingerprint"}`, `{"cmd":"shutdown"}`,
//! the per-hash verbs `{"cmd":"sample","hash":H}`,
//! `{"cmd":"stabilized","hash":H,"threshold":T}`,
//! `{"cmd":"engine","name":N}` and `{"cmd":"flip_leaders","k":K}`,
//! plus the alerting verbs `{"cmd":"alerts","since":E}`,
//! `{"cmd":"subscribe"}` and `{"cmd":"recommend"}`.
//! Every response carries the snapshot's `"epoch"`; malformed input gets
//! an `"error"` member, overload gets `"overloaded":true`, eviction gets
//! `"evicted":true`, and responses rendered after a slot lock was
//! poisoned carry `"degraded":true`. See `DESIGN.md` §§11–12 and §15
//! for the full schema.

mod sink;
mod wire;

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::dynamics::flips::FlipAnalysis;
use crate::dynamics::stabilization::FIG9_THRESHOLDS;
use crate::dynamics::{
    par, Alert, AlertConfig, Collector, DecodeArena, IncrementalStudy, SampleIndex, SlotMergeTree,
    StudyPartials, StudyResults,
};
use crate::engines::EngineFleet;
use crate::model::{EngineId, SampleHash};
use crate::obs::{Counter, Gauge, Obs};
use crate::sim::fault::{FaultPlan, FaultyFeed};
use crate::sim::{SimConfig, VirusTotalSim};
use crate::store::{
    read_segment, write_segment, DurableWriter, PartitionStats, Segment, SegmentDir, SegmentWriter,
};

/// Fixed number of hash-partition slots accepted samples are routed
/// through. Slots — not shard workers — are the unit the merger
/// reassembles in order, so the published study is bit-identical at any
/// shard count; `shards` only decides how many threads fold the slot
/// streams. Fixed so a data dir written at one shard count recovers
/// correctly at another.
pub const INGEST_SLOTS: usize = 8;

/// Sample ordinals ingested per collector run (one `FaultyFeed` each);
/// several collector runs typically contribute to one sealed segment.
const INGEST_CHUNK_SAMPLES: u64 = 1_024;

/// Sealed segments allowed in flight per shard worker before the feeder
/// blocks (the backpressure bound).
const SHARD_QUEUE_SEGMENTS: usize = 4;

/// Everything `vtld serve` needs to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Samples the simulated feed delivers before ingestion completes.
    pub samples: u64,
    /// Platform seed (fleet seed derived as in [`SimConfig::new`]).
    pub seed: u64,
    /// Reports per sealed segment (the incremental fold granularity),
    /// per slot stream.
    pub segment_reports: u64,
    /// Worker threads inside each per-segment fold.
    pub workers: usize,
    /// Shard worker threads folding the slot streams (clamped to
    /// `1..=`[`INGEST_SLOTS`]).
    pub shards: usize,
    /// Bind address, e.g. `127.0.0.1:7311` (port 0 picks one).
    pub addr: String,
    /// Fault injection applied to the feed (the daemon ingests through
    /// the same collector the chaos tests exercise).
    pub plan: FaultPlan,
    /// Segment write-ahead-log directory. `None` runs in-memory (no
    /// durability, no recovery).
    pub data_dir: Option<PathBuf>,
    /// Replay the data dir's sealed segments on startup and resume
    /// ingest past them. Requires `data_dir`. Without it, a data dir
    /// that already holds segments refuses to start (instead of
    /// silently interleaving two runs' streams).
    pub recover: bool,
    /// Concurrent connections admitted before new clients are shed with
    /// a typed `overloaded` response.
    pub max_clients: usize,
    /// Per-connection read deadline: a client that sends nothing for
    /// this long is evicted (typed response, connection closed).
    pub read_timeout: Duration,
    /// Per-connection write deadline: a client that will not drain its
    /// responses is evicted.
    pub write_timeout: Duration,
    /// Maximum request line length in bytes; longer lines evict.
    pub max_line_bytes: usize,
    /// Hot-sample response cache capacity (entries). Per-hash responses
    /// are rendered lazily and kept behind a bounded LRU invalidated on
    /// epoch swap; `0` disables caching.
    pub cache_samples: usize,
    /// Run the streaming drift detectors alongside every slot fold
    /// (the `alerts`/`subscribe`/`recommend` verbs answer either way;
    /// with detectors off the alert stream is empty).
    pub alerts: bool,
    /// Detector tuning shared by every slot (each worker stamps its own
    /// slot id into its copy).
    pub alert_config: AlertConfig,
    /// Alerts retained on the published snapshot (largest
    /// `(seq, slot, detector, ordinal)` keys win — a memory bound, not
    /// a correctness bound; sinks see every alert regardless).
    pub alerts_ring: usize,
    /// JSONL alert sink: every fired alert appended as one JSON line,
    /// exactly-once across crash recovery.
    pub alerts_out: Option<PathBuf>,
    /// Webhook-shaped TCP alert sink (`host:port`), at-most-once with
    /// retry/backoff.
    pub alerts_tcp: Option<String>,
}

impl ServeConfig {
    /// A config with the daemon defaults: ephemeral localhost port,
    /// 20k-report segments, one shard, default fold workers, 256-client
    /// cap, 10s deadlines, 64 KiB request lines, a 1 024-entry
    /// hot-sample cache, in-memory (no data dir), and a lightly chaotic
    /// feed (1% duplicates, 5% reordering within the collector's
    /// horizon).
    pub fn new(samples: u64, seed: u64) -> Self {
        Self {
            samples,
            seed,
            segment_reports: 20_000,
            workers: par::default_workers(),
            shards: 1,
            addr: "127.0.0.1:0".to_string(),
            plan: FaultPlan::clean(seed)
                .with_duplicates(0.01)
                .with_reordering(0.05, 30),
            data_dir: None,
            recover: false,
            max_clients: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
            cache_samples: 1_024,
            alerts: true,
            alert_config: AlertConfig::default(),
            alerts_ring: 4_096,
            alerts_out: None,
            alerts_tcp: None,
        }
    }

    /// Clamps the tunables into their valid ranges.
    fn normalized(mut self) -> Self {
        self.segment_reports = self.segment_reports.max(1);
        self.workers = self.workers.max(1);
        self.shards = self.shards.clamp(1, INGEST_SLOTS);
        self.max_clients = self.max_clients.max(1);
        self.max_line_bytes = self.max_line_bytes.max(64);
        self.alerts_ring = self.alerts_ring.max(1);
        self
    }
}

/// One epoch-consistent view of the study: the four aggregate responses
/// pre-rendered at publish time (request handling is allocation-only),
/// plus everything the lazily rendered per-hash verbs answer from — the
/// sample index, the flip matrix and the engine roster — pinned to the
/// same epoch, so a handler that cloned the `Arc` can never mix stages
/// of the study.
#[derive(Debug)]
struct Snapshot {
    epoch: u64,
    status: String,
    results: String,
    engines: String,
    metrics: String,
    fingerprint: String,
    /// Hash → trajectory summary, one index per ingest slot — the same
    /// folds this epoch's aggregates summarize. Publishing a new epoch
    /// replaces only the dirty slots' `Arc`s; per-hash verbs route by
    /// [`slot_of`] and never pay a cross-slot merge.
    slot_indexes: Vec<Arc<SampleIndex>>,
    /// Epoch at which each slot's index (and partials) last changed.
    /// The hot-sample cache compares these to decide which entries an
    /// epoch swap actually invalidated.
    slot_epochs: [u64; INGEST_SLOTS],
    /// The §7.1 flip matrix backing the `engine` scorecard verb.
    flips: Arc<FlipAnalysis>,
    /// Engine names in [`EngineId`] order (the `engine` verb resolves
    /// names against the snapshot, not the live fleet).
    engine_names: Arc<Vec<String>>,
    /// The retained drift-alert ring, sorted by alert key, each entry
    /// stamped with the epoch that published it (the `alerts` verb's
    /// `since` filter and the `subscribe` push cursor key off that
    /// stamp; the rendered bodies themselves carry no epoch).
    alerts: Arc<Vec<PublishedAlert>>,
    /// The `recommend` verb's pre-rendered response.
    recommend: String,
    /// True once a slot lock has been observed poisoned: the study no
    /// longer updates from that slot, answers may lag its stream.
    degraded: bool,
}

/// One alert on the published ring: its identity key, the epoch whose
/// publish first carried it, and the deterministic rendered body.
#[derive(Debug, Clone)]
struct PublishedAlert {
    /// [`Alert::key`] — `(seq, slot, detector, ordinal)`.
    key: (u64, u32, u8, u32),
    /// Epoch at which the merger first shipped this alert.
    published: u64,
    /// [`wire::render_alert`] body (no epoch member — byte-identical
    /// across shard/worker grids and recovery replays).
    rendered: String,
}

impl Snapshot {
    /// The slot index holding `hash`'s trajectory, if any was folded.
    fn slot_index(&self, hash: SampleHash) -> &SampleIndex {
        &self.slot_indexes[slot_of(hash)]
    }
}

/// Obs handles for the serve tier's own health metrics, registered once
/// at startup.
#[derive(Debug)]
struct ServeCounters {
    /// Connections shed at the accept gate (`serve/rejected`).
    rejected: Counter,
    /// Connections evicted mid-life — idle timeout, oversized line,
    /// stuck writes (`serve/evicted`).
    evicted: Counter,
    /// Sealed segments replayed from the data dir
    /// (`serve/recovered_segments`).
    recovered: Counter,
    /// Segment files quarantined at recovery
    /// (`serve/quarantined_segments`).
    quarantined: Counter,
    /// High-water mark of sealed segments queued between the feeder and
    /// the shard workers (`serve/queue_depth`).
    queue_depth: Gauge,
    /// Poisoned-lock recoveries: each time a slot lock is taken over
    /// from a panicked holder (`serve/poisoned`). Zero in a healthy
    /// daemon.
    poisoned: Counter,
    /// Per-hash responses served from the hot-sample cache
    /// (`serve/cache_hits`).
    cache_hits: Counter,
    /// Per-hash responses rendered on demand (`serve/cache_misses`).
    cache_misses: Counter,
    /// Drift alerts fired by the detectors (`serve/alerts_fired`).
    alerts_fired: Counter,
    /// [`crate::dynamics::MonitorEvent::Stabilized`] events observed
    /// (`serve/alerts_stabilized`) — counted, not alerted.
    alerts_stabilized: Counter,
    /// [`crate::dynamics::MonitorEvent::Destabilized`] events observed
    /// (`serve/alerts_destabilized`).
    alerts_destabilized: Counter,
    /// [`crate::dynamics::MonitorEvent::Swing`] events observed
    /// (`serve/alerts_swings`).
    alerts_swings: Counter,
    /// Alert lines delivered by the sinks (`serve/alerts_emitted`).
    alerts_emitted: Counter,
    /// Alert lines a sink deduped, skipped or gave up on
    /// (`serve/alerts_dropped`).
    alerts_dropped: Counter,
}

impl ServeCounters {
    fn register(obs: &Obs) -> Self {
        Self {
            rejected: obs.counter("serve/rejected"),
            evicted: obs.counter("serve/evicted"),
            recovered: obs.counter("serve/recovered_segments"),
            quarantined: obs.counter("serve/quarantined_segments"),
            queue_depth: obs.gauge("serve/queue_depth"),
            poisoned: obs.counter("serve/poisoned"),
            cache_hits: obs.counter("serve/cache_hits"),
            cache_misses: obs.counter("serve/cache_misses"),
            alerts_fired: obs.counter("serve/alerts_fired"),
            alerts_stabilized: obs.counter("serve/alerts_stabilized"),
            alerts_destabilized: obs.counter("serve/alerts_destabilized"),
            alerts_swings: obs.counter("serve/alerts_swings"),
            alerts_emitted: obs.counter("serve/alerts_emitted"),
            alerts_dropped: obs.counter("serve/alerts_dropped"),
        }
    }
}

/// Running ingest totals, updated by the feeder and the shard workers,
/// read by the merger at publish time.
#[derive(Debug, Default)]
struct Progress {
    accepted: AtomicU64,
    quarantined: AtomicU64,
    segments: AtomicU64,
    samples: AtomicU64,
    reports: AtomicU64,
    feed_done: AtomicBool,
}

/// One cached per-hash response: the rendered body with the epoch
/// digits spliced out, plus the provenance stamps that decide whether
/// an epoch swap invalidated it.
#[derive(Debug)]
struct CacheEntry {
    /// The response *after* the `{"epoch":` digits — every lazily
    /// rendered verb starts with that prefix, so serving a hit is a
    /// splice of the live epoch in front of this tail.
    tail: String,
    /// Which ingest slot the answer was rendered from (`None` for the
    /// whole-study verbs `engine` and `flip_leaders`).
    slot: Option<usize>,
    /// For slot-routed entries, the snapshot's `slot_epochs[slot]` at
    /// render time; for whole-study entries, the full epoch.
    stamp: u64,
    /// Whether the rendering snapshot was degraded (the suffix is baked
    /// into the tail, so a hit must match the live snapshot's flag).
    degraded: bool,
    /// Last-used stamp backing least-recently-used eviction.
    last_used: u64,
}

impl CacheEntry {
    /// Is this entry still exactly what rendering against `snap` would
    /// produce (up to the spliced epoch digits)?
    fn valid_for(&self, snap: &Snapshot) -> bool {
        let stamp = match self.slot {
            Some(slot) => snap.slot_epochs[slot],
            None => snap.epoch,
        };
        stamp == self.stamp && self.degraded == snap.degraded
    }
}

/// The bounded LRU cache behind the lazily rendered per-hash verbs.
///
/// Entries are stamped with the *slot epoch* they were rendered from —
/// the epoch at which their hash's ingest slot last changed. The first
/// request against a newer snapshot sweeps the map, dropping only the
/// entries whose slot actually republished since they were rendered
/// (plus the whole-study `engine`/`flip_leaders` entries, which every
/// epoch invalidates); entries for untouched slots survive the swap,
/// because their slot's index `Arc` is byte-for-byte the one they were
/// rendered from. A request that races a publish and holds an *older*
/// snapshot bypasses the cache entirely — a response for epoch N is
/// never stored once the cache has seen N+1, so answers cannot leak
/// across an epoch swap, and any one connection's epochs stay monotone.
#[derive(Debug, Default)]
struct ResponseCache {
    epoch: u64,
    /// Monotone use counter backing least-recently-used eviction.
    clock: u64,
    /// Canonical request key → cached response.
    map: HashMap<String, CacheEntry>,
}

/// State shared between every daemon thread and every connection
/// handler.
struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    shutdown: AtomicBool,
    obs: Obs,
    active_clients: AtomicU64,
    queue_depth: AtomicU64,
    counters: ServeCounters,
    progress: Progress,
    cache: Mutex<ResponseCache>,
}

impl Shared {
    fn new() -> Self {
        let obs = Obs::new();
        let counters = ServeCounters::register(&obs);
        Shared {
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                status: String::new(),
                results: String::new(),
                engines: String::new(),
                metrics: String::new(),
                fingerprint: String::new(),
                slot_indexes: empty_slot_indexes(),
                slot_epochs: [0; INGEST_SLOTS],
                flips: Arc::new(FlipAnalysis::empty(0)),
                engine_names: Arc::new(Vec::new()),
                alerts: Arc::new(Vec::new()),
                recommend: String::new(),
                degraded: false,
            })),
            shutdown: AtomicBool::new(false),
            obs,
            active_clients: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            counters,
            progress: Progress::default(),
            cache: Mutex::new(ResponseCache::default()),
        }
    }

    // The snapshot lock only ever guards a swap of the `Arc` — a
    // panicked holder cannot leave the pointer half-written — so a
    // poisoned lock is recovered, not propagated: one crashing handler
    // must not cascade into every later connection panicking too.
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn publish(&self, snapshot: Snapshot) {
        *self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Slot-local accumulation the shard workers write and the merger
/// reads: the slot's merged [`StudyPartials`] and [`SampleIndex`] plus
/// its Table 2 store accounting.
#[derive(Debug, Default)]
struct SlotState {
    /// Bumped on every fold into this slot; the merger compares it to
    /// the version behind its merge-tree leaf, so publishing touches
    /// only the slots that actually changed since the last epoch.
    version: u64,
    partials: Option<StudyPartials>,
    /// Frozen behind an `Arc` at fold time: publishing ships the
    /// pointer into the snapshot's per-slot index table instead of
    /// merging the slot indexes into one.
    index: Option<Arc<SampleIndex>>,
    partitions: Vec<PartitionStats>,
    /// The slot's cumulative alert log in key order (bounded by the
    /// per-segment detector caps, so never truncated here). Overwritten
    /// whole at fold time like every other field; the merger pulls the
    /// suffix past its per-slot high-water key.
    alerts: Arc<Vec<Alert>>,
}

/// One mutex per slot — a worker updates its slot while the merger
/// walks all of them; neither holds a lock for longer than a clone.
struct SlotTable {
    slots: Vec<Mutex<SlotState>>,
}

impl SlotTable {
    fn new() -> Self {
        Self {
            slots: (0..INGEST_SLOTS).map(|_| Mutex::default()).collect(),
        }
    }
}

/// Takes a slot lock, recovering from poisoning instead of cascading
/// the panic. Returns the guard plus whether the lock was poisoned.
///
/// Recovery is sound because every write under a slot lock is a full
/// overwrite of the slot's fields from worker-local state (never an
/// in-place mutation), so a panicked holder can at worst have left the
/// *previous* consistent accumulation behind — stale, not torn. The
/// daemon keeps serving, counts the recovery on `serve/poisoned`, and
/// the next publish flags the snapshot `degraded`.
fn lock_slot<'a>(
    slot: &'a Mutex<SlotState>,
    counters: &ServeCounters,
) -> (MutexGuard<'a, SlotState>, bool) {
    match slot.lock() {
        Ok(guard) => (guard, false),
        Err(poisoned) => {
            counters.poisoned.incr();
            (poisoned.into_inner(), true)
        }
    }
}

/// One sealed segment travelling from the feeder to a shard worker.
struct SegmentMsg {
    slot: usize,
    segment: Segment,
    /// Replayed from the data dir (already round-tripped through the
    /// on-disk container) rather than freshly sealed.
    recovered: bool,
}

/// Shard-worker → merger notifications.
enum MergeEvent {
    Folded,
    WorkerExited,
}

/// A running `vtld serve` daemon: feeder, shard fleet, merger and
/// accept threads, plus the published snapshot they share.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    table: Arc<SlotTable>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("epoch", &self.shared.current().epoch)
            .finish()
    }
}

impl Server {
    /// Binds the listener, opens (and on `recover` validates) the data
    /// dir, publishes the epoch-0 (empty study) snapshot, and starts
    /// the feeder, shard, merger and accept threads.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let config = config.normalized();
        let segdir = match &config.data_dir {
            Some(path) => {
                let dir = SegmentDir::open(path, INGEST_SLOTS as u32)?;
                if !config.recover && dir.has_segments()? {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!(
                            "data dir {} already holds sealed segments; \
                             restart with recovery enabled or point at a clean directory",
                            dir.root().display()
                        ),
                    ));
                }
                Some(dir)
            }
            None if config.recover => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "recovery needs a data dir to replay",
                ));
            }
            None => None,
        };

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new());
        let sim = Arc::new(VirusTotalSim::new(SimConfig::new(
            config.seed,
            config.samples,
        )));
        shared.publish(empty_snapshot(&config, sim.fleet()));
        let table = Arc::new(SlotTable::new());

        let mut threads = Vec::new();

        // The roster names alert bodies render with — a pure function
        // of the fleet, so workers, merger and sinks agree byte for
        // byte.
        let engine_names: Arc<Vec<String>> = Arc::new(
            (0..sim.fleet().engine_count())
                .map(|i| sim.fleet().profile(EngineId::new(i)).name.to_string())
                .collect(),
        );

        // Connector sinks get their own thread; workers hand it
        // rendered batches over an unbounded channel (producers are
        // bounded by the per-segment detector caps) so a slow or dead
        // connector can never backpressure ingest.
        let sink_config = sink::SinkConfig {
            out: config.alerts_out.clone(),
            tcp: config.alerts_tcp.clone(),
        };
        let alert_sink = if config.alerts && sink_config.is_active() {
            let (tx, rx) = channel::<sink::SinkMsg>();
            let emitted = shared.counters.alerts_emitted.clone();
            let dropped = shared.counters.alerts_dropped.clone();
            threads.push(std::thread::spawn(move || {
                sink::sink_loop(rx, sink_config, emitted, dropped)
            }));
            Some(tx)
        } else {
            None
        };

        let (merge_tx, merge_rx) = channel::<MergeEvent>();
        let mut shard_txs: Vec<SyncSender<SegmentMsg>> = Vec::new();
        for _ in 0..config.shards {
            let (tx, rx) = sync_channel::<SegmentMsg>(SHARD_QUEUE_SEGMENTS);
            shard_txs.push(tx);
            let (sim, shared, table, merge_tx) = (
                Arc::clone(&sim),
                Arc::clone(&shared),
                Arc::clone(&table),
                merge_tx.clone(),
            );
            let (config, alert_sink, engine_names) = (
                config.clone(),
                alert_sink.clone(),
                Arc::clone(&engine_names),
            );
            threads.push(std::thread::spawn(move || {
                shard_worker(
                    rx,
                    &sim,
                    &shared,
                    &table,
                    &merge_tx,
                    &config,
                    alert_sink,
                    &engine_names,
                )
            }));
        }
        drop(merge_tx);
        // The start-scope sink sender drops here; the sink thread exits
        // once every worker's clone is gone.
        drop(alert_sink);

        {
            let (sim, shared, table, config) = (
                Arc::clone(&sim),
                Arc::clone(&shared),
                Arc::clone(&table),
                config.clone(),
            );
            threads.push(std::thread::spawn(move || {
                merger_loop(&merge_rx, &shared, &table, &sim, &config)
            }));
        }
        {
            let (shared, config) = (Arc::clone(&shared), config.clone());
            threads.push(std::thread::spawn(move || {
                ingest_loop(&config, &shared, &sim, &shard_txs, segdir)
            }));
        }
        {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &shared, &config)
            }));
        }
        Ok(Server {
            addr,
            shared,
            table,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Test hook: poisons one slot lock by panicking a thread that
    /// holds it — the failure mode a crashed shard worker leaves
    /// behind. The degraded-mode regression tests drive this; nothing
    /// in the daemon calls it.
    #[doc(hidden)]
    pub fn poison_slot(&self, slot: usize) {
        let table = Arc::clone(&self.table);
        let _ = std::thread::spawn(move || {
            let _guard = table.slots[slot % INGEST_SLOTS].lock();
            panic!("test-injected slot poisoning");
        })
        .join();
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// Signals shutdown: the feeder drains at the next boundary (sealing
    /// and persisting in-progress segments), workers fold what is
    /// queued, the merger publishes a final snapshot, and the accept
    /// loop exits. Idempotent; does not wait (see [`wait`](Self::wait)).
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
        // The accept loop may be parked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until every daemon thread exits (after
    /// [`shutdown`](Self::shutdown), feed exhaustion plus a client's
    /// `shutdown` command, or a fatal ingest error).
    pub fn wait(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The slot an accepted sample's whole trajectory is routed to. Purely
/// a function of the (well-mixed) hash, so every run at every shard
/// count routes identically.
fn slot_of(hash: SampleHash) -> usize {
    (hash.0 % INGEST_SLOTS as u128) as usize
}

/// A slot's segment writer: durable (fsync-before-sealed through the
/// data dir) or in-memory.
enum SlotWriter {
    Durable(DurableWriter),
    Memory(SegmentWriter),
}

impl SlotWriter {
    fn push_sample(
        &mut self,
        reports: &[crate::model::ScanReport],
    ) -> std::io::Result<Option<Segment>> {
        match self {
            SlotWriter::Durable(w) => w.push_sample(reports),
            SlotWriter::Memory(w) => Ok(w.push_sample(reports)),
        }
    }

    fn finish(self) -> std::io::Result<Option<Segment>> {
        match self {
            SlotWriter::Durable(w) => w.finish(),
            SlotWriter::Memory(w) => Ok(w.finish()),
        }
    }
}

/// Hands one sealed segment to its slot's shard worker, blocking when
/// the bounded queue is full (backpressure — the feed waits, accepted
/// samples are never dropped). Returns `false` if the worker is gone
/// (it panicked); the feeder then stops.
fn send_segment(shared: &Shared, senders: &[SyncSender<SegmentMsg>], msg: SegmentMsg) -> bool {
    let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
    shared.counters.queue_depth.set_max(depth);
    if senders[msg.slot % senders.len()].send(msg).is_err() {
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared.request_shutdown();
        return false;
    }
    true
}

/// The feeder thread: replay the data dir (under recovery), then
/// simulate → chaos feed → collector → hash-route → seal durably →
/// hand to the shard fleet, until the feed is exhausted or shutdown is
/// requested — at which point it drains (seals and ships in-progress
/// segments) before dropping the queues.
fn ingest_loop(
    config: &ServeConfig,
    shared: &Shared,
    sim: &Arc<VirusTotalSim>,
    senders: &[SyncSender<SegmentMsg>],
    segdir: Option<SegmentDir>,
) {
    // ---- recovery replay --------------------------------------------
    let mut sealed_hashes: HashSet<SampleHash> = HashSet::new();
    let mut next_seq = [0u64; INGEST_SLOTS];
    if let (Some(dir), true) = (&segdir, config.recover) {
        let replay = match dir.replay() {
            Ok(replay) => replay,
            Err(e) => {
                eprintln!("vtld serve: recovery replay failed: {e}");
                shared.request_shutdown();
                return;
            }
        };
        shared.counters.quarantined.add(replay.quarantined_segments);
        for (slot, segments) in replay.slots.into_iter().enumerate() {
            next_seq[slot] = segments.len() as u64;
            for segment in segments {
                for hash in segment.sample_hashes() {
                    sealed_hashes.insert(hash);
                }
                if !send_segment(
                    shared,
                    senders,
                    SegmentMsg {
                        slot,
                        segment,
                        recovered: true,
                    },
                ) {
                    return;
                }
            }
        }
    }

    // ---- live ingest ------------------------------------------------
    let mut writers: Vec<Option<SlotWriter>> = (0..INGEST_SLOTS)
        .map(|slot| {
            Some(match &segdir {
                Some(dir) => SlotWriter::Durable(DurableWriter::new(
                    dir.clone(),
                    slot as u32,
                    config.segment_reports,
                    next_seq[slot],
                )),
                None => SlotWriter::Memory(SegmentWriter::resuming(
                    config.segment_reports,
                    next_seq[slot],
                )),
            })
        })
        .collect();

    let mut start = 0u64;
    'feed: while start < config.samples && !shared.shutdown_requested() {
        let end = (start + INGEST_CHUNK_SAMPLES).min(config.samples);
        // Resume fast-path: a chunk whose samples were all sealed before
        // the crash needs no re-simulation at all.
        if !sealed_hashes.is_empty()
            && (start..end).all(|o| sealed_hashes.contains(&sim.population().sample(o).hash))
        {
            start = end;
            continue;
        }
        let feed = FaultyFeed::from_sim(sim, start..end, config.plan);
        let outcome = Collector::default().run_with_obs(feed, &shared.obs);
        shared
            .progress
            .accepted
            .fetch_add(outcome.stats.accepted, Ordering::SeqCst);
        shared
            .progress
            .quarantined
            .fetch_add(outcome.stats.quarantined, Ordering::SeqCst);
        for (hash, reports) in outcome.store.group_by_sample() {
            if sealed_hashes.contains(&hash) {
                continue;
            }
            let slot = slot_of(hash);
            match writers[slot]
                .as_mut()
                .expect("writer taken only at drain")
                .push_sample(&reports)
            {
                Ok(Some(segment)) => {
                    if !send_segment(
                        shared,
                        senders,
                        SegmentMsg {
                            slot,
                            segment,
                            recovered: false,
                        },
                    ) {
                        break 'feed;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("vtld serve: segment persist failed, stopping ingest: {e}");
                    shared.request_shutdown();
                    break 'feed;
                }
            }
        }
        start = end;
    }
    let completed = start >= config.samples;

    // ---- drain: seal in-progress segments, even on shutdown ---------
    for (slot, writer) in writers.iter_mut().enumerate() {
        let writer = writer.take().expect("each writer drains once");
        match writer.finish() {
            Ok(Some(segment)) => {
                send_segment(
                    shared,
                    senders,
                    SegmentMsg {
                        slot,
                        segment,
                        recovered: false,
                    },
                );
            }
            Ok(None) => {}
            Err(e) => eprintln!("vtld serve: tail segment persist failed: {e}"),
        }
    }
    if completed {
        shared.progress.feed_done.store(true, Ordering::SeqCst);
    }
    // Senders drop here: workers drain their queues and exit, and the
    // merger publishes the final snapshot once they have.
}

/// One shard worker: folds its slots' segment streams, in arrival
/// (= per-slot seal) order, into slot-local partials (and per-sample
/// indexes), runs the slot's drift detectors over each fold's delta,
/// and notifies the merger after every fold.
///
/// All accumulation — studies, partition accounting *and* alert logs —
/// lives in worker-local state; every write under a slot lock fully
/// overwrites the slot's fields from it. That overwrite-only discipline
/// is what makes poisoned-lock recovery ([`lock_slot`]) sound.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    rx: Receiver<SegmentMsg>,
    sim: &VirusTotalSim,
    shared: &Shared,
    table: &SlotTable,
    merge_tx: &Sender<MergeEvent>,
    config: &ServeConfig,
    alert_sink: Option<Sender<sink::SinkMsg>>,
    engine_names: &[String],
) {
    let fleet = sim.fleet();
    let window_start = sim.config().window_start();
    let fold_workers = config.workers;
    let mut studies: HashMap<usize, IncrementalStudy<'_>> = HashMap::new();
    let mut partitions: HashMap<usize, Vec<PartitionStats>> = HashMap::new();
    // Per-slot cumulative alert logs (the lock-protected copy is an
    // overwrite of these) and the last totals already counted, so the
    // shared counters advance by exact deltas.
    let mut alert_logs: HashMap<usize, Vec<Alert>> = HashMap::new();
    let mut alert_totals: HashMap<usize, crate::dynamics::AlertTotals> = HashMap::new();
    // One decode arena per worker, reused across every segment it
    // folds: the row buffer reaches steady-state capacity after the
    // first few segments and stops allocating.
    let mut arena = DecodeArena::new();
    while let Ok(msg) = rx.recv() {
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let SegmentMsg {
            slot,
            segment,
            recovered,
        } = msg;
        // Freshly sealed segments round-trip through their checksummed
        // container before folding: what the daemon folds is exactly
        // what a restart would recover from disk. Replayed segments
        // already came through it.
        let segment = if recovered {
            segment
        } else {
            let mut buf = Vec::new();
            write_segment(&segment, &mut buf).expect("in-memory segment write");
            read_segment(&mut buf.as_slice()).expect("own segment re-reads")
        };
        // Zero-copy fold: the segment's blocks stream into the worker's
        // reusable decode arena and the columnar table is built straight
        // from it — no `Vec<ScanReport>`/`Vec<SampleRecord>` round-trip
        // per segment (bit-identical to the old record-materializing
        // path; see `IncrementalStudy::fold_store`).
        let study = studies.entry(slot).or_insert_with(|| {
            let study = IncrementalStudy::new(fleet, window_start)
                .with_workers(fold_workers)
                .with_index();
            if config.alerts {
                study.with_alerts(AlertConfig {
                    slot: slot as u32,
                    ..config.alert_config
                })
            } else {
                study
            }
        });
        let samples = study.fold_store(segment.store(), &mut arena, &shared.obs);
        let slot_partitions = partitions.entry(slot).or_default();
        merge_partitions(slot_partitions, &segment.store().partition_stats());
        let frozen_index = study.index().cloned().map(Arc::new);

        // Drain this fold's alerts: extend the slot's cumulative log
        // (already in key order — seq grows per fold, ordinals are
        // deterministic within one), advance the shared counters by the
        // totals delta, and hand the fresh batch to the sinks.
        let new_alerts = study.take_alerts();
        let totals = study.alert_totals();
        let prev = alert_totals.insert(slot, totals).unwrap_or_default();
        shared.counters.alerts_fired.add(totals.fired - prev.fired);
        shared
            .counters
            .alerts_stabilized
            .add(totals.stabilized - prev.stabilized);
        shared
            .counters
            .alerts_destabilized
            .add(totals.destabilized - prev.destabilized);
        shared
            .counters
            .alerts_swings
            .add(totals.swings - prev.swings);
        if let (Some(sink), false) = (&alert_sink, new_alerts.is_empty()) {
            let _ = sink.send(sink::SinkMsg {
                lines: new_alerts
                    .iter()
                    .map(|a| wire::render_alert(a, engine_names))
                    .collect(),
                recovered,
            });
        }
        let frozen_alerts = if new_alerts.is_empty() {
            None
        } else {
            let log = alert_logs.entry(slot).or_default();
            log.extend(new_alerts);
            Some(Arc::new(log.clone()))
        };

        {
            let (mut state, _was_poisoned) = lock_slot(&table.slots[slot], &shared.counters);
            state.version += 1;
            state.partials = study.partials().cloned();
            state.index = frozen_index;
            state.partitions = slot_partitions.clone();
            if let Some(alerts) = frozen_alerts {
                state.alerts = alerts;
            }
        }
        shared.progress.segments.fetch_add(1, Ordering::SeqCst);
        shared
            .progress
            .samples
            .fetch_add(samples as u64, Ordering::SeqCst);
        shared
            .progress
            .reports
            .fetch_add(segment.report_count(), Ordering::SeqCst);
        if recovered {
            shared.counters.recovered.incr();
        }
        let _ = merge_tx.send(MergeEvent::Folded);
    }
    let _ = merge_tx.send(MergeEvent::WorkerExited);
}

/// The merger's cross-publish accumulation: the binary merge tree over
/// the slot partials (internal nodes cached, so a publish re-merges
/// only the changed slot's root path), the per-slot index `Arc`s and
/// the bookkeeping that detects which slots changed.
struct MergerState {
    tree: SlotMergeTree,
    /// [`SlotState::version`] behind each leaf — a mismatch marks the
    /// slot dirty.
    leaf_versions: [u64; INGEST_SLOTS],
    /// Epoch at which each slot last changed (shipped in the snapshot
    /// for slot-aware cache invalidation).
    slot_epochs: [u64; INGEST_SLOTS],
    slot_indexes: Vec<Arc<SampleIndex>>,
    /// Per-slot `(seq, detector, ordinal)` high-water mark of alerts
    /// already published. Slot logs grow strictly in that order, so a
    /// dirty slot's new alerts are exactly the suffix past the mark —
    /// and an alert is stamped with a publish epoch exactly once.
    alert_high: [Option<(u64, u8, u32)>; INGEST_SLOTS],
    /// Every published alert, kept sorted by [`Alert::key`]. Bounded by
    /// the per-segment detector caps × WAL length, so retaining the
    /// full log here is a small fixed multiple of the segment count;
    /// the snapshot ships only the last `alerts_ring` entries.
    alerts: Vec<PublishedAlert>,
    /// Roster names alert bodies are rendered with.
    engine_names: Vec<String>,
}

impl MergerState {
    fn new(engine_names: Vec<String>) -> Self {
        Self {
            tree: SlotMergeTree::new(INGEST_SLOTS),
            leaf_versions: [0; INGEST_SLOTS],
            slot_epochs: [0; INGEST_SLOTS],
            slot_indexes: empty_slot_indexes(),
            alert_high: [None; INGEST_SLOTS],
            alerts: Vec::new(),
            engine_names,
        }
    }
}

/// The merger thread: on every fold notification (coalescing bursts),
/// refresh the merge tree's dirty leaves, finish the cached root, and
/// publish the next epoch. After the whole fleet exits — every sealed
/// segment folded — publish the final snapshot, marking `ingest_done`
/// when the feed was fully consumed.
fn merger_loop(
    rx: &Receiver<MergeEvent>,
    shared: &Shared,
    table: &SlotTable,
    sim: &VirusTotalSim,
    config: &ServeConfig,
) {
    let engine_names: Vec<String> = (0..sim.fleet().engine_count())
        .map(|i| sim.fleet().profile(EngineId::new(i)).name.to_string())
        .collect();
    let mut state = MergerState::new(engine_names);
    let mut epoch = 0u64;
    let mut exited = 0usize;
    while exited < config.shards {
        let Ok(first) = rx.recv() else { break };
        let mut folded = false;
        for event in std::iter::once(first).chain(std::iter::from_fn(|| rx.try_recv().ok())) {
            match event {
                MergeEvent::Folded => folded = true,
                MergeEvent::WorkerExited => exited += 1,
            }
        }
        if folded && exited < config.shards {
            epoch += 1;
            publish_merged(epoch, false, shared, table, sim, config, &mut state);
        }
    }
    // Final publish: every sealed segment has been folded and merged.
    epoch += 1;
    let done = shared.progress.feed_done.load(Ordering::SeqCst);
    publish_merged(epoch, done, shared, table, sim, config, &mut state);
}

/// Publishes one epoch from the merge tree: pull the slots whose
/// version moved since the last publish into their leaves (an
/// O(changed-slot) walk — each dirty slot re-merges only its log₂(8)
/// root path, and clean slots are not even cloned), finish the cached
/// root, and swap in the rendered snapshot. The tree's fixed shape
/// keeps the merge order the canonical `slot 0 ++ slot 1 ++ …`, so the
/// published bits are identical to the old flat slot-order merge — at
/// any shard count. A poisoned slot lock marks the snapshot degraded —
/// its last consistent accumulation still merges, the daemon keeps
/// answering.
#[allow(clippy::too_many_arguments)]
fn publish_merged(
    epoch: u64,
    done: bool,
    shared: &Shared,
    table: &SlotTable,
    sim: &VirusTotalSim,
    config: &ServeConfig,
    state: &mut MergerState,
) {
    let mut degraded = false;
    let mut dirty_alerts: Vec<(usize, Arc<Vec<Alert>>)> = Vec::new();
    for (slot, lock) in table.slots.iter().enumerate() {
        let (slot_state, was_poisoned) = lock_slot(lock, &shared.counters);
        degraded |= was_poisoned;
        if slot_state.version == state.leaf_versions[slot] {
            continue;
        }
        state.leaf_versions[slot] = slot_state.version;
        state.slot_epochs[slot] = epoch;
        let partials = slot_state.partials.clone();
        let partitions = slot_state.partitions.clone();
        state.slot_indexes[slot] = slot_state
            .index
            .clone()
            .unwrap_or_else(|| Arc::new(SampleIndex::default()));
        dirty_alerts.push((slot, Arc::clone(&slot_state.alerts)));
        drop(slot_state);
        // Re-merge outside the slot lock: only this slot's root path.
        state.tree.update_slot(slot, partials, partitions);
    }
    // Pull each dirty slot's alerts past its high-water key, stamp them
    // with this publish's epoch, and keep the global log key-sorted.
    // The stamp is pull-timing-dependent (it is *when this daemon
    // noticed*, the `since` cursor), but the rendered bodies and the
    // key order are pure functions of the WAL.
    let mut published_new = false;
    for (slot, log) in dirty_alerts {
        for alert in log.iter() {
            let k3 = (alert.seq, alert.detector, alert.ordinal);
            if state.alert_high[slot].is_some_and(|high| k3 <= high) {
                continue;
            }
            state.alert_high[slot] = Some(k3);
            state.alerts.push(PublishedAlert {
                key: alert.key(),
                published: epoch,
                rendered: wire::render_alert(alert, &state.engine_names),
            });
            published_new = true;
        }
    }
    if published_new {
        state.alerts.sort_unstable_by_key(|a| a.key);
    }
    let ring_start = state.alerts.len().saturating_sub(config.alerts_ring);
    let alerts_ring = Arc::new(state.alerts[ring_start..].to_vec());
    let results = match state.tree.root() {
        Some(partials) => partials.finish(state.tree.root_partitions().to_vec(), &shared.obs),
        None => IncrementalStudy::new(sim.fleet(), sim.config().window_start())
            .results(state.tree.root_partitions().to_vec(), &shared.obs),
    };
    let view = StatusView::collect(shared, done, config.shards, degraded);
    shared.publish(render_snapshot(
        epoch,
        &results,
        sim.fleet(),
        &view,
        &shared.obs.snapshot(),
        state.slot_indexes.clone(),
        state.slot_epochs,
        alerts_ring,
    ));
}

/// Month-wise accumulation of per-segment Table 2 accounting
/// (delegates to the core algebra the merge tree accumulates with, so
/// the shard workers' slot-local totals and the tree's cached internal
/// nodes agree on ordering).
fn merge_partitions(acc: &mut Vec<PartitionStats>, seg: &[PartitionStats]) {
    crate::dynamics::merge_partition_stats(acc, seg);
}

/// One default (empty) index per ingest slot.
fn empty_slot_indexes() -> Vec<Arc<SampleIndex>> {
    (0..INGEST_SLOTS)
        .map(|_| Arc::new(SampleIndex::default()))
        .collect()
}

/// The epoch-0 snapshot: the finished empty study, so every query has a
/// well-formed answer before the first segment folds.
fn empty_snapshot(config: &ServeConfig, fleet: &EngineFleet) -> Snapshot {
    let window_start = SimConfig::new(config.seed, config.samples).window_start();
    let study = IncrementalStudy::new(fleet, window_start);
    let results = study.results(Vec::new(), Obs::noop());
    render_snapshot(
        0,
        &results,
        fleet,
        &StatusView::empty(config.shards),
        &Obs::noop().snapshot(),
        empty_slot_indexes(),
        [0; INGEST_SLOTS],
        Arc::new(Vec::new()),
    )
}

// ---- connection handling -----------------------------------------------

/// The accept loop: admission-controlled, one handler thread per
/// admitted connection, until shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, config: &ServeConfig) {
    for stream in listener.incoming() {
        if shared.shutdown_requested() {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.active_clients.load(Ordering::SeqCst) >= config.max_clients as u64 {
            shed_connection(stream, shared, config);
            continue;
        }
        shared.active_clients.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let config = config.clone();
        std::thread::spawn(move || {
            // Decrement even if the handler panics, so one bad
            // connection can never wedge the admission gate.
            struct Guard(Arc<Shared>);
            impl Drop for Guard {
                fn drop(&mut self) {
                    self.0.active_clients.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let guard = Guard(Arc::clone(&shared));
            handle_connection(stream, &shared, &config);
            drop(guard);
        });
    }
}

/// Sheds one connection at the admission gate with a typed `overloaded`
/// response (best effort — a client that will not even read it is
/// simply dropped).
fn shed_connection(mut stream: TcpStream, shared: &Shared, config: &ServeConfig) {
    shared.counters.rejected.incr();
    let epoch = shared.current().epoch;
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.write_all(
        format!(
            "{{\"epoch\":{epoch},\"overloaded\":true,\
             \"error\":\"overloaded: connection limit reached, retry later\"}}\n"
        )
        .as_bytes(),
    );
}

/// Why a bounded line read stopped without producing a line.
enum LineError {
    /// The line exceeded the configured byte limit.
    TooLong,
    /// The read deadline expired with no complete line.
    Timeout,
    /// Any other I/O failure (connection reset and friends).
    Io,
}

/// Reads one `\n`-terminated line of at most `max` bytes (exclusive of
/// the terminator). `Ok(None)` is EOF. EOF with a partial line buffered
/// yields that line — a client that shuts down its write half right
/// after its final unterminated request still gets an answer (the next
/// call sees a clean EOF). The bound is exact: the length check runs
/// *before* bytes are buffered, so a line of `max` bytes passes and
/// `max + 1` fails, regardless of how the reader chunks its input.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> Result<Option<String>, LineError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consumed, complete) = {
            let available = match reader.fill_buf() {
                Ok([]) => {
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    // EOF terminates the final line.
                    return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
                }
                Ok(bytes) => bytes,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(LineError::Timeout)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(LineError::Io),
            };
            let take = match available.iter().position(|&b| b == b'\n') {
                Some(pos) => pos,
                None => available.len(),
            };
            if buf.len() + take > max {
                return Err(LineError::TooLong);
            }
            buf.extend_from_slice(&available[..take]);
            let complete = take < available.len();
            (take + usize::from(complete), complete)
        };
        reader.consume(consumed);
        if complete {
            // Non-UTF-8 input degrades to a replacement-character string
            // that fails JSON parsing and earns a typed error response.
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

/// One client connection: newline-delimited JSON requests under read
/// and write deadlines, each answered from the snapshot current at that
/// moment; deadline or line-limit violations evict with a typed
/// response.
fn handle_connection(stream: TcpStream, shared: &Shared, config: &ServeConfig) {
    if stream
        .set_read_timeout(Some(config.read_timeout))
        .and_then(|()| stream.set_write_timeout(Some(config.write_timeout)))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        if shared.shutdown_requested() {
            break;
        }
        match read_bounded_line(&mut reader, config.max_line_bytes) {
            Ok(None) => break,
            Ok(Some(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let action = respond(&line, shared, config);
                let response = match &action {
                    Action::Reply(r) | Action::ReplyThenShutdown(r) => r,
                    Action::Subscribe { ack, .. } => ack,
                };
                if writer
                    .write_all(format!("{response}\n").as_bytes())
                    .is_err()
                {
                    shared.counters.evicted.incr();
                    break;
                }
                match action {
                    Action::Reply(_) => {}
                    Action::ReplyThenShutdown(_) => {
                        shared.request_shutdown();
                        // Wake the accept loop so it observes the flag.
                        if let Ok(addr) = writer.local_addr() {
                            let _ = TcpStream::connect(SocketAddr::new(addr.ip(), addr.port()));
                        }
                        break;
                    }
                    Action::Subscribe { epoch, .. } => {
                        subscribe_loop(&mut writer, shared, epoch);
                        break;
                    }
                }
            }
            Err(LineError::TooLong) => {
                evict(&mut writer, shared, "request line exceeds the length limit");
                break;
            }
            Err(LineError::Timeout) => {
                evict(&mut writer, shared, "idle past the read deadline");
                break;
            }
            Err(LineError::Io) => break,
        }
    }
}

/// Evicts one connection with a typed response (best effort) and counts
/// it.
fn evict(writer: &mut TcpStream, shared: &Shared, reason: &str) {
    shared.counters.evicted.incr();
    let epoch = shared.current().epoch;
    let _ = writer.write_all(
        format!(
            "{{\"epoch\":{epoch},\"evicted\":true,\"error\":{}}}\n",
            json_string(&format!("connection evicted: {reason}"))
        )
        .as_bytes(),
    );
}

/// What the connection reactor does with one parsed request.
enum Action {
    /// Write the response and keep reading requests.
    Reply(String),
    /// Write the response, then begin daemon shutdown and close.
    ReplyThenShutdown(String),
    /// Write the ack, then switch the connection to alert push mode
    /// ([`subscribe_loop`]) until shutdown or the client hangs up.
    /// `epoch` is the push cursor — the ack's epoch, so no alert
    /// published between the ack render and the loop start is skipped.
    Subscribe {
        /// The rendered `subscribed` acknowledgement.
        ack: String,
        /// Epoch the ack was rendered at.
        epoch: u64,
    },
}

/// Routes one request line through the typed [`wire::Request`] API to
/// its response — pre-rendered for the aggregate verbs, lazily rendered
/// (behind the hot-sample cache) for the per-hash verbs.
fn respond(line: &str, shared: &Shared, config: &ServeConfig) -> Action {
    use wire::{Render, Request};
    let snap = shared.current();
    let req = match Request::parse_line(line) {
        Ok(req) => req,
        Err(e) => return Action::Reply(e.render(snap.epoch)),
    };
    match req {
        Request::Status => Action::Reply(snap.status.clone()),
        Request::Results => Action::Reply(snap.results.clone()),
        Request::Engines => Action::Reply(snap.engines.clone()),
        Request::Metrics => Action::Reply(snap.metrics.clone()),
        Request::Fingerprint => Action::Reply(snap.fingerprint.clone()),
        Request::Sample { hash } => {
            let key = format!("sample:{}", hash.to_hex());
            Action::Reply(cached_response(
                shared,
                config.cache_samples,
                &snap,
                &key,
                Some(slot_of(hash)),
                || render_sample(&snap, hash),
            ))
        }
        Request::Stabilized { hash, threshold } => {
            let key = format!("stabilized:{}:{threshold}", hash.to_hex());
            Action::Reply(cached_response(
                shared,
                config.cache_samples,
                &snap,
                &key,
                Some(slot_of(hash)),
                || render_stabilized(&snap, hash, threshold),
            ))
        }
        Request::Engine { name } => {
            // Resolution happens against the snapshot's roster, not at
            // parse time (the parser cannot know the roster). Unknown
            // names are answered uncached: the cache is keyed by
            // client-controlled strings only after they resolve, so
            // misses cannot crowd out real entries.
            let Some(engine) = snap.engine_names.iter().position(|n| *n == name) else {
                return Action::Reply(format!(
                    "{{\"epoch\":{},\"error\":{}}}",
                    snap.epoch,
                    json_string(&format!("unknown engine '{name}'"))
                ));
            };
            // Whole-study answer (`slot: None`): every epoch swap
            // invalidates it, since the flip matrix re-finishes.
            let key = format!("engine:{engine}");
            Action::Reply(cached_response(
                shared,
                config.cache_samples,
                &snap,
                &key,
                None,
                || render_engine(&snap, engine),
            ))
        }
        Request::FlipLeaders { k } => {
            // Ranks across every slot, so any slot change invalidates
            // it — cached under the whole-study rule (`slot: None`).
            let key = format!("flip_leaders:{k}");
            Action::Reply(cached_response(
                shared,
                config.cache_samples,
                &snap,
                &key,
                None,
                || render_flip_leaders(&snap, k),
            ))
        }
        // Uncached: the filter is a cheap scan of the pre-rendered
        // ring, and `since` is client-controlled (unbounded key space).
        Request::Alerts { since } => Action::Reply(render_alerts(&snap, since)),
        Request::Subscribe => Action::Subscribe {
            ack: wire::SubscribeAck.render(snap.epoch),
            epoch: snap.epoch,
        },
        Request::Recommend => Action::Reply(snap.recommend.clone()),
        Request::Shutdown => Action::ReplyThenShutdown(wire::ShutdownAck.render(snap.epoch)),
    }
}

/// The `alerts` pull verb: every retained alert published after epoch
/// `since`, in key order. The array holds the deterministic [`wire`]
/// bodies only — no publish stamps — so at `since: 0` everything after
/// the epoch prefix is bit-identical at any shard × worker grid and
/// across crash-recovery replay (the chaos and determinism suites
/// compare exactly that tail). Clients resume by passing the last
/// response's top-level `epoch` as the next `since`.
fn render_alerts(snap: &Snapshot, since: u64) -> String {
    let items: Vec<&str> = snap
        .alerts
        .iter()
        .filter(|a| a.published > since)
        .map(|a| a.rendered.as_str())
        .collect();
    format!(
        "{{\"epoch\":{},\"since\":{since},\"count\":{},\"alerts\":[{}]{}}}",
        snap.epoch,
        items.len(),
        items.join(","),
        degraded_suffix(snap),
    )
}

/// Push mode: after the `subscribe` ack, poll the published snapshot
/// and stream every alert stamped after the epochs this connection has
/// already seen, one `{"epoch":E,"alert":{…}}` line each, until
/// shutdown or the client hangs up. Alerts published before the
/// subscription are not replayed — a client wanting history pulls
/// `{"cmd":"alerts","since":0}` first and dedups by the alert key.
fn subscribe_loop(writer: &mut TcpStream, shared: &Shared, mut seen_epoch: u64) {
    while !shared.shutdown_requested() {
        let snap = shared.current();
        if snap.epoch != seen_epoch {
            for alert in snap.alerts.iter().filter(|a| a.published > seen_epoch) {
                let line = format!(
                    "{{\"epoch\":{},\"alert\":{}}}\n",
                    alert.published, alert.rendered
                );
                if writer.write_all(line.as_bytes()).is_err() {
                    return;
                }
            }
            seen_epoch = snap.epoch;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Splits a lazily rendered response after its `{"epoch":<digits>`
/// prefix, returning the epoch-independent tail. Every per-hash verb
/// renders that prefix first; `None` (uncacheable) otherwise.
fn epoch_tail(response: &str) -> Option<&str> {
    let rest = response.strip_prefix("{\"epoch\":")?;
    let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
    if digits == 0 {
        return None;
    }
    Some(&rest[digits..])
}

/// Reassembles a cached tail under the serving snapshot's epoch.
fn splice_epoch(epoch: u64, tail: &str) -> String {
    format!("{{\"epoch\":{epoch}{tail}")
}

/// Serves one lazily rendered response through the hot-sample cache
/// (see [`ResponseCache`] for the epoch-safety argument). `slot` is the
/// ingest slot the answer is rendered from (`None` for whole-study
/// answers); it decides which epoch swaps invalidate the entry.
/// `capacity` of 0 disables caching entirely.
fn cached_response(
    shared: &Shared,
    capacity: usize,
    snap: &Snapshot,
    key: &str,
    slot: Option<usize>,
    render: impl FnOnce() -> String,
) -> String {
    if capacity == 0 {
        return render();
    }
    {
        let mut cache = lock_cache(shared);
        if cache.epoch != snap.epoch {
            if snap.epoch > cache.epoch {
                // First request against a newer snapshot: sweep out the
                // entries whose slot republished (or whole-study
                // entries); untouched slots' answers stay hot.
                cache.epoch = snap.epoch;
                cache.map.retain(|_, entry| entry.valid_for(snap));
            } else {
                // This request pinned a snapshot from before the swap
                // the cache has already seen: serve it uncached rather
                // than ever mixing epochs.
                drop(cache);
                shared.counters.cache_misses.incr();
                return render();
            }
        }
        cache.clock += 1;
        let stamp = cache.clock;
        if let Some(entry) = cache.map.get_mut(key) {
            entry.last_used = stamp;
            shared.counters.cache_hits.incr();
            // The entry may have been rendered epochs ago (its slot
            // unchanged since); splicing the live epoch reproduces the
            // fresh rendering byte for byte.
            return splice_epoch(snap.epoch, &entry.tail);
        }
    }
    // Render outside the lock — a fold-sized index walk must not block
    // every other per-hash reader.
    shared.counters.cache_misses.incr();
    let rendered = render();
    let Some(tail) = epoch_tail(&rendered) else {
        return rendered;
    };
    let mut cache = lock_cache(shared);
    if cache.epoch == snap.epoch {
        if cache.map.len() >= capacity && !cache.map.contains_key(key) {
            let victim = cache
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                cache.map.remove(&victim);
            }
        }
        cache.clock += 1;
        let stamp = cache.clock;
        cache.map.insert(
            key.to_string(),
            CacheEntry {
                tail: tail.to_string(),
                slot,
                stamp: match slot {
                    Some(slot) => snap.slot_epochs[slot],
                    None => snap.epoch,
                },
                degraded: snap.degraded,
                last_used: stamp,
            },
        );
    }
    rendered
}

/// Takes the cache lock, recovering from poisoning by dropping every
/// entry (a handler that panicked mid-insert may have left the map in
/// an arbitrary but memory-safe state; an empty cache is always
/// correct).
fn lock_cache(shared: &Shared) -> MutexGuard<'_, ResponseCache> {
    shared.cache.lock().unwrap_or_else(|poisoned| {
        shared.counters.poisoned.incr();
        let mut guard = poisoned.into_inner();
        *guard = ResponseCache::default();
        guard
    })
}

/// `,"degraded":true` when the snapshot was published past a poisoned
/// slot lock, empty otherwise — appended to every lazily rendered
/// response.
fn degraded_suffix(snap: &Snapshot) -> &'static str {
    if snap.degraded {
        ",\"degraded\":true"
    } else {
        ""
    }
}

/// The `sample` verb: one hash's full trajectory summary from the
/// snapshot's index.
fn render_sample(snap: &Snapshot, hash: SampleHash) -> String {
    let epoch = snap.epoch;
    let suffix = degraded_suffix(snap);
    match snap.slot_index(hash).get(hash) {
        None => format!(
            "{{\"epoch\":{epoch},\"hash\":\"{}\",\"found\":false{suffix}}}",
            hash.to_hex()
        ),
        Some(s) => {
            let positives: Vec<String> = s.positives.iter().map(u32::to_string).collect();
            let dates: Vec<String> = s.dates_min.iter().map(i64::to_string).collect();
            let stab: Vec<String> = FIG9_THRESHOLDS
                .iter()
                .map(|&t| {
                    format!(
                        "{{\"threshold\":{t},\"stabilized\":{}}}",
                        s.stabilized_at(t).unwrap_or(false)
                    )
                })
                .collect();
            format!(
                "{{\"epoch\":{epoch},\"hash\":\"{}\",\"found\":true,\
                 \"file_type\":{},\"reports\":{},\"current_positives\":{},\
                 \"p_min\":{},\"p_max\":{},\"flips\":{},\
                 \"multi_report\":{},\"stable\":{},\"fresh\":{},\"in_s\":{},\
                 \"stabilization\":[{}],\"positives\":[{}],\"dates_min\":[{}]{suffix}}}",
                hash.to_hex(),
                json_string(&s.file_type.name()),
                s.report_count(),
                s.current_positives(),
                s.p_min(),
                s.p_max(),
                s.flips,
                s.is_multi_report(),
                s.is_stable(),
                s.is_fresh(),
                s.in_s(),
                stab.join(","),
                positives.join(","),
                dates.join(","),
            )
        }
    }
}

/// The `stabilized` verb: has this hash's threshold-`t` label sequence
/// stabilized (§6.2)?
fn render_stabilized(snap: &Snapshot, hash: SampleHash, t: u32) -> String {
    let epoch = snap.epoch;
    let suffix = degraded_suffix(snap);
    match snap.slot_index(hash).get(hash) {
        None => format!(
            "{{\"epoch\":{epoch},\"hash\":\"{}\",\"threshold\":{t},\"found\":false{suffix}}}",
            hash.to_hex()
        ),
        Some(s) => format!(
            "{{\"epoch\":{epoch},\"hash\":\"{}\",\"threshold\":{t},\"found\":true,\
             \"stabilized\":{}{suffix}}}",
            hash.to_hex(),
            s.stabilized_at(t).unwrap_or(false),
        ),
    }
}

/// The `engine` verb: one engine's flip scorecard — totals plus every
/// top-20 type it has had flip opportunities on.
fn render_engine(snap: &Snapshot, engine: usize) -> String {
    let epoch = snap.epoch;
    let suffix = degraded_suffix(snap);
    let name = &snap.engine_names[engine];
    let row = &snap.flips.matrix[engine];
    let flips: u64 = row.iter().map(|cell| cell.flips).sum();
    let opportunities: u64 = row.iter().map(|cell| cell.opportunities).sum();
    let ratio = if opportunities == 0 {
        0.0
    } else {
        flips as f64 / opportunities as f64
    };
    let types: Vec<String> = row
        .iter()
        .enumerate()
        .filter(|(_, cell)| cell.opportunities > 0)
        .map(|(j, cell)| {
            format!(
                "{{\"type\":{},\"flips\":{},\"opportunities\":{},\"flip_ratio\":{}}}",
                json_string(&crate::model::FileType::from_dense_index(j).name()),
                cell.flips,
                cell.opportunities,
                json_f64(cell.ratio()),
            )
        })
        .collect();
    format!(
        "{{\"epoch\":{epoch},\"engine\":{},\"flips\":{flips},\
         \"opportunities\":{opportunities},\"flip_ratio\":{},\"types\":[{}]{suffix}}}",
        json_string(name),
        json_f64(ratio),
        types.join(","),
    )
}

/// The `flip_leaders` verb: the top-`k` samples by engine-label flip
/// count (ties by hash — a total order, identical at every shard and
/// worker count). Ranked by merging each slot's own top-`k` under that
/// total order — the global top `k` is contained in the union, so the
/// answer is bit-identical to ranking one merged index.
fn render_flip_leaders(snap: &Snapshot, k: usize) -> String {
    let epoch = snap.epoch;
    let suffix = degraded_suffix(snap);
    let mut ranked: Vec<_> = snap
        .slot_indexes
        .iter()
        .flat_map(|index| index.top_flips(k))
        .collect();
    ranked.sort_unstable_by(|a, b| b.flips.cmp(&a.flips).then_with(|| a.hash.cmp(&b.hash)));
    ranked.truncate(k);
    let leaders: Vec<String> = ranked
        .iter()
        .map(|s| {
            format!(
                "{{\"hash\":\"{}\",\"flips\":{},\"reports\":{},\"current_positives\":{}}}",
                s.hash.to_hex(),
                s.flips,
                s.report_count(),
                s.current_positives(),
            )
        })
        .collect();
    format!(
        "{{\"epoch\":{epoch},\"k\":{k},\"leaders\":[{}]{suffix}}}",
        leaders.join(","),
    )
}

// ---- response rendering ------------------------------------------------

/// The ingest totals one rendered snapshot reports.
#[derive(Debug, Default)]
struct StatusView {
    segments: u64,
    samples: u64,
    reports: u64,
    accepted: u64,
    quarantined: u64,
    done: bool,
    shards: usize,
    recovered_segments: u64,
    quarantined_segments: u64,
    rejected: u64,
    evicted: u64,
    degraded: bool,
    poisoned: u64,
    cache_hits: u64,
    cache_misses: u64,
    alerts_fired: u64,
    alerts_stabilized: u64,
    alerts_destabilized: u64,
    alerts_swings: u64,
    alerts_emitted: u64,
    alerts_dropped: u64,
}

impl StatusView {
    fn collect(shared: &Shared, done: bool, shards: usize, degraded: bool) -> Self {
        StatusView {
            segments: shared.progress.segments.load(Ordering::SeqCst),
            samples: shared.progress.samples.load(Ordering::SeqCst),
            reports: shared.progress.reports.load(Ordering::SeqCst),
            accepted: shared.progress.accepted.load(Ordering::SeqCst),
            quarantined: shared.progress.quarantined.load(Ordering::SeqCst),
            done,
            shards,
            recovered_segments: shared.counters.recovered.value(),
            quarantined_segments: shared.counters.quarantined.value(),
            rejected: shared.counters.rejected.value(),
            evicted: shared.counters.evicted.value(),
            degraded,
            poisoned: shared.counters.poisoned.value(),
            cache_hits: shared.counters.cache_hits.value(),
            cache_misses: shared.counters.cache_misses.value(),
            alerts_fired: shared.counters.alerts_fired.value(),
            alerts_stabilized: shared.counters.alerts_stabilized.value(),
            alerts_destabilized: shared.counters.alerts_destabilized.value(),
            alerts_swings: shared.counters.alerts_swings.value(),
            alerts_emitted: shared.counters.alerts_emitted.value(),
            alerts_dropped: shared.counters.alerts_dropped.value(),
        }
    }

    fn empty(shards: usize) -> Self {
        StatusView {
            shards,
            ..StatusView::default()
        }
    }
}

/// JSON number for an `f64`: non-finite values have no JSON spelling
/// and render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// FNV-1a accumulation over a byte slice.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// The chaos-gate fingerprint of a finished study: an FNV-1a digest of
/// the Debug rendering of every result field **except** the wall-clock
/// `stage_timings` (never deterministic), plus a digest of the raw
/// `to_bits` of every Spearman plane (global + per-type), so NaN
/// payloads and signed zeros count. Two runs whose fingerprints match
/// agree on every published statistic bit for bit — this is what
/// `tests/serve_chaos.rs` compares across kill/restart and shard
/// counts.
fn study_fingerprint(results: &StudyResults) -> (u64, u64) {
    let debug = format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        results.dataset,
        results.fig1,
        results.partitions,
        results.stability,
        results.s_samples,
        results.s_reports,
        results.metrics,
        results.window_growth,
        results.intervals,
        results.categories_all,
        results.categories_pe,
        results.causes,
        results.rank_stabilization,
        results.label_stabilization_all,
        results.label_stabilization_multi,
        results.flips,
        results.correlation_global,
        results.correlation_per_type,
    );
    let mut debug_fnv = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut debug_fnv, debug.as_bytes());
    fnv1a(
        &mut debug_fnv,
        &results.window_growth.to_bits().to_le_bytes(),
    );
    let mut rho_fnv = 0xcbf2_9ce4_8422_2325u64;
    for plane in std::iter::once(&results.correlation_global).chain(&results.correlation_per_type) {
        for v in &plane.rho {
            fnv1a(&mut rho_fnv, &v.to_bits().to_le_bytes());
        }
    }
    (debug_fnv, rho_fnv)
}

/// Renders every response for one epoch in one place, so a snapshot can
/// never mix stages of the study.
#[allow(clippy::too_many_arguments)]
fn render_snapshot(
    epoch: u64,
    results: &StudyResults,
    fleet: &EngineFleet,
    view: &StatusView,
    metrics: &crate::obs::RunMetrics,
    slot_indexes: Vec<Arc<SampleIndex>>,
    slot_epochs: [u64; INGEST_SLOTS],
    alerts: Arc<Vec<PublishedAlert>>,
) -> Snapshot {
    let indexed: usize = slot_indexes.iter().map(|i| i.len()).sum();
    let status = format!(
        "{{\"epoch\":{epoch},\"segments\":{},\"samples\":{},\"reports\":{},\
         \"accepted\":{},\"quarantined\":{},\"s_samples\":{},\"ingest_done\":{},\
         \"shards\":{},\"recovered_segments\":{},\"quarantined_segments\":{},\
         \"rejected\":{},\"evicted\":{},\"indexed\":{},\"degraded\":{},\
         \"poisoned\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"alerts_fired\":{},\"alerts_stabilized\":{},\"alerts_destabilized\":{},\
         \"alerts_swings\":{},\"alerts_emitted\":{},\"alerts_dropped\":{}}}",
        view.segments,
        view.samples,
        view.reports,
        view.accepted,
        view.quarantined,
        results.s_samples,
        view.done,
        view.shards,
        view.recovered_segments,
        view.quarantined_segments,
        view.rejected,
        view.evicted,
        indexed,
        view.degraded,
        view.poisoned,
        view.cache_hits,
        view.cache_misses,
        view.alerts_fired,
        view.alerts_stabilized,
        view.alerts_destabilized,
        view.alerts_swings,
        view.alerts_emitted,
        view.alerts_dropped,
    );

    let c = &results.correlation_global;
    let ranks: Vec<String> = results
        .rank_stabilization
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"samples\":{},\"stabilized\":{}}}",
                r.r, r.samples, r.stabilized
            )
        })
        .collect();
    let results_json = format!(
        "{{\"epoch\":{epoch},\"dataset\":{{\"samples\":{},\"reports\":{}}},\
         \"s_samples\":{},\"s_reports\":{},\
         \"stability\":{{\"stable\":{},\"dynamic\":{}}},\
         \"window_growth\":{},\
         \"flips\":{{\"total\":{},\"up\":{},\"down\":{},\"hazard\":{}}},\
         \"correlation\":{{\"engine_count\":{},\"rows\":{},\"strong_pairs\":{},\"groups\":{}}},\
         \"rank_stabilization\":[{}]}}",
        results.dataset.total_samples(),
        results.dataset.total_reports(),
        results.s_samples,
        results.s_reports,
        results.stability.stable,
        results.stability.dynamic,
        json_f64(results.window_growth),
        results.flips.flips,
        results.flips.flips_up,
        results.flips.flips_down,
        results.flips.hazard_flips,
        c.engine_count,
        c.rows,
        c.strong_pairs.len(),
        c.groups.len(),
        ranks.join(","),
    );

    let engines: Vec<String> = (0..results.flips.engine_count)
        .map(|i| {
            let id = EngineId::new(i);
            let row = &results.flips.matrix[i];
            let flips: u64 = row.iter().map(|cell| cell.flips).sum();
            let opportunities: u64 = row.iter().map(|cell| cell.opportunities).sum();
            let ratio = if opportunities == 0 {
                0.0
            } else {
                flips as f64 / opportunities as f64
            };
            format!(
                "{{\"name\":{},\"flips\":{flips},\"opportunities\":{opportunities},\
                 \"flip_ratio\":{}}}",
                json_string(fleet.profile(id).name),
                json_f64(ratio)
            )
        })
        .collect();
    let engines_json = format!("{{\"epoch\":{epoch},\"engines\":[{}]}}", engines.join(","));

    // `RunMetrics::to_json` pretty-prints; the wire format is one line
    // per response. String values escape control characters, so every
    // literal newline in the rendering is structural whitespace.
    let metrics_json = format!(
        "{{\"epoch\":{epoch},\"metrics\":{}}}",
        metrics.to_json().replace('\n', " ")
    );

    let (debug_fnv, rho_fnv) = study_fingerprint(results);
    let fingerprint = format!(
        "{{\"epoch\":{epoch},\"ingest_done\":{},\
         \"fingerprint\":\"{debug_fnv:016x}\",\"rho_fnv\":\"{rho_fnv:016x}\"}}",
        view.done,
    );

    let engine_names: Vec<String> = (0..results.flips.engine_count)
        .map(|i| fleet.profile(EngineId::new(i)).name.to_string())
        .collect();
    let recommend = render_recommend(epoch, &slot_indexes, &results.flips, &engine_names);

    Snapshot {
        epoch,
        status,
        results: results_json,
        engines: engines_json,
        metrics: metrics_json,
        fingerprint,
        slot_indexes,
        slot_epochs,
        flips: Arc::new(results.flips.clone()),
        engine_names: Arc::new(engine_names),
        alerts,
        recommend,
        degraded: view.degraded,
    }
}

/// The `recommend` verb, pre-rendered at publish: a Maat-style online
/// recommendation of (a) the Fig. 9 AV-Rank threshold whose label
/// sequences stabilized for the most fresh-dynamic samples so far —
/// the threshold that would have labeled the stream most accurately —
/// and (b) the engine subset whose flip ratio is at or below the
/// fleet-wide ratio (the engines whose labels move least per
/// opportunity, §7.1). Everything is summed from the per-slot §6
/// stabilization masks ([`SampleIndex::stab_counts_in_s`]), so the
/// counts equal the offline `label_stabilization_all` sweep bit for
/// bit, and ties break deterministically (lowest threshold; ratio then
/// name order for engines).
fn render_recommend(
    epoch: u64,
    slot_indexes: &[Arc<SampleIndex>],
    flips: &FlipAnalysis,
    engine_names: &[String],
) -> String {
    // Threshold sweep: sum each slot's in-S stabilization-mask counts.
    let mut counts = [0u64; FIG9_THRESHOLDS.len()];
    let mut in_s = 0u64;
    for index in slot_indexes {
        let (slot_counts, slot_in_s) = index.stab_counts_in_s();
        for (acc, c) in counts.iter_mut().zip(slot_counts) {
            *acc += c;
        }
        in_s += slot_in_s;
    }
    let best = (0..FIG9_THRESHOLDS.len())
        .max_by(|&a, &b| counts[a].cmp(&counts[b]).then(b.cmp(&a)))
        .expect("FIG9_THRESHOLDS is nonempty");

    // Engine subset: flip ratio at or below the fleet-wide ratio,
    // compared exactly by cross-multiplication (no float thresholds).
    let per_engine: Vec<(usize, u64, u64)> = (0..flips.engine_count)
        .map(|i| {
            let row = &flips.matrix[i];
            let f: u64 = row.iter().map(|cell| cell.flips).sum();
            let o: u64 = row.iter().map(|cell| cell.opportunities).sum();
            (i, f, o)
        })
        .collect();
    let total_flips: u64 = per_engine.iter().map(|&(_, f, _)| f).sum();
    let total_opps: u64 = per_engine.iter().map(|&(_, _, o)| o).sum();
    let mut subset: Vec<&(usize, u64, u64)> = per_engine
        .iter()
        .filter(|&&(_, f, o)| {
            // f/o <= total_flips/total_opps  ⇔  f·TO <= TF·o
            o > 0 && (f as u128) * (total_opps as u128) <= (total_flips as u128) * (o as u128)
        })
        .collect();
    subset.sort_by(|&&(i, fi, oi), &&(j, fj, oj)| {
        ((fi as u128) * (oj as u128))
            .cmp(&((fj as u128) * (oi as u128)))
            .then_with(|| engine_names[i].cmp(&engine_names[j]))
    });
    let engines: Vec<String> = subset
        .iter()
        .map(|&&(i, f, o)| {
            format!(
                "{{\"name\":{},\"flips\":{f},\"opportunities\":{o},\"flip_ratio\":{}}}",
                json_string(&engine_names[i]),
                json_f64(f as f64 / o as f64),
            )
        })
        .collect();
    format!(
        "{{\"epoch\":{epoch},\"recommend\":{{\
         \"threshold\":{},\"stabilized\":{},\"in_s\":{in_s},\
         \"thresholds\":[{}],\
         \"engines\":[{}]}}}}",
        FIG9_THRESHOLDS[best],
        counts[best],
        FIG9_THRESHOLDS
            .iter()
            .zip(counts)
            .map(|(t, c)| format!("{{\"threshold\":{t},\"stabilized\":{c}}}"))
            .collect::<Vec<_>>()
            .join(","),
        engines.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_helpers_guard_edge_cases() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_snapshot_renders_parseable_responses() {
        let config = ServeConfig::new(100, 7);
        let fleet = EngineFleet::with_seed(config.seed ^ 0xF1EE_7000);
        let snap = empty_snapshot(&config, &fleet);
        assert_eq!(snap.epoch, 0);
        for doc in [
            &snap.status,
            &snap.results,
            &snap.engines,
            &snap.metrics,
            &snap.fingerprint,
        ] {
            let v = crate::obs::json::parse(doc).expect("valid JSON");
            assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0));
        }
        let v = crate::obs::json::parse(&snap.fingerprint).expect("valid JSON");
        assert_eq!(
            v.get("fingerprint").and_then(|f| f.as_str()).map(str::len),
            Some(16)
        );
    }

    #[test]
    fn merge_partitions_accumulates_by_month() {
        let a = PartitionStats {
            month: None,
            reports: 3,
            raw_bytes: 30,
            stored_bytes: 10,
        };
        let mut acc = vec![a];
        merge_partitions(&mut acc.clone(), &[]);
        merge_partitions(&mut acc, &[a, a]);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].reports, 9);
        assert_eq!(acc[0].stored_bytes, 30);
    }

    #[test]
    fn slot_routing_is_total_and_stable() {
        for ordinal in 0..512u64 {
            let hash = SampleHash::from_ordinal(ordinal);
            let slot = slot_of(hash);
            assert!(slot < INGEST_SLOTS);
            assert_eq!(slot, slot_of(hash), "routing must be pure");
        }
    }

    #[test]
    fn config_normalization_clamps() {
        let mut config = ServeConfig::new(10, 1);
        config.shards = 0;
        config.segment_reports = 0;
        config.max_clients = 0;
        let n = config.normalized();
        assert_eq!(n.shards, 1);
        assert_eq!(n.segment_reports, 1);
        assert_eq!(n.max_clients, 1);
        let mut config = ServeConfig::new(10, 1);
        config.shards = 64;
        assert_eq!(config.normalized().shards, INGEST_SLOTS);
    }

    fn bare_snapshot(epoch: u64) -> Snapshot {
        // Every slot stamped with the snapshot's own epoch — the
        // "everything changed" worst case the old wholesale-clearing
        // cache behaved like.
        bare_snapshot_with_slots(epoch, [epoch; INGEST_SLOTS])
    }

    fn bare_snapshot_with_slots(epoch: u64, slot_epochs: [u64; INGEST_SLOTS]) -> Snapshot {
        Snapshot {
            epoch,
            status: String::new(),
            results: String::new(),
            engines: String::new(),
            metrics: String::new(),
            fingerprint: String::new(),
            slot_indexes: empty_slot_indexes(),
            slot_epochs,
            flips: Arc::new(FlipAnalysis::empty(0)),
            engine_names: Arc::new(Vec::new()),
            alerts: Arc::new(Vec::new()),
            recommend: String::new(),
            degraded: false,
        }
    }

    /// A cacheable body as the lazy renderers produce one.
    fn body(epoch: u64, tag: &str) -> String {
        format!("{{\"epoch\":{epoch},\"tag\":\"{tag}\"}}")
    }

    #[test]
    fn cache_serves_hits_within_an_epoch_and_clears_on_swap() {
        let shared = Shared::new();
        let snap1 = bare_snapshot(1);
        let a = cached_response(&shared, 8, &snap1, "k", Some(0), || body(1, "one"));
        let b = cached_response(&shared, 8, &snap1, "k", Some(0), || body(1, "two"));
        assert_eq!(a, body(1, "one"));
        assert_eq!(b, body(1, "one"), "second is a hit");
        assert_eq!(shared.counters.cache_hits.value(), 1);
        assert_eq!(shared.counters.cache_misses.value(), 1);
        // Epoch swap that republished slot 0: the same key renders
        // fresh.
        let snap2 = bare_snapshot(2);
        let c = cached_response(&shared, 8, &snap2, "k", Some(0), || body(2, "three"));
        assert_eq!(c, body(2, "three"), "epoch swap invalidates");
        // A reader still pinning epoch 1 bypasses the cache entirely —
        // it neither serves nor stores stale entries.
        let d = cached_response(&shared, 8, &snap1, "k", Some(0), || body(1, "stale"));
        assert_eq!(d, body(1, "stale"));
        let e = cached_response(&shared, 8, &snap2, "k", Some(0), || body(2, "four"));
        assert_eq!(
            e,
            body(2, "three"),
            "epoch-2 entry survived the stale reader"
        );
    }

    #[test]
    fn cache_keeps_unchanged_slots_across_epoch_swaps() {
        let shared = Shared::new();
        // Epoch 3: slot 0 last changed at epoch 1, slot 1 at epoch 3.
        let mut slot_epochs = [0; INGEST_SLOTS];
        slot_epochs[0] = 1;
        slot_epochs[1] = 3;
        let snap3 = bare_snapshot_with_slots(3, slot_epochs);
        let a = cached_response(&shared, 8, &snap3, "a", Some(0), || body(3, "slot0"));
        let b = cached_response(&shared, 8, &snap3, "b", Some(1), || body(3, "slot1"));
        let c = cached_response(&shared, 8, &snap3, "c", None, || body(3, "study"));
        assert_eq!(
            (a, b, c),
            (body(3, "slot0"), body(3, "slot1"), body(3, "study"))
        );
        // Epoch 4 republishes only slot 1.
        slot_epochs[1] = 4;
        let snap4 = bare_snapshot_with_slots(4, slot_epochs);
        let a2 = cached_response(&shared, 8, &snap4, "a", Some(0), || body(4, "MISS"));
        assert_eq!(
            a2,
            body(4, "slot0"),
            "unchanged slot's entry survives the swap, re-stamped to the live epoch"
        );
        assert_eq!(shared.counters.cache_hits.value(), 1);
        let b2 = cached_response(&shared, 8, &snap4, "b", Some(1), || body(4, "fresh1"));
        assert_eq!(b2, body(4, "fresh1"), "dirty slot's entry was dropped");
        let c2 = cached_response(&shared, 8, &snap4, "c", None, || body(4, "fresh2"));
        assert_eq!(
            c2,
            body(4, "fresh2"),
            "whole-study entries drop every epoch"
        );
    }

    #[test]
    fn cache_never_serves_entries_across_a_degraded_transition() {
        let shared = Shared::new();
        let snap1 = bare_snapshot_with_slots(1, [1; INGEST_SLOTS]);
        cached_response(&shared, 8, &snap1, "k", Some(2), || body(1, "clean"));
        // Epoch 2 degrades without touching slot 2: the baked-in
        // (absent) degraded suffix no longer matches, so no hit.
        let mut snap2 = bare_snapshot_with_slots(2, [1; INGEST_SLOTS]);
        snap2.degraded = true;
        let got = cached_response(&shared, 8, &snap2, "k", Some(2), || body(2, "flagged"));
        assert_eq!(got, body(2, "flagged"));
        assert_eq!(shared.counters.cache_hits.value(), 0);
    }

    #[test]
    fn cache_evicts_least_recently_used_at_capacity() {
        let shared = Shared::new();
        let snap = bare_snapshot(1);
        let hit = |key: &str, tag: &str| {
            let want = body(1, tag);
            cached_response(&shared, 2, &snap, key, Some(0), || want.clone())
        };
        hit("a", "A");
        hit("b", "B");
        hit("a", "A2"); // touch a
        hit("c", "C"); // evicts b
        assert_eq!(hit("a", "A3"), body(1, "A"), "a stayed cached");
        assert_eq!(hit("b", "B2"), body(1, "B2"), "b was the LRU victim");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let shared = Shared::new();
        let snap = bare_snapshot(1);
        assert_eq!(
            cached_response(&shared, 0, &snap, "k", Some(0), || body(1, "x")),
            body(1, "x")
        );
        assert_eq!(
            cached_response(&shared, 0, &snap, "k", Some(0), || body(1, "y")),
            body(1, "y"),
            "nothing is retained"
        );
        assert_eq!(shared.counters.cache_hits.value(), 0);
    }

    #[test]
    fn epoch_tail_splits_only_wellformed_prefixes() {
        assert_eq!(epoch_tail("{\"epoch\":17,\"x\":1}"), Some(",\"x\":1}"));
        assert_eq!(epoch_tail("{\"epoch\":0}"), Some("}"));
        assert_eq!(epoch_tail("{\"epoch\":}"), None);
        assert_eq!(epoch_tail("{\"other\":1}"), None);
        assert_eq!(splice_epoch(42, ",\"x\":1}"), "{\"epoch\":42,\"x\":1}");
    }

    #[test]
    fn lazy_renderers_answer_missing_hashes_and_empty_indexes() {
        let snap = bare_snapshot(3);
        let hash = SampleHash::from_ordinal(7);
        let sample = crate::obs::json::parse(&render_sample(&snap, hash)).expect("json");
        assert_eq!(sample.get("epoch").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(sample.get("found").and_then(|v| v.as_bool()), Some(false));
        let stab = crate::obs::json::parse(&render_stabilized(&snap, hash, 10)).expect("json");
        assert_eq!(stab.get("found").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(stab.get("threshold").and_then(|v| v.as_u64()), Some(10));
        let leaders = crate::obs::json::parse(&render_flip_leaders(&snap, 5)).expect("json");
        assert_eq!(
            leaders
                .get("leaders")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(0)
        );
    }

    /// The published fingerprint is a function of the finished study
    /// only — merging the slot partials through the cached
    /// [`SlotMergeTree`] must produce the same bits as the flat
    /// left-to-right slot merge the daemon used to do, at every fold
    /// worker count.
    #[test]
    fn tree_merged_fingerprint_matches_flat_slot_merge() {
        let samples = 600u64;
        let sim = VirusTotalSim::new(SimConfig::new(0xF1A7, samples));
        let feed = FaultyFeed::from_sim(&sim, 0..samples, FaultPlan::clean(0xF1A7));
        let outcome = Collector::default().run(feed);
        let records = crate::dynamics::records_from_store(&outcome.store);
        let ws = sim.config().window_start();
        let mut slot_records: Vec<Vec<_>> = vec![Vec::new(); INGEST_SLOTS];
        for r in &records {
            slot_records[slot_of(r.meta.hash)].push(r.clone());
        }
        let mut fingerprints = Vec::new();
        for fold_workers in [1usize, 2] {
            let mut studies: Vec<IncrementalStudy<'_>> = (0..INGEST_SLOTS)
                .map(|_| IncrementalStudy::new(sim.fleet(), ws).with_workers(fold_workers))
                .collect();
            let mut tree = SlotMergeTree::new(INGEST_SLOTS);
            for (slot, recs) in slot_records.iter().enumerate() {
                for seg in recs.chunks(recs.len().div_ceil(2).max(1)) {
                    studies[slot].fold_segment(seg, Obs::noop());
                }
                tree.update_slot(slot, studies[slot].partials().cloned(), Vec::new());
            }
            let flat = studies
                .iter()
                .filter_map(|st| st.partials().cloned())
                .reduce(StudyPartials::merge)
                .expect("the fixture folds at least one slot");
            let tree_results = tree
                .root()
                .expect("tree accumulated")
                .finish(Vec::new(), Obs::noop());
            let flat_results = flat.finish(Vec::new(), Obs::noop());
            let fp = study_fingerprint(&tree_results);
            assert_eq!(
                fp,
                study_fingerprint(&flat_results),
                "tree merge must publish the flat merge's bits (fold_workers={fold_workers})"
            );
            fingerprints.push(fp);
        }
        assert_eq!(
            fingerprints[0], fingerprints[1],
            "fold parallelism must never show in the fingerprint"
        );
    }

    #[test]
    fn fingerprint_ignores_stage_timings_only() {
        let fleet = EngineFleet::with_seed(42);
        let window_start = SimConfig::new(42, 10).window_start();
        let study = IncrementalStudy::new(&fleet, window_start);
        let mut a = study.results(Vec::new(), Obs::noop());
        let b = study.results(Vec::new(), Obs::noop());
        let fp_a = study_fingerprint(&a);
        assert_eq!(fp_a, study_fingerprint(&b), "same study, same fingerprint");
        a.s_samples += 1;
        assert_ne!(fp_a, study_fingerprint(&a), "results changes must show");
    }
}
