//! Connector-style alert sinks: drift alerts leaving the daemon.
//!
//! Shard workers hand every freshly fired alert batch (already rendered
//! by [`super::wire::render_alert`], one JSON object per alert) to one
//! sink thread over an mpsc channel; the thread fans each batch out to
//! the configured connectors:
//!
//! * **JSONL file** (`--alerts-out PATH`): one rendered alert per line,
//!   appended and flushed per batch. Delivery is **exactly-once across
//!   crash-recovery**: on startup the sink reads the file back and
//!   seeds a dedup set with every line already present, so the WAL
//!   replay after a SIGKILL (which regenerates the same alerts under
//!   the same `(slot, seq, detector, ordinal)` keys, rendered to the
//!   same bytes) appends nothing it already delivered.
//! * **Webhook-shaped TCP** (`--alerts-tcp ADDR`): rendered alerts
//!   written line-by-line to a TCP endpoint, connected lazily and
//!   retried with exponential backoff. Delivery is **at-most-once**:
//!   recovery-replayed batches are skipped entirely (the remote saw
//!   them before the crash, or never will — consumers needing
//!   exactly-once dedup on the alert key, which is stable across
//!   replays), and a batch that exhausts its retries is dropped and
//!   counted rather than wedging ingest.
//!
//! The channel is unbounded but the producers are bounded: detectors
//! cap alerts per segment, so the sink can never grow past the WAL's
//! segment count times a small constant. The thread exits when every
//! worker has dropped its sender, and the daemon joins it on shutdown —
//! a flushed file is part of the drain contract.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::time::Duration;

use crate::obs::Counter;

/// One batch of rendered alerts travelling from a shard worker to the
/// sink thread.
pub(super) struct SinkMsg {
    /// Rendered alert bodies (see [`super::wire::render_alert`]), in
    /// key order within the batch.
    pub lines: Vec<String>,
    /// The batch came from a crash-recovery WAL replay rather than live
    /// ingest (the file sink dedups it; the TCP sink skips it).
    pub recovered: bool,
}

/// Where the sink thread delivers to.
pub(super) struct SinkConfig {
    /// JSONL file path (`--alerts-out`).
    pub out: Option<PathBuf>,
    /// TCP endpoint (`--alerts-tcp`).
    pub tcp: Option<String>,
}

impl SinkConfig {
    /// Whether any connector is configured (no thread is spawned
    /// otherwise).
    pub fn is_active(&self) -> bool {
        self.out.is_some() || self.tcp.is_some()
    }
}

/// The JSONL file connector with its crash-recovery dedup set.
struct FileSink {
    writer: BufWriter<std::fs::File>,
    /// Every line already in the file — alerts are rendered
    /// deterministically, so byte equality is key equality.
    delivered: HashSet<String>,
}

impl FileSink {
    fn open(path: &PathBuf) -> std::io::Result<FileSink> {
        let mut delivered = HashSet::new();
        match std::fs::File::open(path) {
            Ok(existing) => {
                for line in BufReader::new(existing).lines() {
                    let line = line?;
                    if !line.is_empty() {
                        delivered.insert(line);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileSink {
            writer: BufWriter::new(file),
            delivered,
        })
    }

    /// Appends the batch's new lines, flushing once per batch. Returns
    /// `(emitted, deduped)`.
    fn deliver(&mut self, lines: &[String]) -> std::io::Result<(u64, u64)> {
        let mut emitted = 0;
        let mut deduped = 0;
        for line in lines {
            if self.delivered.contains(line) {
                deduped += 1;
                continue;
            }
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.delivered.insert(line.clone());
            emitted += 1;
        }
        self.writer.flush()?;
        Ok((emitted, deduped))
    }
}

/// Connection attempts per batch before the TCP connector drops it.
const TCP_ATTEMPTS: u32 = 5;
/// First retry backoff; doubles per attempt up to [`TCP_BACKOFF_CAP`].
const TCP_BACKOFF: Duration = Duration::from_millis(50);
/// Backoff ceiling.
const TCP_BACKOFF_CAP: Duration = Duration::from_millis(800);

/// The TCP connector: lazy connect, per-batch retry with exponential
/// backoff, at-most-once delivery.
struct TcpSink {
    addr: String,
    conn: Option<TcpStream>,
}

impl TcpSink {
    fn new(addr: String) -> TcpSink {
        TcpSink { addr, conn: None }
    }

    /// Writes the whole batch over one connection, reconnecting (with
    /// backoff) on failure. Returns the lines actually written.
    fn deliver(&mut self, lines: &[String]) -> u64 {
        let mut backoff = TCP_BACKOFF;
        for attempt in 0..TCP_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(TCP_BACKOFF_CAP);
            }
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => match TcpStream::connect(&self.addr) {
                    Ok(conn) => self.conn.insert(conn),
                    Err(_) => continue,
                },
            };
            let mut payload = String::new();
            for line in lines {
                payload.push_str(line);
                payload.push('\n');
            }
            match conn
                .write_all(payload.as_bytes())
                .and_then(|()| conn.flush())
            {
                Ok(()) => return lines.len() as u64,
                Err(_) => {
                    // A dead connection is retried on a fresh one; the
                    // whole batch is resent (the consumer dedups by
                    // alert key if it must).
                    self.conn = None;
                }
            }
        }
        0
    }
}

/// The sink thread body: drains batches until every producer hangs up,
/// delivering to whichever connectors are configured and counting
/// `serve/alerts_emitted` / `serve/alerts_dropped`.
pub(super) fn sink_loop(
    rx: Receiver<SinkMsg>,
    config: SinkConfig,
    emitted: Counter,
    dropped: Counter,
) {
    let mut file = match &config.out {
        Some(path) => match FileSink::open(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!(
                    "vtld serve: cannot open alerts sink {}: {e}",
                    path.display()
                );
                None
            }
        },
        None => None,
    };
    let mut tcp = config.tcp.clone().map(TcpSink::new);
    while let Ok(SinkMsg { lines, recovered }) = rx.recv() {
        if lines.is_empty() {
            continue;
        }
        if let Some(sink) = file.as_mut() {
            match sink.deliver(&lines) {
                Ok((wrote, deduped)) => {
                    emitted.add(wrote);
                    dropped.add(deduped);
                }
                Err(e) => {
                    eprintln!("vtld serve: alerts sink write failed: {e}");
                    dropped.add(lines.len() as u64);
                }
            }
        }
        if let Some(sink) = tcp.as_mut() {
            if recovered {
                // At-most-once: replayed alerts were either delivered
                // before the crash or are gone; never send them twice.
                dropped.add(lines.len() as u64);
            } else {
                let wrote = sink.deliver(&lines);
                emitted.add(wrote);
                dropped.add(lines.len() as u64 - wrote);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn counters() -> (Counter, Counter, crate::obs::Obs) {
        let obs = crate::obs::Obs::new();
        (
            obs.counter("serve/alerts_emitted"),
            obs.counter("serve/alerts_dropped"),
            obs,
        )
    }

    #[test]
    fn file_sink_appends_and_dedups_across_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "vtld-sink-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("alerts.jsonl");
        let _ = std::fs::remove_file(&path);

        let (emitted, dropped, _obs) = counters();
        let (tx, rx) = channel();
        let lines = vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()];
        tx.send(SinkMsg {
            lines: lines.clone(),
            recovered: false,
        })
        .expect("send");
        drop(tx);
        sink_loop(
            rx,
            SinkConfig {
                out: Some(path.clone()),
                tcp: None,
            },
            emitted.clone(),
            dropped.clone(),
        );
        assert_eq!(emitted.value(), 2);
        assert_eq!(dropped.value(), 0);

        // A second sink over the same file (the recovery case) dedups
        // replayed lines and appends only the genuinely new one.
        let (tx, rx) = channel();
        tx.send(SinkMsg {
            lines: vec![lines[0].clone(), "{\"c\":3}".to_string()],
            recovered: true,
        })
        .expect("send");
        drop(tx);
        sink_loop(
            rx,
            SinkConfig {
                out: Some(path.clone()),
                tcp: None,
            },
            emitted.clone(),
            dropped.clone(),
        );
        assert_eq!(emitted.value(), 3, "one new line appended");
        assert_eq!(dropped.value(), 1, "one replayed line deduped");
        let contents = std::fs::read_to_string(&path).expect("read back");
        let got: Vec<&str> = contents.lines().collect();
        assert_eq!(got, vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn tcp_sink_delivers_live_and_skips_recovered() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let reader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut lines = Vec::new();
            for line in BufReader::new(stream).lines() {
                match line {
                    Ok(line) => lines.push(line),
                    Err(_) => break,
                }
            }
            lines
        });

        let (emitted, dropped, _obs) = counters();
        let (tx, rx) = channel();
        tx.send(SinkMsg {
            lines: vec!["{\"replayed\":true}".to_string()],
            recovered: true,
        })
        .expect("send");
        tx.send(SinkMsg {
            lines: vec!["{\"live\":1}".to_string(), "{\"live\":2}".to_string()],
            recovered: false,
        })
        .expect("send");
        drop(tx);
        sink_loop(
            rx,
            SinkConfig {
                out: None,
                tcp: Some(addr),
            },
            emitted.clone(),
            dropped.clone(),
        );
        assert_eq!(emitted.value(), 2);
        assert_eq!(dropped.value(), 1, "the replayed batch is skipped");
        let got = reader.join().expect("reader thread");
        assert_eq!(got, vec!["{\"live\":1}", "{\"live\":2}"]);
    }

    #[test]
    fn tcp_sink_gives_up_after_bounded_retries() {
        // A port nothing listens on: bind, take the port, drop the
        // listener.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);

        let (emitted, dropped, _obs) = counters();
        let (tx, rx) = channel();
        tx.send(SinkMsg {
            lines: vec!["{\"x\":1}".to_string()],
            recovered: false,
        })
        .expect("send");
        drop(tx);
        sink_loop(
            rx,
            SinkConfig {
                out: None,
                tcp: Some(addr),
            },
            emitted.clone(),
            dropped.clone(),
        );
        assert_eq!(emitted.value(), 0);
        assert_eq!(dropped.value(), 1, "undeliverable batches drop, not wedge");
    }
}
