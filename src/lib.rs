//! # vt-label-dynamics
//!
//! Facade crate for the reproduction of *"Re-measuring the Label Dynamics
//! of Online Anti-Malware Engines from Millions of Samples"* (IMC '23).
//!
//! Re-exports every subsystem under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`stats`] — statistics substrate (Spearman, ECDF, box plots).
//! * [`model`] — domain types (time, hashes, file types, reports).
//! * [`engines`] — the 70 simulated antivirus engine behaviour models.
//! * [`sim`] — the discrete-event VirusTotal platform simulator.
//! * [`store`] — the compressed, month-partitioned report store.
//! * [`aggregate`] — label aggregation strategies.
//! * [`dynamics`] — the paper's measurement analyses (the core library).
//! * [`report`] — text tables / ASCII figures / CSV renderers.
//! * [`obs`] — the zero-dependency observability layer threaded through
//!   the pipeline (spans, counters, histograms, `metrics.json`).
//!
//! Two facade-level modules round it out: [`prelude`] re-exports the
//! blessed types flat (one `use` for a whole study), and [`serve`] is
//! the `vtld serve` daemon — segment-incremental ingestion behind a
//! newline-delimited-JSON TCP endpoint.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or run the full paper reproduction with
//! `cargo run --release --example full_study`.

#![forbid(unsafe_code)]

pub mod prelude;
pub mod serve;

pub use vt_aggregate as aggregate;
pub use vt_dynamics as dynamics;
pub use vt_engines as engines;
pub use vt_model as model;
pub use vt_obs as obs;
pub use vt_report as report;
pub use vt_sim as sim;
pub use vt_stats as stats;
pub use vt_store as store;
