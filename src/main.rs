//! `vtld` — the vt-label-dynamics command line.
//!
//! ```text
//! vtld simulate --samples N [--seed S] --out FEED.vtstore
//!     Generate a seeded VirusTotal feed and persist it.
//!
//! vtld analyze --store FEED.vtstore [--fleet-seed S] [--csv-dir DIR]
//!              [--workers W] [--metrics-out FILE] [--verbose]
//!     Load a persisted feed and print the full paper-vs-measured
//!     report (every table and figure); optionally export each
//!     figure's data series as CSV.
//!
//! vtld study [--samples N] [--seed S] [--csv-dir DIR]
//!            [--workers W] [--metrics-out FILE] [--verbose]
//!     Simulate and analyze in one step (no file involved).
//!
//! vtld serve [--samples N] [--seed S] [--segment-reports R]
//!            [--workers W] [--shards K] [--addr HOST:PORT]
//!            [--data-dir DIR] [--recover] [--max-clients C]
//!            [--cache-samples E] [--alerts-out PATH]
//!            [--alerts-tcp ADDR] [--no-alerts]
//!     Run the long-lived daemon: ingest the chaos-injected feed
//!     through the fault-tolerant collector, fold each sealed segment
//!     incrementally across a sharded worker fleet, run the streaming
//!     drift detectors over every fold, and answer JSON queries —
//!     aggregate, per-hash and alerting — over TCP while ingestion
//!     continues. With `--data-dir`
//!     every sealed segment is fsynced to disk before it is published;
//!     with `--recover` a restarted daemon replays that directory and
//!     resumes ingest where the previous process died (see
//!     `vt_label_dynamics::serve`).
//! ```
//!
//! Each subcommand parses into a typed argument struct
//! ([`SimulateArgs`], [`AnalyzeArgs`], [`StudyArgs`], [`ServeArgs`])
//! with its own `--help` text; flag names, defaults and error messages
//! are stable.
//!
//! `--metrics-out FILE` writes the run's observability snapshot
//! (per-stage spans, collector/store counters, per-worker busy-time
//! histograms) as JSON; `--verbose` renders the same snapshot as a
//! table on stderr. Either flag enables instrumentation; without them
//! the pipeline runs with the no-op [`Obs`] and pays nothing.
//!
//! The analyze path reconstructs sample metadata purely from the stored
//! reports (`records_from_store`) — the same situation the paper faced.
//!
//! All configuration flows through the validating builders
//! ([`SimConfig::builder`], `FleetConfig::builder`), so malformed flag
//! values surface as typed errors, not panics deep in the simulator.

use std::io;
use std::process::ExitCode;
use vt_label_dynamics::dynamics::{analyze_records_obs, par, records_from_store, Study};
use vt_label_dynamics::engines::{EngineFleet, FleetConfig, FleetConfigError};
use vt_label_dynamics::obs::Obs;
use vt_label_dynamics::report::experiments::render_full_report;
use vt_label_dynamics::serve::{ServeConfig, Server};
use vt_label_dynamics::sim::{SimConfig, SimConfigError};
use vt_label_dynamics::store::{read_store, write_store, PersistError};

/// Everything that can go wrong in a `vtld` invocation, typed by layer:
/// bad command line, bad configuration, unreadable store, plain I/O.
#[derive(Debug)]
enum VtldError {
    /// Malformed command line (unknown command/flag, missing value…).
    Usage(String),
    /// A flag value failed configuration validation.
    Config(SimConfigError),
    /// A store file failed to load.
    Load(PersistError),
    /// Filesystem failure, with the path for context.
    Io { context: String, source: io::Error },
}

impl std::fmt::Display for VtldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtldError::Usage(message) => write!(f, "{message}"),
            VtldError::Config(e) => write!(f, "invalid configuration: {e}"),
            VtldError::Load(e) => write!(f, "load failed: {e}"),
            VtldError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for VtldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VtldError::Usage(_) => None,
            VtldError::Config(e) => Some(e),
            VtldError::Load(e) => Some(e),
            VtldError::Io { source, .. } => Some(source),
        }
    }
}

impl From<SimConfigError> for VtldError {
    fn from(e: SimConfigError) -> Self {
        VtldError::Config(e)
    }
}

impl From<FleetConfigError> for VtldError {
    fn from(e: FleetConfigError) -> Self {
        VtldError::Config(SimConfigError::Fleet(e))
    }
}

impl From<PersistError> for VtldError {
    fn from(e: PersistError) -> Self {
        VtldError::Load(e)
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> VtldError {
    let context = context.into();
    move |source| VtldError::Io { context, source }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "simulate" => with_args(rest, SimulateArgs::parse, SimulateArgs::HELP, cmd_simulate),
        "analyze" => with_args(rest, AnalyzeArgs::parse, AnalyzeArgs::HELP, cmd_analyze),
        "study" => with_args(rest, StudyArgs::parse, StudyArgs::HELP, cmd_study),
        "serve" => with_args(rest, ServeArgs::parse, ServeArgs::HELP, cmd_serve),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(VtldError::Usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("vtld: {error}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  vtld simulate --samples N [--seed S] --out FEED.vtstore
  vtld analyze  --store FEED.vtstore [--fleet-seed S] [--csv-dir DIR]
                [--workers W] [--metrics-out FILE] [--verbose]
  vtld study    [--samples N] [--seed S] [--csv-dir DIR]
                [--workers W] [--metrics-out FILE] [--verbose]
  vtld serve    [--samples N] [--seed S] [--segment-reports R]
                [--workers W] [--shards K] [--addr HOST:PORT]
                [--data-dir DIR] [--recover] [--max-clients C]
                [--cache-samples E] [--alerts-out PATH]
                [--alerts-tcp ADDR] [--no-alerts]
  vtld help

run any subcommand with --help for its flags and defaults";

/// Runs one subcommand: `--help` prints the subcommand's help text,
/// anything else parses into the typed argument struct and executes.
fn with_args<A>(
    args: &[String],
    parse: impl FnOnce(&[String]) -> Result<A, VtldError>,
    help: &str,
    run: impl FnOnce(A) -> Result<(), VtldError>,
) -> Result<(), VtldError> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{help}");
        return Ok(());
    }
    run(parse(args)?)
}

// ---- flag-level parsing helpers ----------------------------------------

/// Parses `--key value` flags (and valueless `--switch` flags named in
/// `switches`, recorded with an empty value); rejects unknown keys.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
    switches: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, VtldError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| VtldError::Usage(format!("expected a --flag, got '{}'", args[i])))?;
        if switches.contains(&key) {
            out.push((key, ""));
            i += 1;
            continue;
        }
        if !allowed.contains(&key) {
            return Err(VtldError::Usage(format!("unknown flag --{key}")));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| VtldError::Usage(format!("--{key} requires a value")))?;
        out.push((key, value.as_str()));
        i += 2;
    }
    Ok(out)
}

fn flag<'a>(flags: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn has_switch(flags: &[(&str, &str)], key: &str) -> bool {
    flags.iter().any(|(k, _)| *k == key)
}

fn parse_u64(flags: &[(&str, &str)], key: &str, default: u64) -> Result<u64, VtldError> {
    match flag(flags, key) {
        Some(v) => {
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| VtldError::Usage(format!("--{key} expects an integer, got '{v}'")))
        }
        None => Ok(default),
    }
}

fn parse_workers(flags: &[(&str, &str)]) -> Result<usize, VtldError> {
    Ok(parse_u64(flags, "workers", par::default_workers() as u64)?.max(1) as usize)
}

// ---- typed per-subcommand arguments ------------------------------------

/// `vtld simulate`: generate a feed and persist it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SimulateArgs {
    samples: u64,
    seed: u64,
    out: String,
}

impl SimulateArgs {
    const HELP: &'static str = "vtld simulate — generate a seeded feed and persist it

flags:
  --samples N   samples to simulate           (default 100000)
  --seed S      platform seed, decimal or 0x  (default 0x7e575eed)
  --out PATH    output store file             (required)";

    fn parse(args: &[String]) -> Result<Self, VtldError> {
        let flags = parse_flags(args, &["samples", "seed", "out"], &[])?;
        Ok(Self {
            samples: parse_u64(&flags, "samples", 100_000)?,
            seed: parse_u64(&flags, "seed", 0x7e57_5eed)?,
            out: flag(&flags, "out")
                .ok_or_else(|| VtldError::Usage("simulate requires --out PATH".into()))?
                .to_string(),
        })
    }
}

/// The shared observability flags (`--metrics-out`, `--verbose`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ObsArgs {
    metrics_out: Option<String>,
    verbose: bool,
}

impl ObsArgs {
    fn parse(flags: &[(&str, &str)]) -> Self {
        Self {
            metrics_out: flag(flags, "metrics-out").map(str::to_string),
            verbose: has_switch(flags, "verbose"),
        }
    }

    /// The registry a command runs under: enabled only when
    /// `--metrics-out` or `--verbose` asked for it.
    fn obs(&self) -> Obs {
        if self.metrics_out.is_some() || self.verbose {
            Obs::new()
        } else {
            Obs::disabled()
        }
    }

    /// Emits the run's metrics as requested: JSON to `--metrics-out`,
    /// a human-readable table to stderr for `--verbose`.
    fn emit(&self, obs: &Obs) -> Result<(), VtldError> {
        if !obs.is_enabled() {
            return Ok(());
        }
        let metrics = obs.snapshot();
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, metrics.to_json())
                .map_err(io_err(format!("cannot write {path}")))?;
            eprintln!("wrote metrics to {path}");
        }
        if self.verbose {
            eprint!("{}", metrics.render_table());
        }
        Ok(())
    }
}

/// `vtld analyze`: load a persisted feed and print the full report.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AnalyzeArgs {
    store: String,
    fleet_seed: u64,
    csv_dir: Option<String>,
    workers: usize,
    obs: ObsArgs,
}

impl AnalyzeArgs {
    const HELP: &'static str = "vtld analyze — analyze a persisted feed

flags:
  --store PATH        store file to load                  (required)
  --fleet-seed S      engine-fleet seed                   (default 0x7e575eed ^ 0xf1ee7000)
  --csv-dir DIR       export figure data series as CSV
  --workers W         analysis worker threads             (default: cores)
  --metrics-out FILE  write observability snapshot JSON
  --verbose           render the snapshot table on stderr";

    fn parse(args: &[String]) -> Result<Self, VtldError> {
        let flags = parse_flags(
            args,
            &["store", "fleet-seed", "csv-dir", "workers", "metrics-out"],
            &["verbose"],
        )?;
        Ok(Self {
            store: flag(&flags, "store")
                .ok_or_else(|| VtldError::Usage("analyze requires --store PATH".into()))?
                .to_string(),
            fleet_seed: parse_u64(&flags, "fleet-seed", 0x7e57_5eed ^ 0xF1EE_7000)?,
            csv_dir: flag(&flags, "csv-dir").map(str::to_string),
            workers: parse_workers(&flags)?,
            obs: ObsArgs::parse(&flags),
        })
    }
}

/// `vtld study`: simulate and analyze in one step.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StudyArgs {
    samples: u64,
    seed: u64,
    csv_dir: Option<String>,
    workers: usize,
    obs: ObsArgs,
}

impl StudyArgs {
    const HELP: &'static str = "vtld study — simulate and analyze in one step

flags:
  --samples N         samples to simulate                 (default 100000)
  --seed S            platform seed, decimal or 0x        (default 0x7e575eed)
  --csv-dir DIR       export figure data series as CSV
  --workers W         generation/analysis worker threads  (default: cores)
  --metrics-out FILE  write observability snapshot JSON
  --verbose           render the snapshot table on stderr";

    fn parse(args: &[String]) -> Result<Self, VtldError> {
        let flags = parse_flags(
            args,
            &["samples", "seed", "csv-dir", "workers", "metrics-out"],
            &["verbose"],
        )?;
        Ok(Self {
            samples: parse_u64(&flags, "samples", 100_000)?,
            seed: parse_u64(&flags, "seed", 0x7e57_5eed)?,
            csv_dir: flag(&flags, "csv-dir").map(str::to_string),
            workers: parse_workers(&flags)?,
            obs: ObsArgs::parse(&flags),
        })
    }
}

/// `vtld serve`: the long-running incremental daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ServeArgs {
    samples: u64,
    seed: u64,
    segment_reports: u64,
    workers: usize,
    shards: usize,
    addr: String,
    data_dir: Option<String>,
    recover: bool,
    max_clients: usize,
    cache_samples: usize,
    alerts: bool,
    alerts_out: Option<String>,
    alerts_tcp: Option<String>,
}

impl ServeArgs {
    const HELP: &'static str = "vtld serve — incremental ingestion daemon with a TCP query endpoint

flags:
  --samples N           samples the simulated feed delivers  (default 100000)
  --seed S              platform seed, decimal or 0x         (default 0x7e575eed)
  --segment-reports R   reports per sealed segment           (default 20000)
  --workers W           per-segment fold worker threads      (default: cores)
  --shards K            shard worker threads folding the
                        fixed hash slots (1..=8)             (default 1)
  --addr HOST:PORT      bind address (port 0 = ephemeral)    (default 127.0.0.1:7311)
  --data-dir DIR        durable segment log: every sealed
                        segment is fsynced here before it
                        is folded or published
  --recover             replay DIR's sealed segments on
                        startup and resume ingest past them
                        (requires --data-dir)
  --max-clients C       concurrent connections before new
                        clients are shed with a typed
                        'overloaded' response               (default 256)
  --cache-samples E     hot-sample response cache entries
                        for the per-hash query verbs
                        (0 disables caching)                (default 1024)
  --alerts-out PATH     append drift alerts to PATH as JSONL
                        (exactly-once across --recover)
  --alerts-tcp ADDR     stream drift alerts to a TCP endpoint
                        (at-most-once, retried with backoff)
  --no-alerts           disable the streaming drift detectors

protocol: one JSON object per line over TCP; commands are
{\"cmd\":\"status\"}, {\"cmd\":\"results\"}, {\"cmd\":\"engines\"},
{\"cmd\":\"metrics\"}, {\"cmd\":\"fingerprint\"}, {\"cmd\":\"shutdown\"},
the per-hash query verbs {\"cmd\":\"sample\",\"hash\":H},
{\"cmd\":\"stabilized\",\"hash\":H,\"threshold\":T},
{\"cmd\":\"engine\",\"name\":N} and {\"cmd\":\"flip_leaders\",\"k\":K},
plus the alerting verbs {\"cmd\":\"alerts\",\"since\":E} (drift alerts
published after epoch E), {\"cmd\":\"subscribe\"} (switches the
connection to a push stream of new alerts) and {\"cmd\":\"recommend\"}
(the online threshold/engine-subset recommendation).
Every response carries the snapshot epoch.";

    fn parse(args: &[String]) -> Result<Self, VtldError> {
        let flags = parse_flags(
            args,
            &[
                "samples",
                "seed",
                "segment-reports",
                "workers",
                "shards",
                "addr",
                "data-dir",
                "max-clients",
                "cache-samples",
                "alerts-out",
                "alerts-tcp",
            ],
            &["recover", "no-alerts"],
        )?;
        let data_dir = flag(&flags, "data-dir").map(str::to_string);
        let recover = has_switch(&flags, "recover");
        if recover && data_dir.is_none() {
            return Err(VtldError::Usage(
                "--recover requires --data-dir DIR (there is nothing to replay without a \
                 segment log)"
                    .into(),
            ));
        }
        Ok(Self {
            samples: parse_u64(&flags, "samples", 100_000)?,
            seed: parse_u64(&flags, "seed", 0x7e57_5eed)?,
            segment_reports: parse_u64(&flags, "segment-reports", 20_000)?.max(1),
            workers: parse_workers(&flags)?,
            shards: parse_u64(&flags, "shards", 1)?.clamp(1, 8) as usize,
            addr: flag(&flags, "addr").unwrap_or("127.0.0.1:7311").to_string(),
            data_dir,
            recover,
            max_clients: parse_u64(&flags, "max-clients", 256)?.max(1) as usize,
            cache_samples: parse_u64(&flags, "cache-samples", 1_024)? as usize,
            alerts: !has_switch(&flags, "no-alerts"),
            alerts_out: flag(&flags, "alerts-out").map(str::to_string),
            alerts_tcp: flag(&flags, "alerts-tcp").map(str::to_string),
        })
    }
}

// ---- subcommand bodies -------------------------------------------------

/// Writes every figure's data series into `dir` as CSV files.
fn write_csvs(
    dir: &str,
    results: &vt_label_dynamics::dynamics::StudyResults,
    fleet: &EngineFleet,
) -> Result<(), VtldError> {
    std::fs::create_dir_all(dir).map_err(io_err(format!("cannot create {dir}")))?;
    let files = vt_label_dynamics::report::export_csv(results, fleet);
    let n = files.len();
    for (name, contents) in files {
        let path = std::path::Path::new(dir).join(name);
        std::fs::write(&path, contents)
            .map_err(io_err(format!("cannot write {}", path.display())))?;
    }
    eprintln!("wrote {n} CSV files to {dir}");
    Ok(())
}

fn cmd_simulate(args: SimulateArgs) -> Result<(), VtldError> {
    let SimulateArgs { samples, seed, out } = args;
    let config = SimConfig::builder().seed(seed).samples(samples).build()?;

    eprintln!("simulating {samples} samples (seed {seed:#x})...");
    let study = Study::generate(config);
    let store = study.build_store();
    let mut file = std::fs::File::create(&out).map_err(io_err(format!("cannot create {out}")))?;
    write_store(&store, &mut file).map_err(io_err("write failed"))?;
    let stats = store.partition_stats();
    let bytes: u64 = stats.iter().map(|p| p.stored_bytes).sum();
    println!(
        "wrote {} reports / {} samples to {out} ({:.2} MB packed)",
        store.report_count(),
        store.sample_count(),
        bytes as f64 / 1e6
    );
    println!(
        "analyze it with: vtld analyze --store {out} --fleet-seed {:#x}",
        seed ^ 0xF1EE_7000
    );
    Ok(())
}

fn cmd_analyze(args: AnalyzeArgs) -> Result<(), VtldError> {
    let obs = args.obs.obs();
    let path = &args.store;
    let mut file = std::fs::File::open(path).map_err(io_err(format!("cannot open {path}")))?;
    let mut store = read_store(&mut file)?;
    store.set_obs(&obs);
    eprintln!(
        "loaded {} reports / {} samples from {path}",
        store.report_count(),
        store.sample_count()
    );
    let records = records_from_store(&store);
    let fleet = EngineFleet::new(FleetConfig::builder().seed(args.fleet_seed).build()?);
    let window_start = vt_label_dynamics::model::time::Month::COLLECTION_START.start();
    let results = analyze_records_obs(
        &records,
        store.partition_stats(),
        &fleet,
        window_start,
        args.workers,
        &obs,
    );
    println!("{}", render_full_report(&results, &fleet));
    if let Some(dir) = &args.csv_dir {
        write_csvs(dir, &results, &fleet)?;
    }
    args.obs.emit(&obs)
}

fn cmd_study(args: StudyArgs) -> Result<(), VtldError> {
    let config = SimConfig::builder()
        .seed(args.seed)
        .samples(args.samples)
        .build()?;
    let obs = args.obs.obs();

    eprintln!(
        "simulating {} samples (seed {:#x})...",
        args.samples, args.seed
    );
    let study = Study::generate_with_workers_obs(config, args.workers, &obs);
    let results = if obs.is_enabled() {
        // Instrumented path: ingest through the fault-tolerant
        // collector (clean feed) so collector/store metrics cover the
        // paper's collection pipeline, then the registry-driven stages.
        study.run_with_obs(args.workers, &obs)
    } else {
        let store = study.build_store();
        analyze_records_obs(
            study.records(),
            store.partition_stats(),
            study.sim().fleet(),
            config.window_start(),
            args.workers,
            Obs::noop(),
        )
    };
    println!("{}", render_full_report(&results, study.sim().fleet()));
    if let Some(dir) = &args.csv_dir {
        write_csvs(dir, &results, study.sim().fleet())?;
    }
    args.obs.emit(&obs)
}

fn cmd_serve(args: ServeArgs) -> Result<(), VtldError> {
    let mut config = ServeConfig::new(args.samples, args.seed);
    config.segment_reports = args.segment_reports;
    config.workers = args.workers;
    config.shards = args.shards;
    config.addr = args.addr;
    config.data_dir = args.data_dir.map(std::path::PathBuf::from);
    config.recover = args.recover;
    config.max_clients = args.max_clients;
    config.cache_samples = args.cache_samples;
    config.alerts = args.alerts;
    config.alerts_out = args.alerts_out.map(std::path::PathBuf::from);
    config.alerts_tcp = args.alerts_tcp;
    let addr_for_err = config.addr.clone();
    let server = Server::start(config).map_err(io_err(format!("cannot bind {addr_for_err}")))?;
    eprintln!(
        "vtld serve listening on {} (newline-delimited JSON; try {{\"cmd\":\"status\"}})",
        server.addr()
    );
    server.wait();
    eprintln!("vtld serve: shut down");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simulate_args_parse_and_validate() {
        let ok = SimulateArgs::parse(&strings(&[
            "--samples",
            "500",
            "--seed",
            "0x2A",
            "--out",
            "f.vtstore",
        ]))
        .expect("valid");
        assert_eq!(
            ok,
            SimulateArgs {
                samples: 500,
                seed: 42,
                out: "f.vtstore".into()
            }
        );
        let err = SimulateArgs::parse(&strings(&["--samples", "500"])).unwrap_err();
        assert_eq!(err.to_string(), "simulate requires --out PATH");
        let err = SimulateArgs::parse(&strings(&["--bogus", "1"])).unwrap_err();
        assert_eq!(err.to_string(), "unknown flag --bogus");
        let err = SimulateArgs::parse(&strings(&["samples"])).unwrap_err();
        assert_eq!(err.to_string(), "expected a --flag, got 'samples'");
        let err = SimulateArgs::parse(&strings(&["--seed"])).unwrap_err();
        assert_eq!(err.to_string(), "--seed requires a value");
        let err = SimulateArgs::parse(&strings(&["--samples", "many"])).unwrap_err();
        assert_eq!(err.to_string(), "--samples expects an integer, got 'many'");
    }

    #[test]
    fn analyze_and_study_args_defaults() {
        let a = AnalyzeArgs::parse(&strings(&["--store", "f.vtstore", "--verbose"])).expect("ok");
        assert_eq!(a.store, "f.vtstore");
        assert_eq!(a.fleet_seed, 0x7e57_5eed ^ 0xF1EE_7000);
        assert!(a.obs.verbose);
        assert!(a.obs.metrics_out.is_none());
        assert!(a.csv_dir.is_none());
        let err = AnalyzeArgs::parse(&[]).unwrap_err();
        assert_eq!(err.to_string(), "analyze requires --store PATH");

        let s =
            StudyArgs::parse(&strings(&["--workers", "3", "--metrics-out", "m.json"])).expect("ok");
        assert_eq!(s.samples, 100_000);
        assert_eq!(s.seed, 0x7e57_5eed);
        assert_eq!(s.workers, 3);
        assert_eq!(s.obs.metrics_out.as_deref(), Some("m.json"));
        assert!(s.obs.obs().is_enabled());
        assert!(!StudyArgs::parse(&[]).expect("ok").obs.obs().is_enabled());
    }

    #[test]
    fn serve_args_defaults_and_overrides() {
        let d = ServeArgs::parse(&[]).expect("ok");
        assert_eq!(d.samples, 100_000);
        assert_eq!(d.segment_reports, 20_000);
        assert_eq!(d.addr, "127.0.0.1:7311");
        assert_eq!(d.shards, 1);
        assert_eq!(d.max_clients, 256);
        assert_eq!(d.cache_samples, 1_024);
        assert!(d.data_dir.is_none());
        assert!(!d.recover);
        assert!(d.alerts, "detectors are on by default");
        assert!(d.alerts_out.is_none());
        assert!(d.alerts_tcp.is_none());
        let s = ServeArgs::parse(&strings(&[
            "--samples",
            "2000",
            "--segment-reports",
            "0",
            "--addr",
            "127.0.0.1:0",
        ]))
        .expect("ok");
        assert_eq!(s.samples, 2_000);
        assert_eq!(s.segment_reports, 1, "zero clamps to one");
        assert_eq!(s.addr, "127.0.0.1:0");
        let err = ServeArgs::parse(&strings(&["--csv-dir", "x"])).unwrap_err();
        assert_eq!(err.to_string(), "unknown flag --csv-dir");
    }

    #[test]
    fn serve_args_hardening_flags() {
        let s = ServeArgs::parse(&strings(&[
            "--shards",
            "4",
            "--data-dir",
            "/tmp/wal",
            "--recover",
            "--max-clients",
            "2",
        ]))
        .expect("ok");
        assert_eq!(s.shards, 4);
        assert_eq!(s.data_dir.as_deref(), Some("/tmp/wal"));
        assert!(s.recover);
        assert_eq!(s.max_clients, 2);

        assert_eq!(
            ServeArgs::parse(&strings(&["--shards", "99"]))
                .expect("ok")
                .shards,
            8,
            "shards clamp to the slot count"
        );
        assert_eq!(
            ServeArgs::parse(&strings(&["--max-clients", "0"]))
                .expect("ok")
                .max_clients,
            1,
            "a zero client cap clamps to one"
        );
        assert_eq!(
            ServeArgs::parse(&strings(&["--cache-samples", "0"]))
                .expect("ok")
                .cache_samples,
            0,
            "zero means caching disabled, not clamped"
        );
        let err = ServeArgs::parse(&strings(&["--recover"])).unwrap_err();
        assert!(
            err.to_string().starts_with("--recover requires --data-dir"),
            "{err}"
        );
    }

    #[test]
    fn serve_args_alerting_flags() {
        let s = ServeArgs::parse(&strings(&[
            "--alerts-out",
            "/tmp/alerts.jsonl",
            "--alerts-tcp",
            "127.0.0.1:9000",
        ]))
        .expect("ok");
        assert!(s.alerts);
        assert_eq!(s.alerts_out.as_deref(), Some("/tmp/alerts.jsonl"));
        assert_eq!(s.alerts_tcp.as_deref(), Some("127.0.0.1:9000"));

        let off = ServeArgs::parse(&strings(&["--no-alerts"])).expect("ok");
        assert!(!off.alerts, "--no-alerts turns the detectors off");
        assert!(off.alerts_out.is_none());
    }
}
