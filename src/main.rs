//! `vtld` — the vt-label-dynamics command line.
//!
//! ```text
//! vtld simulate --samples N [--seed S] --out FEED.vtstore
//!     Generate a seeded VirusTotal feed and persist it.
//!
//! vtld analyze --store FEED.vtstore [--fleet-seed S] [--csv-dir DIR]
//!     Load a persisted feed and print the full paper-vs-measured
//!     report (every table and figure); optionally export each
//!     figure's data series as CSV.
//!
//! vtld study [--samples N] [--seed S] [--csv-dir DIR]
//!     Simulate and analyze in one step (no file involved).
//! ```
//!
//! The analyze path reconstructs sample metadata purely from the stored
//! reports (`records_from_store`) — the same situation the paper faced.

use std::process::ExitCode;
use vt_label_dynamics::dynamics::{analyze_records, records_from_store, Study};
use vt_label_dynamics::engines::{EngineFleet, FleetConfig};
use vt_label_dynamics::report::experiments::render_full_report;
use vt_label_dynamics::sim::SimConfig;
use vt_label_dynamics::store::{read_store, write_store};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "study" => cmd_study(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("vtld: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  vtld simulate --samples N [--seed S] --out FEED.vtstore
  vtld analyze  --store FEED.vtstore [--fleet-seed S] [--csv-dir DIR]
  vtld study    [--samples N] [--seed S] [--csv-dir DIR]
  vtld help";

/// Writes every figure's data series into `dir` as CSV files.
fn write_csvs(
    dir: &str,
    results: &vt_label_dynamics::dynamics::StudyResults,
    fleet: &EngineFleet,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let files = vt_label_dynamics::report::export_csv(results, fleet);
    let n = files.len();
    for (name, contents) in files {
        let path = std::path::Path::new(dir).join(name);
        std::fs::write(&path, contents)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    eprintln!("wrote {n} CSV files to {dir}");
    Ok(())
}

/// Parses `--key value` flags; rejects unknown keys.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{}'", args[i]))?;
        if !allowed.contains(&key) {
            return Err(format!("unknown flag --{key}"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} requires a value"))?;
        out.push((key, value.as_str()));
        i += 2;
    }
    Ok(out)
}

fn flag<'a>(flags: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_u64(flags: &[(&str, &str)], key: &str, default: u64) -> Result<u64, String> {
    match flag(flags, key) {
        Some(v) => {
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| format!("--{key} expects an integer, got '{v}'"))
        }
        None => Ok(default),
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["samples", "seed", "out"])?;
    let samples = parse_u64(&flags, "samples", 100_000)?;
    let seed = parse_u64(&flags, "seed", 0x7e57_5eed)?;
    let out = flag(&flags, "out").ok_or("simulate requires --out PATH")?;

    eprintln!("simulating {samples} samples (seed {seed:#x})...");
    let study = Study::generate(SimConfig::new(seed, samples));
    let store = study.build_store();
    let mut file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_store(&store, &mut file).map_err(|e| format!("write failed: {e}"))?;
    let stats = store.partition_stats();
    let bytes: u64 = stats.iter().map(|p| p.stored_bytes).sum();
    println!(
        "wrote {} reports / {} samples to {out} ({:.2} MB packed)",
        store.report_count(),
        store.sample_count(),
        bytes as f64 / 1e6
    );
    println!(
        "analyze it with: vtld analyze --store {out} --fleet-seed {:#x}",
        seed ^ 0xF1EE_7000
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["store", "fleet-seed", "csv-dir"])?;
    let path = flag(&flags, "store").ok_or("analyze requires --store PATH")?;
    let fleet_seed = parse_u64(&flags, "fleet-seed", 0x7e57_5eed ^ 0xF1EE_7000)?;

    let mut file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let store = read_store(&mut file).map_err(|e| format!("load failed: {e}"))?;
    eprintln!(
        "loaded {} reports / {} samples from {path}",
        store.report_count(),
        store.sample_count()
    );
    let records = records_from_store(&store);
    let fleet = EngineFleet::new(FleetConfig {
        seed: fleet_seed,
        ..FleetConfig::default()
    });
    let window_start = vt_label_dynamics::model::time::Month::COLLECTION_START.start();
    let results = analyze_records(&records, store.partition_stats(), &fleet, window_start);
    println!("{}", render_full_report(&results, &fleet));
    if let Some(dir) = flag(&flags, "csv-dir") {
        write_csvs(dir, &results, &fleet)?;
    }
    Ok(())
}

fn cmd_study(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["samples", "seed", "csv-dir"])?;
    let samples = parse_u64(&flags, "samples", 100_000)?;
    let seed = parse_u64(&flags, "seed", 0x7e57_5eed)?;
    eprintln!("simulating {samples} samples (seed {seed:#x})...");
    let study = Study::generate(SimConfig::new(seed, samples));
    let results = study.run();
    println!("{}", render_full_report(&results, study.sim().fleet()));
    if let Some(dir) = flag(&flags, "csv-dir") {
        write_csvs(dir, &results, study.sim().fleet())?;
    }
    Ok(())
}
