//! `vtld` — the vt-label-dynamics command line.
//!
//! ```text
//! vtld simulate --samples N [--seed S] --out FEED.vtstore
//!     Generate a seeded VirusTotal feed and persist it.
//!
//! vtld analyze --store FEED.vtstore [--fleet-seed S] [--csv-dir DIR]
//!              [--workers W] [--metrics-out FILE] [--verbose]
//!     Load a persisted feed and print the full paper-vs-measured
//!     report (every table and figure); optionally export each
//!     figure's data series as CSV.
//!
//! vtld study [--samples N] [--seed S] [--csv-dir DIR]
//!            [--workers W] [--metrics-out FILE] [--verbose]
//!     Simulate and analyze in one step (no file involved).
//! ```
//!
//! `--metrics-out FILE` writes the run's observability snapshot
//! (per-stage spans, collector/store counters, per-worker busy-time
//! histograms) as JSON; `--verbose` renders the same snapshot as a
//! table on stderr. Either flag enables instrumentation; without them
//! the pipeline runs with the no-op [`Obs`] and pays nothing.
//!
//! The analyze path reconstructs sample metadata purely from the stored
//! reports (`records_from_store`) — the same situation the paper faced.
//!
//! All configuration flows through the validating builders
//! ([`SimConfig::builder`], `FleetConfig::builder`), so malformed flag
//! values surface as typed errors, not panics deep in the simulator.

use std::io;
use std::process::ExitCode;
use vt_label_dynamics::dynamics::{analyze_records_obs, par, records_from_store, Study};
use vt_label_dynamics::engines::{EngineFleet, FleetConfig, FleetConfigError};
use vt_label_dynamics::obs::Obs;
use vt_label_dynamics::report::experiments::render_full_report;
use vt_label_dynamics::sim::{SimConfig, SimConfigError};
use vt_label_dynamics::store::{read_store, write_store, PersistError};

/// Everything that can go wrong in a `vtld` invocation, typed by layer:
/// bad command line, bad configuration, unreadable store, plain I/O.
#[derive(Debug)]
enum VtldError {
    /// Malformed command line (unknown command/flag, missing value…).
    Usage(String),
    /// A flag value failed configuration validation.
    Config(SimConfigError),
    /// A store file failed to load.
    Load(PersistError),
    /// Filesystem failure, with the path for context.
    Io { context: String, source: io::Error },
}

impl std::fmt::Display for VtldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtldError::Usage(message) => write!(f, "{message}"),
            VtldError::Config(e) => write!(f, "invalid configuration: {e}"),
            VtldError::Load(e) => write!(f, "load failed: {e}"),
            VtldError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for VtldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VtldError::Usage(_) => None,
            VtldError::Config(e) => Some(e),
            VtldError::Load(e) => Some(e),
            VtldError::Io { source, .. } => Some(source),
        }
    }
}

impl From<SimConfigError> for VtldError {
    fn from(e: SimConfigError) -> Self {
        VtldError::Config(e)
    }
}

impl From<FleetConfigError> for VtldError {
    fn from(e: FleetConfigError) -> Self {
        VtldError::Config(SimConfigError::Fleet(e))
    }
}

impl From<PersistError> for VtldError {
    fn from(e: PersistError) -> Self {
        VtldError::Load(e)
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> VtldError {
    let context = context.into();
    move |source| VtldError::Io { context, source }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "study" => cmd_study(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(VtldError::Usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("vtld: {error}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  vtld simulate --samples N [--seed S] --out FEED.vtstore
  vtld analyze  --store FEED.vtstore [--fleet-seed S] [--csv-dir DIR]
                [--workers W] [--metrics-out FILE] [--verbose]
  vtld study    [--samples N] [--seed S] [--csv-dir DIR]
                [--workers W] [--metrics-out FILE] [--verbose]
  vtld help";

/// Writes every figure's data series into `dir` as CSV files.
fn write_csvs(
    dir: &str,
    results: &vt_label_dynamics::dynamics::StudyResults,
    fleet: &EngineFleet,
) -> Result<(), VtldError> {
    std::fs::create_dir_all(dir).map_err(io_err(format!("cannot create {dir}")))?;
    let files = vt_label_dynamics::report::export_csv(results, fleet);
    let n = files.len();
    for (name, contents) in files {
        let path = std::path::Path::new(dir).join(name);
        std::fs::write(&path, contents)
            .map_err(io_err(format!("cannot write {}", path.display())))?;
    }
    eprintln!("wrote {n} CSV files to {dir}");
    Ok(())
}

/// Parses `--key value` flags (and valueless `--switch` flags named in
/// `switches`, recorded with an empty value); rejects unknown keys.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
    switches: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, VtldError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| VtldError::Usage(format!("expected a --flag, got '{}'", args[i])))?;
        if switches.contains(&key) {
            out.push((key, ""));
            i += 1;
            continue;
        }
        if !allowed.contains(&key) {
            return Err(VtldError::Usage(format!("unknown flag --{key}")));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| VtldError::Usage(format!("--{key} requires a value")))?;
        out.push((key, value.as_str()));
        i += 2;
    }
    Ok(out)
}

fn flag<'a>(flags: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn has_switch(flags: &[(&str, &str)], key: &str) -> bool {
    flags.iter().any(|(k, _)| *k == key)
}

fn parse_u64(flags: &[(&str, &str)], key: &str, default: u64) -> Result<u64, VtldError> {
    match flag(flags, key) {
        Some(v) => {
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| VtldError::Usage(format!("--{key} expects an integer, got '{v}'")))
        }
        None => Ok(default),
    }
}

/// The observability registry a command runs under: enabled only when
/// `--metrics-out` or `--verbose` asked for it.
fn obs_for(flags: &[(&str, &str)]) -> Obs {
    if flag(flags, "metrics-out").is_some() || has_switch(flags, "verbose") {
        Obs::new()
    } else {
        Obs::disabled()
    }
}

/// Emits the run's metrics as requested: JSON to `--metrics-out`,
/// a human-readable table to stderr for `--verbose`.
fn emit_metrics(obs: &Obs, flags: &[(&str, &str)]) -> Result<(), VtldError> {
    if !obs.is_enabled() {
        return Ok(());
    }
    let metrics = obs.snapshot();
    if let Some(path) = flag(flags, "metrics-out") {
        std::fs::write(path, metrics.to_json()).map_err(io_err(format!("cannot write {path}")))?;
        eprintln!("wrote metrics to {path}");
    }
    if has_switch(flags, "verbose") {
        eprint!("{}", metrics.render_table());
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), VtldError> {
    let flags = parse_flags(args, &["samples", "seed", "out"], &[])?;
    let samples = parse_u64(&flags, "samples", 100_000)?;
    let seed = parse_u64(&flags, "seed", 0x7e57_5eed)?;
    let out = flag(&flags, "out")
        .ok_or_else(|| VtldError::Usage("simulate requires --out PATH".into()))?;
    let config = SimConfig::builder().seed(seed).samples(samples).build()?;

    eprintln!("simulating {samples} samples (seed {seed:#x})...");
    let study = Study::generate(config);
    let store = study.build_store();
    let mut file = std::fs::File::create(out).map_err(io_err(format!("cannot create {out}")))?;
    write_store(&store, &mut file).map_err(io_err("write failed"))?;
    let stats = store.partition_stats();
    let bytes: u64 = stats.iter().map(|p| p.stored_bytes).sum();
    println!(
        "wrote {} reports / {} samples to {out} ({:.2} MB packed)",
        store.report_count(),
        store.sample_count(),
        bytes as f64 / 1e6
    );
    println!(
        "analyze it with: vtld analyze --store {out} --fleet-seed {:#x}",
        seed ^ 0xF1EE_7000
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), VtldError> {
    let flags = parse_flags(
        args,
        &["store", "fleet-seed", "csv-dir", "workers", "metrics-out"],
        &["verbose"],
    )?;
    let path = flag(&flags, "store")
        .ok_or_else(|| VtldError::Usage("analyze requires --store PATH".into()))?;
    let fleet_seed = parse_u64(&flags, "fleet-seed", 0x7e57_5eed ^ 0xF1EE_7000)?;
    let workers = parse_u64(&flags, "workers", par::default_workers() as u64)?.max(1) as usize;
    let obs = obs_for(&flags);

    let mut file = std::fs::File::open(path).map_err(io_err(format!("cannot open {path}")))?;
    let mut store = read_store(&mut file)?;
    store.set_obs(&obs);
    eprintln!(
        "loaded {} reports / {} samples from {path}",
        store.report_count(),
        store.sample_count()
    );
    let records = records_from_store(&store);
    let fleet = EngineFleet::new(FleetConfig::builder().seed(fleet_seed).build()?);
    let window_start = vt_label_dynamics::model::time::Month::COLLECTION_START.start();
    let results = analyze_records_obs(
        &records,
        store.partition_stats(),
        &fleet,
        window_start,
        workers,
        &obs,
    );
    println!("{}", render_full_report(&results, &fleet));
    if let Some(dir) = flag(&flags, "csv-dir") {
        write_csvs(dir, &results, &fleet)?;
    }
    emit_metrics(&obs, &flags)
}

fn cmd_study(args: &[String]) -> Result<(), VtldError> {
    let flags = parse_flags(
        args,
        &["samples", "seed", "csv-dir", "workers", "metrics-out"],
        &["verbose"],
    )?;
    let samples = parse_u64(&flags, "samples", 100_000)?;
    let seed = parse_u64(&flags, "seed", 0x7e57_5eed)?;
    let workers = parse_u64(&flags, "workers", par::default_workers() as u64)?.max(1) as usize;
    let config = SimConfig::builder().seed(seed).samples(samples).build()?;
    let obs = obs_for(&flags);

    eprintln!("simulating {samples} samples (seed {seed:#x})...");
    let study = Study::generate_with_workers_obs(config, workers, &obs);
    let results = if obs.is_enabled() {
        // Instrumented path: ingest through the fault-tolerant
        // collector (clean feed) so collector/store metrics cover the
        // paper's collection pipeline, then the registry-driven stages.
        study.run_with_obs(workers, &obs)
    } else {
        let store = study.build_store();
        analyze_records_obs(
            study.records(),
            store.partition_stats(),
            study.sim().fleet(),
            config.window_start(),
            workers,
            Obs::noop(),
        )
    };
    println!("{}", render_full_report(&results, study.sim().fleet()));
    if let Some(dir) = flag(&flags, "csv-dir") {
        write_csvs(dir, &results, study.sim().fleet())?;
    }
    emit_metrics(&obs, &flags)
}
