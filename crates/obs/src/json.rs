//! A minimal JSON reader.
//!
//! [`crate::RunMetrics::to_json`] hand-writes its output (the build is
//! hermetic — no serde); this module is the matching reader, used to
//! validate that `metrics.json` round-trips and by tests/tools that
//! consume it. It parses the full JSON grammar (RFC 8259) minus one
//! liberty: numbers are held as `f64`, so integers above 2^53 lose
//! precision — far beyond any counter a single run produces.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Why a parse failed, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing
/// whitespace).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a leading surrogate must
                            // be followed by `\u` + trailing surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected \\u for low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-borrow the full UTF-8 character (the byte-wise
                    // scan above only dispatched on ASCII).
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self
            .pos
            .checked_add(4)
            .ok_or_else(|| self.err("overflow"))?;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("\"hi\\n\\u00e9\"").unwrap().as_str(), Some("hi\né"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().as_object(), Some(&[][..]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate rejected");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a': 1}",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_ascii_passthrough() {
        let v = parse("\"ムスタファ/metric\"").unwrap();
        assert_eq!(v.as_str(), Some("ムスタファ/metric"));
    }
}
