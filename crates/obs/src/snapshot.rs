//! Point-in-time metric snapshots: the `RunMetrics` tree, its JSON
//! serialization, and the human-readable stage table.

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the lower bound of the bucket holding the
    /// `q`-th observation (`q` in `[0, 1]`). Exact to within one power
    /// of two — plenty for spotting imbalance and tail latency.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lo;
            }
        }
        self.max
    }
}

/// Snapshot of one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Times the span ran.
    pub count: u64,
    /// Total nanoseconds across runs.
    pub total_ns: u64,
    /// Longest single run in nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per run (0.0 when never run).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Everything an [`crate::Obs`] registry held at snapshot time, sorted
/// by name within each kind. The `/`-separated names form the tree;
/// [`RunMetrics::render_table`] groups by the first segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, snapshot)` for every span.
    pub spans: Vec<(String, SpanSnapshot)>,
}

impl RunMetrics {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Looks up a span by name.
    pub fn span(&self, name: &str) -> Option<SpanSnapshot> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Serializes the snapshot as a self-contained JSON object:
    ///
    /// ```json
    /// {
    ///   "counters":   {"collector/accepted": 42, ...},
    ///   "gauges":     {...},
    ///   "histograms": {"par/generate/worker_busy_ns":
    ///                    {"count":8,"sum":...,"min":...,"max":...,
    ///                     "buckets":[[524288,3],[1048576,5]]}, ...},
    ///   "spans":      {"pipeline/flips":
    ///                    {"count":1,"total_ns":...,"max_ns":...}, ...}
    /// }
    /// ```
    ///
    /// The output parses back with [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        write_scalar_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        write_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lo}, {n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.max_ns
            ));
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot as a human-readable table on stderr-width
    /// lines: spans first (the per-stage breakdown), then counters,
    /// gauges, and histogram summaries, grouped by the first path
    /// segment of each name.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>6} {:>12} {:>12} {:>12}\n",
                "span", "count", "total", "mean", "max"
            ));
            let mut group = "";
            for (name, s) in &self.spans {
                let head = name.split('/').next().unwrap_or("");
                if head != group {
                    group = head;
                    out.push_str(&format!("-- {group}\n"));
                }
                out.push_str(&format!(
                    "{:<44} {:>6} {:>12} {:>12} {:>12}\n",
                    name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns() as u64),
                    fmt_ns(s.max_ns)
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<44} {:>14}\n", "counter", "value"));
            let mut group = "";
            for (name, v) in &self.counters {
                let head = name.split('/').next().unwrap_or("");
                if head != group {
                    group = head;
                    out.push_str(&format!("-- {group}\n"));
                }
                out.push_str(&format!("{name:<44} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("\n{:<44} {:>14}\n", "gauge", "value"));
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<44} {v:>14}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<44} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "mean", "p50", "p99", "max"
            ));
            for (name, h) in &self.histograms {
                let time_like = name.ends_with("_ns");
                let f = |v: u64| {
                    if time_like {
                        fmt_ns(v)
                    } else {
                        v.to_string()
                    }
                };
                out.push_str(&format!(
                    "{:<44} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                    name,
                    h.count,
                    f(h.mean() as u64),
                    f(h.quantile(0.5)),
                    f(h.quantile(0.99)),
                    f(h.max)
                ));
            }
        }
        out
    }
}

/// Writes `(name, u64)` pairs as a JSON object body (no braces).
fn write_scalar_map(out: &mut String, pairs: &[(String, u64)]) {
    for (i, (name, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_json_string(out, name);
        out.push_str(&format!(": {v}"));
    }
}

/// Writes a JSON string literal with full escaping.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample() -> RunMetrics {
        let obs = Obs::new();
        obs.counter("collector/accepted").add(42);
        obs.counter("store/reports_appended").add(7);
        obs.gauge("par/generate/imbalance_pct").set(117);
        let h = obs.histogram("par/generate/worker_busy_ns");
        h.observe(1_000_000);
        h.observe(3_000_000);
        obs.record_span("pipeline/flips", 5_000_000);
        obs.snapshot()
    }

    #[test]
    fn lookups_find_metrics() {
        let m = sample();
        assert_eq!(m.counter("collector/accepted"), Some(42));
        assert_eq!(m.counter("missing"), None);
        assert_eq!(m.gauge("par/generate/imbalance_pct"), Some(117));
        assert_eq!(m.span("pipeline/flips").unwrap().total_ns, 5_000_000);
        let h = m.histogram("par/generate/worker_busy_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.quantile(0.0), 524_288);
        assert_eq!(h.quantile(1.0), 2_097_152);
    }

    #[test]
    fn json_output_parses_back() {
        let m = sample();
        let json = m.to_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("collector/accepted"))
                .and_then(|n| n.as_u64()),
            Some(42)
        );
        assert_eq!(
            v.get("spans")
                .and_then(|s| s.get("pipeline/flips"))
                .and_then(|s| s.get("total_ns"))
                .and_then(|n| n.as_u64()),
            Some(5_000_000)
        );
        let buckets = v
            .get("histograms")
            .and_then(|h| h.get("par/generate/worker_busy_ns"))
            .and_then(|h| h.get("buckets"))
            .and_then(|b| b.as_array())
            .expect("buckets array");
        assert_eq!(buckets.len(), 2);
    }

    #[test]
    fn table_renders_every_metric() {
        let m = sample();
        let table = m.render_table();
        for name in [
            "collector/accepted",
            "store/reports_appended",
            "par/generate/imbalance_pct",
            "par/generate/worker_busy_ns",
            "pipeline/flips",
        ] {
            assert!(table.contains(name), "table missing {name}:\n{table}");
        }
    }

    #[test]
    fn quantile_on_empty_histogram() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        };
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
