//! # vt-obs — zero-dependency observability
//!
//! The measurement pipeline ingests a simulated 14-month feed and runs
//! a dozen CPU-bound analysis passes; operating that at scale lives or
//! dies on per-stage throughput visibility. This crate is the
//! observability substrate the rest of the workspace threads through:
//! hand-rolled (the build is hermetic — no `tracing`, no `tokio`),
//! lock-free on hot paths, and near-zero cost when disabled.
//!
//! * [`Obs`] — the metric registry. Constructed enabled ([`Obs::new`])
//!   or disabled ([`Obs::disabled`] / the static [`Obs::noop`]).
//!   Registration (cold path) takes a mutex; every recording operation
//!   (hot path) is a relaxed atomic on an [`std::sync::Arc`]-shared
//!   cell, so handles outlive the borrow that registered them and can
//!   be stashed in long-lived structs (stores, collectors, workers).
//! * [`Counter`] / [`Gauge`] — monotonic adds and set/set-max values.
//! * [`Histogram`] — fixed-bucket log2 histogram (65 buckets covering
//!   the full `u64` range), with count/sum/min/max.
//! * [`Span`] — a monotonic-clock ([`std::time::Instant`]) RAII timer
//!   that records elapsed nanoseconds on drop.
//! * [`RunMetrics`] — a point-in-time snapshot of everything
//!   registered, serializable to JSON ([`RunMetrics::to_json`]) and
//!   renderable as a human-readable stage table
//!   ([`RunMetrics::render_table`]).
//! * [`json`] — a minimal JSON reader used to validate round trips of
//!   the writer's output (and by tests/tools that consume
//!   `metrics.json`).
//!
//! Every handle obtained from a *disabled* `Obs` carries no cell: the
//! recording methods reduce to a branch on a `None`, which the
//! optimizer hoists — a disabled pipeline pays essentially nothing, and
//! no `Instant::now` syscalls are made.
//!
//! Metric names are `/`-separated paths (`"collector/accepted"`,
//! `"pipeline/flips"`); the snapshot is sorted by name and the table
//! renderer groups rows by their first path segment, which is what
//! makes the flat registry read as a tree.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
mod snapshot;

pub use snapshot::{HistogramSnapshot, RunMetrics, SpanSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 histogram buckets: bucket 0 holds exact zeros,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, so 65 buckets
/// cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket.
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

#[derive(Debug)]
pub(crate) struct HistCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct SpanCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanCell {
    #[inline]
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// One registered metric (internal registry slot).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
    Span(Arc<SpanCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Span(_) => "span",
        }
    }
}

/// A monotonically increasing counter handle.
///
/// Cloning is cheap (an `Arc` bump); a handle from a disabled [`Obs`]
/// (or a `Default` one) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value / high-water-mark gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.observe(v);
        }
    }

    /// Observations recorded so far (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

/// An RAII span timer: measures from construction to drop on the
/// monotonic clock and records the elapsed nanoseconds. Obtained from
/// [`Obs::span`]; a span from a disabled `Obs` never reads the clock.
#[derive(Debug)]
pub struct Span {
    cell: Option<(Arc<SpanCell>, Instant)>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.cell.take() {
            cell.record(saturating_ns(start.elapsed()));
        }
    }
}

/// Clamps a duration to nanoseconds in `u64` (584 years — effectively
/// never saturates, but keeps the cast honest).
#[inline]
pub fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The metric registry. See the crate docs for the design.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    registry: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            registry: Mutex::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: every handle it returns is a no-op and no
    /// clock is ever read.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            registry: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared static disabled registry — the default `&Obs` to pass
    /// when instrumentation is not wanted.
    pub fn noop() -> &'static Obs {
        static NOOP: Obs = Obs {
            enabled: false,
            registry: Mutex::new(BTreeMap::new()),
        };
        &NOOP
    }

    /// Whether this registry records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn register<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        extract: impl FnOnce(&Metric) -> Option<T>,
    ) -> Option<T> {
        if !self.enabled {
            return None;
        }
        let mut reg = self.registry.lock().expect("obs registry poisoned");
        let metric = reg.entry(name.to_owned()).or_insert_with(make);
        match extract(metric) {
            Some(t) => Some(t),
            None => panic!("metric '{name}' already registered as a {}", metric.kind()),
        }
    }

    /// Registers (or re-fetches) a counter. Panics if `name` is already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.register(
            name,
            || Metric::Counter(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        ))
    }

    /// Registers (or re-fetches) a gauge. Panics on a kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.register(
            name,
            || Metric::Gauge(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Gauge(c) => Some(Arc::clone(c)),
                _ => None,
            },
        ))
    }

    /// Registers (or re-fetches) a histogram. Panics on a kind
    /// mismatch.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.register(
            name,
            || Metric::Histogram(Arc::new(HistCell::new())),
            |m| match m {
                Metric::Histogram(c) => Some(Arc::clone(c)),
                _ => None,
            },
        ))
    }

    fn span_cell(&self, name: &str) -> Option<Arc<SpanCell>> {
        self.register(
            name,
            || Metric::Span(Arc::new(SpanCell::default())),
            |m| match m {
                Metric::Span(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Starts a named span; elapsed wall time records when the returned
    /// guard drops. Disabled registries return an inert guard without
    /// reading the clock.
    pub fn span(&self, name: &str) -> Span {
        Span {
            cell: self.span_cell(name).map(|c| (c, Instant::now())),
        }
    }

    /// Records an externally measured duration into a named span —
    /// the merge point for per-worker shards timed off-thread.
    pub fn record_span(&self, name: &str, ns: u64) {
        if let Some(cell) = self.span_cell(name) {
            cell.record(ns);
        }
    }

    /// Times `f` under a named span and returns its output.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name within each kind.
    pub fn snapshot(&self) -> RunMetrics {
        let reg = self.registry.lock().expect("obs registry poisoned");
        let mut metrics = RunMetrics::default();
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(c) => metrics
                    .counters
                    .push((name.clone(), c.load(Ordering::Relaxed))),
                Metric::Gauge(c) => metrics
                    .gauges
                    .push((name.clone(), c.load(Ordering::Relaxed))),
                Metric::Histogram(c) => metrics.histograms.push((name.clone(), c.snapshot())),
                Metric::Span(c) => metrics.spans.push((name.clone(), c.snapshot())),
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let obs = Obs::new();
        let c = obs.counter("a/hits");
        c.add(3);
        c.incr();
        assert_eq!(c.value(), 4);
        // Re-registration returns the same cell.
        assert_eq!(obs.counter("a/hits").value(), 4);

        let g = obs.gauge("a/depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.value(), 7);
        g.set_max(11);
        assert_eq!(g.value(), 11);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let obs = Obs::disabled();
        let c = obs.counter("x");
        c.add(100);
        assert_eq!(c.value(), 0);
        obs.histogram("h").observe(5);
        obs.record_span("s", 123);
        drop(obs.span("s2"));
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty());
        assert!(!Obs::noop().is_enabled());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(64), 1 << 63);

        let obs = Obs::new();
        let h = obs.histogram("h");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let snap = obs.snapshot();
        let (_, hist) = &snap.histograms[0];
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 1006);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 1000);
        // Buckets: 0 → [0], 1 → [1], 2 → [2,3], 1000 → [512..1024).
        assert_eq!(hist.buckets, vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
    }

    #[test]
    fn spans_accumulate() {
        let obs = Obs::new();
        obs.record_span("stage/a", 100);
        obs.record_span("stage/a", 300);
        obs.time("stage/b", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let snap = obs.snapshot();
        let a = snap.span("stage/a").expect("span a");
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 400);
        assert_eq!(a.max_ns, 300);
        let b = snap.span("stage/b").expect("span b");
        assert_eq!(b.count, 1);
        assert!(b.total_ns >= 1_000_000, "slept ≥ 1ms: {}", b.total_ns);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let obs = Obs::new();
        obs.counter("same");
        obs.gauge("same");
    }

    #[test]
    fn handles_are_send_sync_and_shareable() {
        let obs = Obs::new();
        let c = obs.counter("threads/total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }
}
