//! Scan execution helpers.
//!
//! Thin wrapper over the fleet for one-off scans; bulk generation goes
//! through [`crate::api::SampleSession`] (which reuses the per-sample
//! plan across that sample's scans).

use vt_engines::EngineFleet;
use vt_model::{SampleMeta, Timestamp, VerdictVec};

/// Scans a sample once at time `t`, returning the verdict vector.
///
/// Equivalent to what the platform's analysis pipeline does for one
/// report; useful for spot checks and examples.
pub fn scan_once(fleet: &EngineFleet, sample: &SampleMeta, t: Timestamp) -> VerdictVec {
    let plan = fleet.sample_plan(sample);
    fleet.scan(&plan, sample, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Duration};
    use vt_model::{FileType, GroundTruth, SampleHash};

    #[test]
    fn scan_once_matches_session_path() {
        let fleet = EngineFleet::with_seed(3);
        let origin = Timestamp::from_date(Date::new(2021, 7, 1));
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(9),
            file_type: FileType::Win32Exe,
            origin,
            first_submission: origin + Duration::days(2),
            truth: GroundTruth::Malicious { detectability: 0.7 },
        };
        let t = meta.first_submission + Duration::days(1);
        let direct = scan_once(&fleet, &meta, t);
        let plan = fleet.sample_plan(&meta);
        assert_eq!(direct, fleet.scan(&plan, &meta, t));
    }
}
