//! Sample population generation.
//!
//! Generates [`SampleMeta`] records whose marginals match the paper's
//! §4 dataset description:
//!
//! * file types ~ Table 3 (top-20 shares + NULL + a Zipf tail over the
//!   330 long-tail types that together carry 11.71%);
//! * 91.76% of samples are *fresh* (first submitted inside the window);
//! * first-submission times follow Table 2's monthly volume profile;
//! * per-type malice prevalence and detectability (the latent drivers
//!   of the per-type dynamics regimes of Figs. 6 & 8);
//! * an in-the-wild *age* at first submission (origin precedes
//!   submission, so part of the engine ramp has already happened — the
//!   reason fresh samples rarely surface at AV-Rank 0).
//!
//! Generation is deterministic per sample ordinal: each sample's draws
//! come from an RNG seeded by `(config seed, ordinal)`, so any subrange
//! of the population can be generated independently (and in parallel).

use crate::alias::AliasTable;
use crate::config::SimConfig;
use crate::distr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vt_model::filetype::{FileType, OTHER_TYPE_COUNT, TOTAL_TYPE_COUNT};
use vt_model::hash::mix64;
use vt_model::time::{Duration, Month, MINUTES_PER_DAY};
use vt_model::{GroundTruth, SampleHash, SampleMeta};

/// Monthly report volumes from Table 2 (used as weights for placing
/// first submissions in time).
pub const MONTHLY_REPORT_COUNTS: [u64; 14] = [
    41_336_308, 51_945_339, 59_538_559, 60_369_255, 64_546_564, 55_113_116, 57_728_868, 59_421_199,
    69_676_958, 61_981_425, 76_759_558, 68_555_398, 62_400_644, 58_193_854,
];

/// Per-type population parameters (prevalence, detectability shape,
/// age, resubmission appetite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypePopulation {
    /// Fraction of submitted samples of this type that are malicious.
    /// (VT traffic is malware-heavy; this is prevalence *among
    /// submissions*, not in the wild.)
    pub malice_prevalence: f64,
    /// Beta(a, b) shape of the detectability latent (asymptotic AV-Rank
    /// ≈ 70 × detectability).
    pub detectability_beta: (f64, f64),
    /// Median in-the-wild age (days) at first submission.
    pub age_median_days: f64,
    /// Multiplier on the probability of being scanned more than once
    /// (Table 3 shows e.g. Win32 DLL at 4.0 reports/sample vs TXT at
    /// 1.3).
    pub resubmit_factor: f64,
    /// Fraction of the malicious population that is grayware/PUP-like:
    /// low detectability (asymptotic AV-Rank ~2-10) with slow ramps.
    /// These are what makes low thresholds (t = 1..5) see gray samples
    /// in Fig. 8a.
    pub grayware_prob: f64,
}

/// Population parameters for a file type.
pub fn type_population(ft: FileType) -> TypePopulation {
    use FileType::*;
    let t = |prev: f64, a: f64, b: f64, age: f64, resub: f64, gray: f64| TypePopulation {
        malice_prevalence: prev,
        detectability_beta: (a, b),
        age_median_days: age,
        resubmit_factor: resub,
        grayware_prob: gray,
    };
    match ft {
        Win32Exe => t(0.72, 4.2, 2.1, 16.0, 1.2, 0.14),
        Win32Dll => t(0.65, 3.8, 2.3, 17.0, 3.0, 0.14),
        Win64Exe => t(0.65, 4.0, 2.2, 16.0, 2.2, 0.14),
        Win64Dll => t(0.60, 3.6, 2.4, 17.0, 2.2, 0.14),
        Txt => t(0.35, 1.6, 4.0, 12.0, 1.5, 0.38),
        Html => t(0.45, 1.8, 3.8, 12.0, 1.4, 0.35),
        Zip => t(0.40, 1.8, 3.6, 13.0, 2.4, 0.35),
        Pdf => t(0.35, 1.6, 4.0, 13.0, 1.8, 0.35),
        Xml => t(0.28, 1.4, 4.6, 12.0, 1.3, 0.38),
        Json => t(0.22, 1.3, 5.2, 12.0, 1.3, 0.38),
        Dex => t(0.50, 2.4, 2.7, 16.0, 1.2, 0.20),
        ElfExecutable => t(0.55, 2.4, 2.7, 13.0, 1.0, 0.18),
        ElfSharedLib => t(0.20, 1.5, 5.5, 9.0, 1.0, 0.20),
        Epub => t(0.08, 1.2, 7.0, 8.0, 1.5, 0.30),
        Lnk => t(0.50, 2.2, 3.0, 8.0, 1.0, 0.20),
        Fpx => t(0.06, 1.2, 8.0, 8.0, 1.1, 0.30),
        Php => t(0.38, 1.8, 4.2, 8.0, 0.9, 0.20),
        Docx => t(0.30, 1.8, 3.6, 8.0, 1.4, 0.20),
        Gzip => t(0.18, 1.5, 5.0, 8.0, 1.4, 0.25),
        Jpeg => t(0.05, 1.2, 8.0, 8.0, 1.2, 0.30),
        Null => t(0.30, 1.8, 4.0, 8.0, 1.0, 0.22),
        Other(_) => t(0.30, 1.8, 4.0, 8.0, 0.7, 0.22),
    }
}

/// Deterministic sample-population generator.
#[derive(Debug, Clone)]
pub struct PopulationGen {
    config: SimConfig,
    type_table: AliasTable,
    month_table: AliasTable,
}

impl PopulationGen {
    /// Builds the generator for a config.
    pub fn new(config: SimConfig) -> Self {
        // Weights over the dense type index space: top-20 + NULL from
        // Table 3, then a Zipf(1.5) tail over the 330 Other types that
        // together carry OTHER_SHARE_PPM.
        let mut weights = vec![0.0f64; TOTAL_TYPE_COUNT];
        for (idx, w) in weights.iter_mut().enumerate().take(21) {
            *w = FileType::from_dense_index(idx).sample_share_ppm() as f64;
        }
        let zipf_total: f64 = (1..=OTHER_TYPE_COUNT as usize)
            .map(|k| 1.0 / (k as f64).powf(1.5))
            .sum();
        for k in 1..=OTHER_TYPE_COUNT as usize {
            weights[20 + k] =
                FileType::OTHER_SHARE_PPM as f64 * (1.0 / (k as f64).powf(1.5)) / zipf_total;
        }
        let type_table = AliasTable::new(&weights);
        let month_table = AliasTable::new(&MONTHLY_REPORT_COUNTS.map(|c| c as f64));
        Self {
            config,
            type_table,
            month_table,
        }
    }

    /// The per-sample RNG (parallel-friendly: any ordinal can be
    /// generated independently).
    fn rng_for(&self, ordinal: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix64(&[self.config.seed, 0x90b, ordinal]))
    }

    /// Generates sample number `ordinal`.
    pub fn sample(&self, ordinal: u64) -> SampleMeta {
        let mut rng = self.rng_for(ordinal);
        let hash = SampleHash::from_ordinal(mix64(&[self.config.seed, ordinal]));
        let type_idx = self.type_table.sample(&mut rng);
        let file_type = FileType::from_dense_index(type_idx);
        let pop = type_population(file_type);

        // First submission time.
        let fresh = rng.gen::<f64>() < self.config.fresh_fraction;
        let first_submission = if fresh {
            let month = Month::COLLECTION_START.plus(self.month_table.sample(&mut rng));
            let span = (month.end() - month.start()).as_minutes();
            month.start() + Duration::minutes(rng.gen_range(0..span))
        } else {
            // Pre-existing: first submitted up to a year before the
            // window (it will be re-scanned inside the window).
            let start = self.config.window_start();
            start - Duration::minutes(rng.gen_range(1..365 * MINUTES_PER_DAY))
        };

        // Ground truth. Malicious samples are a mixture of commodity
        // malware (the per-type Beta) and grayware/PUPs with low
        // asymptotic ranks.
        let truth = if rng.gen::<f64>() < pop.malice_prevalence {
            let detectability = if rng.gen::<f64>() < pop.grayware_prob {
                distr::beta(&mut rng, 1.2, 11.0)
            } else {
                let (a, b) = pop.detectability_beta;
                distr::beta(&mut rng, a, b)
            };
            GroundTruth::Malicious {
                detectability: detectability as f32,
            }
        } else {
            GroundTruth::Benign
        };

        // Age in the wild at first submission. Malicious samples reach
        // VT while hot (young); benign files can be arbitrarily old.
        let age_median = match truth {
            GroundTruth::Malicious { .. } => pop.age_median_days,
            GroundTruth::Benign => pop.age_median_days * 6.0,
        };
        let age_days = distr::lognormal(&mut rng, age_median, 0.9);
        let origin =
            first_submission - Duration::minutes((age_days * MINUTES_PER_DAY as f64) as i64);

        SampleMeta {
            hash,
            file_type,
            origin,
            first_submission,
            truth,
        }
    }

    /// Iterates the whole population.
    pub fn iter(&self) -> impl Iterator<Item = SampleMeta> + '_ {
        (0..self.config.samples).map(move |i| self.sample(i))
    }

    /// The simulation config this generator was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(samples: u64) -> PopulationGen {
        PopulationGen::new(SimConfig::new(0xBEEF, samples))
    }

    #[test]
    fn generation_is_deterministic() {
        let g = gen(100);
        for i in [0u64, 7, 99] {
            assert_eq!(g.sample(i), g.sample(i));
        }
        let g2 = gen(100);
        assert_eq!(g.sample(5), g2.sample(5));
    }

    #[test]
    fn type_distribution_matches_table3() {
        let g = gen(60_000);
        let mut win32exe = 0u64;
        let mut null = 0u64;
        let mut other = 0u64;
        for s in g.iter() {
            match s.file_type {
                FileType::Win32Exe => win32exe += 1,
                FileType::Null => null += 1,
                FileType::Other(_) => other += 1,
                _ => {}
            }
        }
        let n = 60_000f64;
        assert!((win32exe as f64 / n - 0.2521).abs() < 0.01, "{win32exe}");
        assert!((null as f64 / n - 0.0960).abs() < 0.008, "{null}");
        assert!((other as f64 / n - 0.1171).abs() < 0.008, "{other}");
    }

    #[test]
    fn freshness_fraction_matches() {
        let g = gen(30_000);
        let start = g.config().window_start();
        let fresh = g.iter().filter(|s| s.is_fresh(start)).count();
        let frac = fresh as f64 / 30_000.0;
        assert!((frac - 0.9176).abs() < 0.01, "fresh fraction {frac}");
    }

    #[test]
    fn submissions_fall_in_or_before_window() {
        let g = gen(5_000);
        let (start, end) = (g.config().window_start(), g.config().window_end());
        for s in g.iter() {
            assert!(s.first_submission < end);
            assert!(s.first_submission >= start - Duration::days(365));
            assert!(s.origin <= s.first_submission, "origin after submission");
        }
    }

    #[test]
    fn malice_prevalence_per_type() {
        let g = gen(60_000);
        let mut exe = (0u64, 0u64);
        let mut jpeg = (0u64, 0u64);
        for s in g.iter() {
            match s.file_type {
                FileType::Win32Exe => {
                    exe.0 += 1;
                    exe.1 += s.truth.is_malicious() as u64;
                }
                FileType::Jpeg => {
                    jpeg.0 += 1;
                    jpeg.1 += s.truth.is_malicious() as u64;
                }
                _ => {}
            }
        }
        let exe_rate = exe.1 as f64 / exe.0 as f64;
        assert!((exe_rate - 0.72).abs() < 0.03, "exe malice {exe_rate}");
        if jpeg.0 > 50 {
            let jpeg_rate = jpeg.1 as f64 / jpeg.0 as f64;
            assert!(jpeg_rate < 0.15, "jpeg malice {jpeg_rate}");
        }
    }

    #[test]
    fn monthly_profile_is_weighted() {
        let g = gen(40_000);
        let start = g.config().window_start();
        let mut per_month = [0u64; 14];
        for s in g.iter() {
            if s.is_fresh(start) {
                if let Some(i) = s.first_submission.month().collection_index() {
                    per_month[i] += 1;
                }
            }
        }
        // March 2022 (idx 10) carries the most weight in Table 2; May
        // 2021 (idx 0) the least.
        assert!(per_month[10] > per_month[0], "{per_month:?}");
        assert!(per_month.iter().all(|&c| c > 0));
    }
}
