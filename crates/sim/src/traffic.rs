//! Submission traffic: how many times and when each sample is scanned.
//!
//! Fig. 1's headline: 88.81% of samples have exactly one report, 99.10%
//! fewer than 6, 99.90% fewer than 20, and a heavy tail reaches 64,168
//! reports for one sample. The scan-count model below reproduces that
//! staircase, with class- and type-dependent adjustments (malicious
//! samples are re-submitted more; Win32 DLL / ZIP attract ~3–4 reports
//! per sample in Table 3 while TXT sits at ~1.3).
//!
//! Inter-scan gaps are lognormal with class-dependent medians: malware
//! gets re-scanned while hot (days), benign files trickle back over
//! weeks — this is what gives stable benign samples the longest stable
//! time spans (Fig. 4). Heavily re-scanned samples (monitoring rigs)
//! compress their gaps so the whole trajectory fits the window.

use crate::config::SimConfig;
use crate::distr;
use crate::population::type_population;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vt_model::hash::mix64;
use vt_model::time::{Duration, Timestamp, MINUTES_PER_DAY};
use vt_model::SampleMeta;

/// Scan-count and scan-time model.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    config: SimConfig,
}

impl TrafficModel {
    /// Builds the model for a config.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    fn rng_for(&self, sample: &SampleMeta) -> SmallRng {
        SmallRng::seed_from_u64(mix64(&[self.config.seed, 0x7af1c, sample.hash.seed64()]))
    }

    /// Probability that this sample is scanned more than once.
    fn multi_scan_prob(&self, sample: &SampleMeta) -> f64 {
        let base = if sample.truth.is_malicious() {
            0.125
        } else {
            0.062
        };
        (base * type_population(sample.file_type).resubmit_factor).min(0.9)
    }

    /// Draws the total number of scan reports for a sample.
    pub fn report_count(&self, sample: &SampleMeta) -> u32 {
        let mut rng = self.rng_for(sample);
        if rng.gen::<f64>() >= self.multi_scan_prob(sample) {
            return 1;
        }
        // Multi-scan staircase (fractions of multi-scan samples):
        //   2 → 66%, 3 → 15%, 4 → 8%, 5 → 3.5%,
        //   6..=20 → 6% (geometric), >20 → 1.5% (bounded Pareto).
        let u = rng.gen::<f64>();
        let n = if u < 0.66 {
            2
        } else if u < 0.81 {
            3
        } else if u < 0.89 {
            4
        } else if u < 0.925 {
            5
        } else if u < 0.985 {
            // Geometric-ish decay over 6..=20.
            let mut k = 6u32;
            while k < 20 && rng.gen::<f64>() < 0.78 {
                k += 1;
            }
            k
        } else {
            distr::bounded_pareto(&mut rng, 1.0, 21.0, 60_000.0) as u32
        };
        n.min(self.config.max_reports_per_sample)
    }

    /// Median inter-scan gap in days for a sample with `n` total scans.
    fn gap_median_days(&self, sample: &SampleMeta, n: u32) -> f64 {
        let base = if sample.truth.is_malicious() {
            2.5
        } else {
            14.0
        };
        // Heavily re-scanned samples are monitored: gaps compress so the
        // trajectory fits the window.
        base * (40.0 / n as f64).min(1.0)
    }

    /// Draws the scan schedule: `report_count` timestamps starting at the
    /// first submission, truncated at the window end. Always returns at
    /// least one timestamp (the first submission, clamped into the
    /// window for pre-existing samples).
    pub fn scan_times(&self, sample: &SampleMeta) -> Vec<Timestamp> {
        let n = self.report_count(sample);
        let mut rng = self.rng_for(sample);
        // Burn the draws used by report_count so schedules and counts
        // are independent streams.
        let mut rng2 = SmallRng::seed_from_u64(rng.gen::<u64>() ^ 0x9a95);

        let window_end = self.config.window_end();
        let window_start = self.config.window_start();
        // Pre-existing samples: their in-window activity starts at a
        // re-submission somewhere in the window, not at the original
        // first submission.
        let mut t = if sample.first_submission < window_start {
            let span = (window_end - window_start).as_minutes();
            window_start + Duration::minutes(rng2.gen_range(0..span))
        } else {
            sample.first_submission
        };
        let median = self.gap_median_days(sample, n);
        let sigma = if sample.truth.is_malicious() {
            1.3
        } else {
            0.95
        };
        // Malicious samples are mostly re-scanned while hot, but a
        // fraction of re-scans are archival (threat-intel sweeps months
        // later) — this is what populates the long-interval bins of
        // Fig. 7 with high-rank samples.
        let archival = sample.truth.is_malicious() && n <= 20;
        let mut times = Vec::with_capacity(n.min(64) as usize);
        times.push(t);
        for _ in 1..n {
            let gap_days = if archival && rng2.gen::<f64>() < 0.15 {
                distr::lognormal(&mut rng2, 60.0, 0.8)
            } else {
                distr::lognormal(&mut rng2, median, sigma)
            }
            .max(1.0 / 1440.0);
            t += Duration::minutes((gap_days * MINUTES_PER_DAY as f64).round().max(1.0) as i64);
            if t >= window_end {
                break;
            }
            times.push(t);
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationGen;

    fn setup(n: u64) -> (PopulationGen, TrafficModel) {
        let cfg = SimConfig::new(0xCAFE, n);
        (PopulationGen::new(cfg), TrafficModel::new(cfg))
    }

    #[test]
    fn report_counts_match_fig1_staircase() {
        let (pop, traffic) = setup(60_000);
        let mut singles = 0u64;
        let mut le5 = 0u64;
        let mut le20 = 0u64;
        let mut total = 0u64;
        let mut reports = 0u64;
        for s in pop.iter() {
            let n = traffic.report_count(&s) as u64;
            total += 1;
            reports += n;
            if n == 1 {
                singles += 1;
            }
            if n <= 5 {
                le5 += 1;
            }
            if n <= 20 {
                le20 += 1;
            }
        }
        let f = |x: u64| x as f64 / total as f64;
        // Paper: 88.81% singletons, 99.10% < 6 reports, 99.90% < 20.
        assert!((f(singles) - 0.888).abs() < 0.02, "singles {}", f(singles));
        assert!(f(le5) > 0.985, "≤5: {}", f(le5));
        assert!(f(le20) > 0.997, "≤20: {}", f(le20));
        // Mean reports/sample ≈ 1.48 in the paper (847 M / 571 M).
        let mean = reports as f64 / total as f64;
        assert!((mean - 1.48).abs() < 0.35, "mean reports/sample {mean}");
    }

    #[test]
    fn scan_times_are_ordered_and_in_window() {
        let (pop, traffic) = setup(3_000);
        let end = traffic.config.window_end();
        for s in pop.iter() {
            let times = traffic.scan_times(&s);
            assert!(!times.is_empty());
            for w in times.windows(2) {
                assert!(w[0] < w[1], "unsorted scan times");
            }
            for &t in &times {
                assert!(t < end);
            }
            // Fresh samples start exactly at first submission.
            if s.first_submission >= traffic.config.window_start() {
                assert_eq!(times[0], s.first_submission);
            }
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        let (pop, traffic) = setup(200);
        for s in pop.iter().take(50) {
            assert_eq!(traffic.scan_times(&s), traffic.scan_times(&s));
        }
    }

    #[test]
    fn dll_attracts_more_reports_than_txt() {
        let (pop, traffic) = setup(120_000);
        let mut dll = (0u64, 0u64);
        let mut txt = (0u64, 0u64);
        for s in pop.iter() {
            let n = traffic.report_count(&s) as u64;
            match s.file_type {
                vt_model::FileType::Win32Dll => {
                    dll.0 += 1;
                    dll.1 += n;
                }
                vt_model::FileType::Txt => {
                    txt.0 += 1;
                    txt.1 += n;
                }
                _ => {}
            }
        }
        let dll_mean = dll.1 as f64 / dll.0 as f64;
        let txt_mean = txt.1 as f64 / txt.0 as f64;
        assert!(
            dll_mean > txt_mean + 0.2,
            "dll {dll_mean} vs txt {txt_mean}"
        );
    }

    #[test]
    fn benign_gaps_longer_than_malicious() {
        let (pop, traffic) = setup(60_000);
        let mut benign_span = 0.0f64;
        let mut benign_n = 0u64;
        let mut mal_span = 0.0f64;
        let mut mal_n = 0u64;
        for s in pop.iter() {
            let times = traffic.scan_times(&s);
            if times.len() < 2 {
                continue;
            }
            let span = (*times.last().unwrap() - times[0]).as_days_f64();
            if s.truth.is_malicious() {
                mal_span += span;
                mal_n += 1;
            } else {
                benign_span += span;
                benign_n += 1;
            }
        }
        assert!(benign_n > 100 && mal_n > 100);
        assert!(
            benign_span / benign_n as f64 > mal_span / mal_n as f64,
            "benign spans should exceed malicious"
        );
    }
}
