//! Simulation configuration.

use vt_engines::FleetConfig;
use vt_model::time::{Month, Timestamp};

/// Full configuration of one simulated dataset.
///
/// The defaults reproduce the paper's collection window (May 2021 –
/// June 2022) at a laptop-friendly scale (100k samples ≈ 150k reports;
/// the paper's feed is 571 M samples / 847 M reports — all reported
/// statistics are ratios and distribution shapes, which are
/// scale-invariant once the per-sample report-count and file-type
/// distributions match).
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of samples to generate.
    pub samples: u64,
    /// Fraction of samples first submitted inside the window (§4.1:
    /// 91.76%).
    pub fresh_fraction: f64,
    /// Engine fleet configuration (fault injection etc.).
    pub fleet: FleetConfig,
    /// Fraction of a sample's follow-up scans issued through the upload
    /// API (re-submissions) rather than the rescan API.
    pub resubmit_fraction: f64,
    /// Hard cap on reports per sample (keeps memory bounded; the paper's
    /// max is 64,168).
    pub max_reports_per_sample: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x7e57_5eed,
            samples: 100_000,
            fresh_fraction: 0.9176,
            fleet: FleetConfig::default(),
            resubmit_fraction: 0.55,
            max_reports_per_sample: 4_000,
        }
    }
}

impl SimConfig {
    /// A config with the given seed and sample count, defaults elsewhere.
    pub fn new(seed: u64, samples: u64) -> Self {
        let fleet = FleetConfig {
            seed: seed ^ 0xF1EE_7000,
            ..FleetConfig::default()
        };
        Self {
            seed,
            samples,
            fleet,
            ..Self::default()
        }
    }

    /// First minute of the collection window.
    pub fn window_start(&self) -> Timestamp {
        Month::COLLECTION_START.start()
    }

    /// First minute *after* the collection window.
    pub fn window_end(&self) -> Timestamp {
        Month::COLLECTION_START.plus(Month::COLLECTION_LEN).start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::Date;

    #[test]
    fn window_matches_paper() {
        let c = SimConfig::new(1, 10);
        assert_eq!(c.window_start().date(), Date::new(2021, 5, 1));
        assert_eq!(c.window_end().date(), Date::new(2022, 7, 1));
    }

    #[test]
    fn new_derives_fleet_seed() {
        let a = SimConfig::new(1, 10);
        let b = SimConfig::new(2, 10);
        assert_ne!(a.fleet.seed, b.fleet.seed);
        assert_eq!(a.samples, 10);
    }
}
