//! Simulation configuration.

use vt_engines::{FleetConfig, FleetConfigError};
use vt_model::time::{Month, Timestamp};

/// Full configuration of one simulated dataset.
///
/// The defaults reproduce the paper's collection window (May 2021 –
/// June 2022) at a laptop-friendly scale (100k samples ≈ 150k reports;
/// the paper's feed is 571 M samples / 847 M reports — all reported
/// statistics are ratios and distribution shapes, which are
/// scale-invariant once the per-sample report-count and file-type
/// distributions match).
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of samples to generate.
    pub samples: u64,
    /// Fraction of samples first submitted inside the window (§4.1:
    /// 91.76%).
    pub fresh_fraction: f64,
    /// Engine fleet configuration (fault injection etc.).
    pub fleet: FleetConfig,
    /// Fraction of a sample's follow-up scans issued through the upload
    /// API (re-submissions) rather than the rescan API.
    pub resubmit_fraction: f64,
    /// Hard cap on reports per sample (keeps memory bounded; the paper's
    /// max is 64,168).
    pub max_reports_per_sample: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x7e57_5eed,
            samples: 100_000,
            fresh_fraction: 0.9176,
            fleet: FleetConfig::default(),
            resubmit_fraction: 0.55,
            max_reports_per_sample: 4_000,
        }
    }
}

impl SimConfig {
    /// A config with the given seed and sample count, defaults elsewhere.
    pub fn new(seed: u64, samples: u64) -> Self {
        let fleet = FleetConfig {
            seed: seed ^ 0xF1EE_7000,
            ..FleetConfig::default()
        };
        Self {
            seed,
            samples,
            fleet,
            ..Self::default()
        }
    }

    /// First minute of the collection window.
    pub fn window_start(&self) -> Timestamp {
        Month::COLLECTION_START.start()
    }

    /// First minute *after* the collection window.
    pub fn window_end(&self) -> Timestamp {
        Month::COLLECTION_START.plus(Month::COLLECTION_LEN).start()
    }

    /// A validating builder seeded with the defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: Self::default(),
            fleet_set: false,
        }
    }
}

/// A validation failure from [`SimConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimConfigError {
    /// `samples` must be at least 1 — an empty study has no statistics.
    ZeroSamples,
    /// A fraction field was outside `[0, 1]` (or not finite).
    FractionOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `max_reports_per_sample` must be at least 1.
    ZeroMaxReports,
    /// The nested fleet configuration failed its own validation.
    Fleet(FleetConfigError),
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::ZeroSamples => write!(f, "samples must be at least 1"),
            SimConfigError::FractionOutOfRange { field, value } => {
                write!(f, "{field} must be a fraction in [0, 1], got {value}")
            }
            SimConfigError::ZeroMaxReports => {
                write!(f, "max_reports_per_sample must be at least 1")
            }
            SimConfigError::Fleet(e) => write!(f, "fleet config: {e}"),
        }
    }
}

impl std::error::Error for SimConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimConfigError::Fleet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FleetConfigError> for SimConfigError {
    fn from(e: FleetConfigError) -> Self {
        SimConfigError::Fleet(e)
    }
}

/// Validating builder for [`SimConfig`] — the construction path the CLI
/// parses through, so malformed flag values surface as typed errors
/// instead of simulator panics or nonsense studies.
///
/// Unless a fleet is set explicitly, [`build`](Self::build) derives the
/// fleet seed from the master seed exactly like [`SimConfig::new`], so
/// `SimConfig::builder().seed(s).samples(n).build()` ≡
/// `SimConfig::new(s, n)`.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
    fleet_set: bool,
}

impl SimConfigBuilder {
    /// Sets the master seed (also re-derives the fleet seed unless a
    /// fleet was set explicitly).
    pub fn seed(mut self, v: u64) -> Self {
        self.config.seed = v;
        self
    }

    /// Sets the sample count.
    pub fn samples(mut self, v: u64) -> Self {
        self.config.samples = v;
        self
    }

    /// Sets the fraction of samples first submitted inside the window.
    pub fn fresh_fraction(mut self, v: f64) -> Self {
        self.config.fresh_fraction = v;
        self
    }

    /// Sets the re-submission (vs rescan) fraction.
    pub fn resubmit_fraction(mut self, v: f64) -> Self {
        self.config.resubmit_fraction = v;
        self
    }

    /// Sets the per-sample report cap.
    pub fn max_reports_per_sample(mut self, v: u32) -> Self {
        self.config.max_reports_per_sample = v;
        self
    }

    /// Sets an explicit (already validated) fleet configuration,
    /// suppressing the default fleet-seed derivation.
    pub fn fleet(mut self, fleet: FleetConfig) -> Self {
        self.config.fleet = fleet;
        self.fleet_set = true;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<SimConfig, SimConfigError> {
        let mut c = self.config;
        if c.samples == 0 {
            return Err(SimConfigError::ZeroSamples);
        }
        if c.max_reports_per_sample == 0 {
            return Err(SimConfigError::ZeroMaxReports);
        }
        for (field, value) in [
            ("fresh_fraction", c.fresh_fraction),
            ("resubmit_fraction", c.resubmit_fraction),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(SimConfigError::FractionOutOfRange { field, value });
            }
        }
        if !self.fleet_set {
            c.fleet = FleetConfig {
                seed: c.seed ^ 0xF1EE_7000,
                ..c.fleet
            };
        }
        // Re-validate the fleet through its own builder so a fleet set
        // via struct literal cannot smuggle bad values past this path.
        c.fleet = FleetConfig::builder()
            .seed(c.fleet.seed)
            .timeout_mult(c.fleet.timeout_mult)
            .outage_mult(c.fleet.outage_mult)
            .glitch_rate(c.fleet.glitch_rate)
            .slowness_sigma(c.fleet.slowness_sigma)
            .load_sigma(c.fleet.load_sigma)
            .epoch_sigma(c.fleet.epoch_sigma)
            .epoch_slow_sigma(c.fleet.epoch_slow_sigma)
            .trend_sigma(c.fleet.trend_sigma)
            .build()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::Date;

    #[test]
    fn window_matches_paper() {
        let c = SimConfig::new(1, 10);
        assert_eq!(c.window_start().date(), Date::new(2021, 5, 1));
        assert_eq!(c.window_end().date(), Date::new(2022, 7, 1));
    }

    #[test]
    fn new_derives_fleet_seed() {
        let a = SimConfig::new(1, 10);
        let b = SimConfig::new(2, 10);
        assert_ne!(a.fleet.seed, b.fleet.seed);
        assert_eq!(a.samples, 10);
    }

    #[test]
    fn builder_matches_new() {
        let built = SimConfig::builder().seed(42).samples(500).build().unwrap();
        let direct = SimConfig::new(42, 500);
        assert_eq!(built.seed, direct.seed);
        assert_eq!(built.samples, direct.samples);
        assert_eq!(built.fleet.seed, direct.fleet.seed);
        assert_eq!(built.fresh_fraction, direct.fresh_fraction);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert_eq!(
            SimConfig::builder().samples(0).build().unwrap_err(),
            SimConfigError::ZeroSamples
        );
        assert_eq!(
            SimConfig::builder()
                .max_reports_per_sample(0)
                .build()
                .unwrap_err(),
            SimConfigError::ZeroMaxReports
        );
        assert!(matches!(
            SimConfig::builder()
                .fresh_fraction(1.5)
                .build()
                .unwrap_err(),
            SimConfigError::FractionOutOfRange {
                field: "fresh_fraction",
                ..
            }
        ));
        let bad_fleet = FleetConfig {
            glitch_rate: 2.0,
            ..FleetConfig::default()
        };
        assert!(matches!(
            SimConfig::builder().fleet(bad_fleet).build().unwrap_err(),
            SimConfigError::Fleet(FleetConfigError::GlitchRateOutOfRange { .. })
        ));
        assert!(matches!(
            SimConfig::builder()
                .fleet(FleetConfig {
                    timeout_mult: f64::NAN,
                    ..FleetConfig::default()
                })
                .build()
                .unwrap_err(),
            SimConfigError::Fleet(FleetConfigError::NotFiniteNonNegative {
                field: "timeout_mult",
                ..
            })
        ));
    }

    #[test]
    fn explicit_fleet_survives_build() {
        let fleet = FleetConfig::builder()
            .seed(7)
            .outage_mult(2.0)
            .build()
            .unwrap();
        let c = SimConfig::builder().seed(1).fleet(fleet).build().unwrap();
        assert_eq!(c.fleet.seed, 7);
        assert_eq!(c.fleet.outage_mult, 2.0);
    }
}
