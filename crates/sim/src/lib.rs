//! Discrete-event VirusTotal platform simulator.
//!
//! The paper's driving dataset — every scan report VirusTotal produced
//! over 14 months — is proprietary. This crate generates a synthetic
//! stand-in with the same *generating mechanisms* and the same *marginal
//! shapes*:
//!
//! * [`population`] — samples: file types drawn from Table 3's
//!   distribution (plus a Zipf tail reaching 351 types), per-type malice
//!   prevalence and detectability, in-the-wild ages, freshness (91.76%
//!   of samples first appear inside the window).
//! * [`traffic`] — when samples are submitted and how often: monthly
//!   volume weights from Table 2, the reports-per-sample tail of Fig. 1
//!   (88.81% of samples are scanned exactly once), and class-dependent
//!   inter-scan gaps.
//! * [`api`] — the three VT APIs the paper reverse-engineers in §3:
//!   upload / rescan / report with the Table 1 field-update semantics.
//! * [`scanner`] — executes a scan against the `vt-engines` fleet.
//! * [`platform`] — ties it together: a seeded, streaming generator of
//!   `(SampleMeta, Vec<ScanReport>)` over the collection window.
//! * [`feed`] — the paper's minute-polled collection view: every report
//!   of the platform in global analysis-time order (k-way merge).
//! * [`fault`] — seeded chaos injection over the feed: minute outages,
//!   duplicate delivery, bounded-lateness reordering, and detectable
//!   payload corruption, for exercising the collector's fault paths.
//! * [`distr`] / [`alias`] — sampling utilities (lognormal, gamma, beta,
//!   Zipf, and O(1) weighted choice via the alias method).
//!
//! Everything is seeded: the same [`config::SimConfig`] produces the
//! same dataset, bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod api;
pub mod config;
pub mod distr;
pub mod fault;
pub mod feed;
pub mod platform;
pub mod population;
pub mod scanner;
pub mod traffic;

pub use alias::AliasTable;
pub use api::SampleSession;
pub use config::{SimConfig, SimConfigBuilder, SimConfigError};
pub use fault::{FaultPlan, FaultyFeed, FeedEntry, FeedOutage};
pub use feed::TimeOrderedFeed;
pub use platform::VirusTotalSim;
pub use population::PopulationGen;
pub use traffic::TrafficModel;
