//! The global, time-ordered report feed.
//!
//! The paper's collection interface (§4.1) is a premium endpoint polled
//! every minute that returns *all scan reports generated in that
//! minute*, platform-wide. [`TimeOrderedFeed`] reproduces that view: a
//! k-way merge over every sample's trajectory, yielding reports in
//! global `analysis_date` order — the ingestion order a collector like
//! the paper's MongoDB pipeline actually observes.
//!
//! Memory: one pending report per sample (O(samples) heap), not the
//! whole dataset.

use crate::platform::VirusTotalSim;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vt_model::{ScanReport, Timestamp};

/// One sample's cursor in the merge.
struct Cursor {
    next: ScanReport,
    rest: std::vec::IntoIter<ScanReport>,
    /// Tie-break so heap order (and thus the feed) is deterministic.
    ordinal: u64,
}

impl PartialEq for Cursor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl Eq for Cursor {}
impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cursor {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

impl Cursor {
    fn cmp_key(&self) -> (Timestamp, u64) {
        (self.next.analysis_date, self.ordinal)
    }
}

/// An iterator over every report of the simulation in global
/// analysis-time order.
pub struct TimeOrderedFeed {
    heap: BinaryHeap<Cursor>,
}

impl TimeOrderedFeed {
    /// Builds the feed for a subrange of sample ordinals (use
    /// `0..config.samples` for the whole platform).
    pub fn new(sim: &VirusTotalSim, range: std::ops::Range<u64>) -> Self {
        let mut heap = BinaryHeap::with_capacity((range.end - range.start) as usize);
        for ordinal in range {
            let (_, reports) = sim.sample_trajectory(ordinal);
            let mut iter = reports.into_iter();
            if let Some(first) = iter.next() {
                heap.push(Cursor {
                    next: first,
                    rest: iter,
                    ordinal,
                });
            }
        }
        Self { heap }
    }
}

impl Iterator for TimeOrderedFeed {
    type Item = ScanReport;

    fn next(&mut self) -> Option<ScanReport> {
        let mut cursor = self.heap.pop()?;
        let report = cursor.next;
        if let Some(next) = cursor.rest.next() {
            cursor.next = next;
            self.heap.push(cursor);
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn feed_is_globally_time_ordered_and_complete() {
        let sim = VirusTotalSim::new(SimConfig::new(0xFEED, 2_000));
        let feed: Vec<ScanReport> = TimeOrderedFeed::new(&sim, 0..2_000).collect();
        let total: usize = sim.trajectories().map(|(_, r)| r.len()).sum();
        assert_eq!(feed.len(), total);
        for w in feed.windows(2) {
            assert!(
                w[0].analysis_date <= w[1].analysis_date,
                "feed out of order"
            );
        }
    }

    #[test]
    fn feed_matches_per_sample_trajectories() {
        let sim = VirusTotalSim::new(SimConfig::new(0xFEED, 500));
        let mut by_sample: std::collections::HashMap<_, Vec<ScanReport>> =
            std::collections::HashMap::new();
        for r in TimeOrderedFeed::new(&sim, 0..500) {
            by_sample.entry(r.sample).or_default().push(r);
        }
        for (meta, reports) in sim.trajectories() {
            assert_eq!(by_sample.get(&meta.hash), Some(&reports));
        }
    }

    #[test]
    fn feed_is_deterministic() {
        let sim = VirusTotalSim::new(SimConfig::new(7, 300));
        let a: Vec<ScanReport> = TimeOrderedFeed::new(&sim, 0..300).collect();
        let b: Vec<ScanReport> = TimeOrderedFeed::new(&sim, 0..300).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let sim = VirusTotalSim::new(SimConfig::new(7, 10));
        assert_eq!(TimeOrderedFeed::new(&sim, 3..3).count(), 0);
    }
}
