//! Distribution samplers built on `rand`'s uniform source.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so
//! the handful of distributions the population model needs are
//! implemented here: lognormal (via probit), gamma (Marsaglia–Tsang),
//! beta (gamma ratio), and a bounded Pareto for the heavy scan-count
//! tail.

use rand::Rng;
use vt_stats::special::probit;

/// Standard normal draw via inverse-CDF of a uniform (one uniform per
/// draw; deterministic given the RNG stream).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
    probit(u)
}

/// Lognormal draw with the given median and σ (of the underlying
/// normal): `median · exp(σ·Z)`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0);
    median * (sigma * normal(rng)).exp()
}

/// Gamma(α, 1) draw via Marsaglia–Tsang (with the α < 1 boost).
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0, "gamma requires alpha > 0");
    if alpha < 1.0 {
        // Boost: X ~ Gamma(α+1) · U^(1/α).
        let x = gamma(rng, alpha + 1.0);
        let u: f64 = rng.gen_range(1e-300..1.0);
        return x * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let z = normal(rng);
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(1e-300..1.0);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(a, b) draw via the gamma ratio.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a);
    let y = gamma(rng, b);
    (x / (x + y)).clamp(0.0, 1.0)
}

/// Bounded Pareto draw on `[lo, hi]` with shape α (heavy right tail).
/// Used for the extreme reports-per-sample tail (the paper's most
/// rescanned sample has 64,168 reports).
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the truncated Pareto.
    let x = (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD157)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = normal(&mut r);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let mut v: Vec<f64> = (0..100_001).map(|_| lognormal(&mut r, 5.0, 1.0)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 5.0).abs() < 0.15, "median = {median}");
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_mean_and_variance() {
        // Gamma(α,1): mean = α, var = α.
        for &alpha in &[0.5, 1.0, 2.5, 9.0] {
            let mut r = rng();
            let n = 100_000;
            let mut sum = 0.0;
            let mut sum2 = 0.0;
            for _ in 0..n {
                let x = gamma(&mut r, alpha);
                assert!(x >= 0.0);
                sum += x;
                sum2 += x * x;
            }
            let mean = sum / n as f64;
            let var = sum2 / n as f64 - mean * mean;
            assert!(
                (mean - alpha).abs() < 0.05 * alpha.max(1.0),
                "α={alpha} mean={mean}"
            );
            assert!(
                (var - alpha).abs() < 0.12 * alpha.max(1.0),
                "α={alpha} var={var}"
            );
        }
    }

    #[test]
    fn beta_mean() {
        // Beta(a,b): mean = a/(a+b).
        for &(a, b) in &[(2.0, 3.0), (0.8, 4.0), (5.0, 1.5)] {
            let mut r = rng();
            let n = 80_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = beta(&mut r, a, b);
                assert!((0.0..=1.0).contains(&x));
                sum += x;
            }
            let mean = sum / n as f64;
            let expect = a / (a + b);
            assert!((mean - expect).abs() < 0.01, "Beta({a},{b}) mean={mean}");
        }
    }

    #[test]
    fn bounded_pareto_in_bounds_and_heavy() {
        let mut r = rng();
        let mut max_seen: f64 = 0.0;
        let mut in_low_decade = 0;
        let n = 50_000;
        for _ in 0..n {
            let x = bounded_pareto(&mut r, 1.0, 21.0, 50_000.0);
            assert!((21.0..=50_000.0).contains(&x));
            max_seen = max_seen.max(x);
            if x < 210.0 {
                in_low_decade += 1;
            }
        }
        // Heavy tail reaches far beyond the low decade…
        assert!(max_seen > 5_000.0, "max = {max_seen}");
        // …but most mass stays low.
        assert!(in_low_decade as f64 > 0.8 * n as f64);
    }
}
