//! Chaos injection over the minute-polled collection feed.
//!
//! The paper's collector (§4.1) polls a premium endpoint once a minute
//! and ingests every report generated platform-wide in that minute. A
//! real 14-month collection campaign does not see a clean stream: the
//! endpoint has outages, retries deliver the same report twice, batches
//! arrive late and out of order, and payloads arrive damaged.
//! [`FaultyFeed`] reproduces that collection reality over the pristine
//! [`TimeOrderedFeed`](crate::feed::TimeOrderedFeed) stream so the
//! ingestion pipeline's fault handling can be tested end to end.
//!
//! Every fault is *seeded and deterministic*: each decision (is this
//! minute down, is this entry duplicated / delayed / corrupted) derives
//! from a hash of the [`FaultPlan`] seed and the decision's identity —
//! never from iteration order or wall-clock time. The same plan over
//! the same report stream produces the same faults, bit for bit,
//! regardless of how the consumer paces or retries its polls.
//!
//! Wire shape: entries carry the report as *encoded bytes* plus a
//! sender-side CRC-32 of those bytes, like a framed network payload.
//! Corruption flips bits in the payload *after* the checksum is
//! computed, so a receiver can always detect damage — exactly the
//! property the collector's quarantine path relies on.

use std::collections::BTreeMap;

use bytes::BytesMut;
use vt_model::hash::{mix64, unit_f64};
use vt_model::ScanReport;
use vt_store::codec::encode_report;
use vt_store::crc32::crc32;

use crate::platform::VirusTotalSim;

/// Decision-domain tags, so the per-minute and per-entry hash streams
/// never collide with each other.
const TAG_OUTAGE: u64 = 0xFA01;
const TAG_OUTAGE_HEAL: u64 = 0xFA02;
const TAG_DUP: u64 = 0xFA03;
const TAG_DELAY: u64 = 0xFA04;
const TAG_DELAY_SPAN: u64 = 0xFA05;
const TAG_CORRUPT: u64 = 0xFA06;
const TAG_CORRUPT_BIT: u64 = 0xFA07;

/// A seeded description of how the feed misbehaves.
///
/// Rates are probabilities in `[0, 1]`. [`FaultPlan::clean`] disables
/// everything; builder-style setters enable individual fault classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability that a polled minute is in outage.
    pub outage_rate: f64,
    /// Among outages, probability the minute never heals no matter how
    /// often it is retried (the collector must abandon it).
    pub hard_outage_rate: f64,
    /// Upper bound on the attempt index at which a transient outage
    /// heals: attempt `1 + hash % outage_heal_attempts` succeeds.
    pub outage_heal_attempts: u32,
    /// Probability an entry is delivered twice.
    pub duplicate_rate: f64,
    /// Probability an entry is delivered late (out of order).
    pub reorder_rate: f64,
    /// Maximum lateness, in minutes, of a reordered entry (the bound a
    /// receiver's reorder buffer must cover).
    pub max_lateness: u32,
    /// Probability an entry's payload is corrupted in flight.
    pub corruption_rate: f64,
}

impl FaultPlan {
    /// A plan injecting no faults at all.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            outage_rate: 0.0,
            hard_outage_rate: 0.0,
            outage_heal_attempts: 3,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            max_lateness: 30,
            corruption_rate: 0.0,
        }
    }

    /// Enables minute outages: `rate` of minutes are down; `hard` of
    /// those never heal.
    pub fn with_outages(mut self, rate: f64, hard: f64) -> Self {
        self.outage_rate = rate;
        self.hard_outage_rate = hard;
        self
    }

    /// Enables duplicate delivery at `rate`.
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Enables bounded-lateness reordering: `rate` of entries arrive up
    /// to `max_lateness` minutes late.
    pub fn with_reordering(mut self, rate: f64, max_lateness: u32) -> Self {
        self.reorder_rate = rate;
        self.max_lateness = max_lateness.max(1);
        self
    }

    /// Enables payload corruption at `rate`.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corruption_rate = rate;
        self
    }

    fn chance(&self, tag: u64, identity: &[u64], rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut words = Vec::with_capacity(identity.len() + 2);
        words.push(self.seed);
        words.push(tag);
        words.extend_from_slice(identity);
        unit_f64(mix64(&words)) < rate
    }

    fn draw(&self, tag: u64, identity: &[u64]) -> u64 {
        let mut words = Vec::with_capacity(identity.len() + 2);
        words.push(self.seed);
        words.push(tag);
        words.extend_from_slice(identity);
        mix64(&words)
    }
}

/// One framed payload delivered by a poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedEntry {
    /// Minute the platform generated the report (delivery may be
    /// later, never earlier).
    pub generated_minute: i64,
    /// Sender-side CRC-32 of the *clean* encoded report, computed
    /// before any in-flight corruption.
    pub checksum: u32,
    /// The encoded report ([`vt_store::codec`] wire form, delta base
    /// 0), possibly damaged in flight.
    pub payload: Vec<u8>,
}

impl FeedEntry {
    /// True if the payload still matches its checksum.
    pub fn checksum_ok(&self) -> bool {
        crc32(&self.payload) == self.checksum
    }
}

/// A poll hit a feed outage; retry the same minute with a higher
/// attempt index (after backoff), or abandon it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedOutage {
    /// The minute whose poll failed.
    pub minute: i64,
    /// The attempt index that failed (0-based).
    pub attempt: u32,
}

impl std::fmt::Display for FeedOutage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "feed outage at minute {} (attempt {})",
            self.minute, self.attempt
        )
    }
}

impl std::error::Error for FeedOutage {}

/// The chaos-injected, minute-polled collection feed.
///
/// Consumers poll minute by minute ([`FaultyFeed::poll`]); a poll
/// either fails with [`FeedOutage`] or delivers every [`FeedEntry`]
/// scheduled for that minute and marks the minute consumed. The
/// schedule — which entries land in which minute, duplicated, delayed,
/// or damaged — is fixed at construction from the [`FaultPlan`] alone.
#[derive(Debug)]
pub struct FaultyFeed {
    plan: FaultPlan,
    /// Delivery minute → entries, in deterministic construction order.
    schedule: BTreeMap<i64, Vec<FeedEntry>>,
    scheduled_entries: u64,
    duplicated_entries: u64,
    delayed_entries: u64,
    corrupted_entries: u64,
}

impl FaultyFeed {
    /// Builds the feed over `reports` (any deterministic order; the
    /// schedule is keyed on report identity, not arrival order).
    pub fn new(reports: impl IntoIterator<Item = ScanReport>, plan: FaultPlan) -> Self {
        let mut feed = Self {
            plan,
            schedule: BTreeMap::new(),
            scheduled_entries: 0,
            duplicated_entries: 0,
            delayed_entries: 0,
            corrupted_entries: 0,
        };
        for report in reports {
            feed.schedule_report(&report);
        }
        feed
    }

    /// Builds the feed for a sample-ordinal range of the simulated
    /// platform (use `0..config.samples` for the whole platform).
    pub fn from_sim(sim: &VirusTotalSim, range: std::ops::Range<u64>, plan: FaultPlan) -> Self {
        Self::new(crate::feed::TimeOrderedFeed::new(sim, range), plan)
    }

    /// The identity words of one delivery of `report` (`copy` is 0 for
    /// the original, 1 for a duplicate).
    fn entry_identity(report: &ScanReport, copy: u64) -> [u64; 4] {
        [
            report.sample.0 as u64,
            report.analysis_date.0 as u64,
            report.kind as u64,
            copy,
        ]
    }

    fn schedule_report(&mut self, report: &ScanReport) {
        let mut buf = BytesMut::new();
        encode_report(&mut buf, report, 0);
        let clean: Vec<u8> = buf.freeze().to_vec();
        let checksum = crc32(&clean);
        let generated_minute = report.analysis_date.0;

        let copies = if self.plan.chance(
            TAG_DUP,
            &Self::entry_identity(report, 0),
            self.plan.duplicate_rate,
        ) {
            self.duplicated_entries += 1;
            2
        } else {
            1
        };

        for copy in 0..copies {
            let identity = Self::entry_identity(report, copy);
            let delay = if self
                .plan
                .chance(TAG_DELAY, &identity, self.plan.reorder_rate)
            {
                self.delayed_entries += 1;
                1 + self.plan.draw(TAG_DELAY_SPAN, &identity) % self.plan.max_lateness as u64
            } else {
                0
            };
            let mut payload = clean.clone();
            if self
                .plan
                .chance(TAG_CORRUPT, &identity, self.plan.corruption_rate)
            {
                let bit = self.plan.draw(TAG_CORRUPT_BIT, &identity) % (payload.len() as u64 * 8);
                payload[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.corrupted_entries += 1;
            }
            self.schedule
                .entry(generated_minute + delay as i64)
                .or_default()
                .push(FeedEntry {
                    generated_minute,
                    checksum,
                    payload,
                });
            self.scheduled_entries += 1;
        }
    }

    /// Earliest minute with undelivered entries.
    pub fn first_minute(&self) -> Option<i64> {
        self.schedule.keys().next().copied()
    }

    /// Latest minute with undelivered entries.
    pub fn last_minute(&self) -> Option<i64> {
        self.schedule.keys().next_back().copied()
    }

    /// True once every scheduled entry has been delivered or abandoned.
    pub fn is_drained(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Total entries scheduled at construction (originals + duplicates).
    pub fn scheduled_entries(&self) -> u64 {
        self.scheduled_entries
    }

    /// Entries that were scheduled twice.
    pub fn duplicated_entries(&self) -> u64 {
        self.duplicated_entries
    }

    /// Entries scheduled later than their generation minute.
    pub fn delayed_entries(&self) -> u64 {
        self.delayed_entries
    }

    /// Entries whose payload was damaged in flight.
    pub fn corrupted_entries(&self) -> u64 {
        self.corrupted_entries
    }

    /// True if `minute` is scheduled to be in outage for `attempt`.
    ///
    /// Outage status is a pure function of the plan, so the feed can be
    /// probed without consuming anything.
    pub fn outage_at(&self, minute: i64, attempt: u32) -> bool {
        if !self
            .plan
            .chance(TAG_OUTAGE, &[minute as u64], self.plan.outage_rate)
        {
            return false;
        }
        if self.plan.chance(
            TAG_OUTAGE_HEAL,
            &[minute as u64],
            self.plan.hard_outage_rate,
        ) {
            return true; // Hard outage: never heals.
        }
        let heals_at = 1 + self.plan.draw(TAG_OUTAGE_HEAL, &[minute as u64, 1])
            % self.plan.outage_heal_attempts as u64;
        (attempt as u64) < heals_at
    }

    /// Polls one minute. On success, returns every entry scheduled for
    /// that minute (possibly none) and marks the minute delivered;
    /// failing polls consume nothing and can be retried with a higher
    /// `attempt`.
    pub fn poll(&mut self, minute: i64, attempt: u32) -> Result<Vec<FeedEntry>, FeedOutage> {
        if self.outage_at(minute, attempt) {
            return Err(FeedOutage { minute, attempt });
        }
        Ok(self.schedule.remove(&minute).unwrap_or_default())
    }

    /// Gives up on a minute (e.g. a hard outage after retries are
    /// exhausted), dropping whatever was scheduled there. Returns the
    /// number of entries lost.
    pub fn abandon(&mut self, minute: i64) -> usize {
        self.schedule.remove(&minute).map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use vt_store::codec::decode_report;

    fn sim() -> VirusTotalSim {
        VirusTotalSim::new(SimConfig::new(0xC0FFEE, 400))
    }

    fn drain(feed: &mut FaultyFeed) -> Vec<FeedEntry> {
        let mut out = Vec::new();
        while let Some(minute) = feed.first_minute() {
            let mut attempt = 0;
            loop {
                match feed.poll(minute, attempt) {
                    Ok(entries) => {
                        out.extend(entries);
                        break;
                    }
                    Err(_) if attempt < 16 => attempt += 1,
                    Err(_) => {
                        feed.abandon(minute);
                        break;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let sim = sim();
        let direct: Vec<ScanReport> = crate::feed::TimeOrderedFeed::new(&sim, 0..400).collect();
        let mut feed = FaultyFeed::from_sim(&sim, 0..400, FaultPlan::clean(1));
        assert_eq!(feed.scheduled_entries(), direct.len() as u64);
        assert_eq!(feed.duplicated_entries(), 0);
        assert_eq!(feed.corrupted_entries(), 0);
        let entries = drain(&mut feed);
        assert!(feed.is_drained());
        let decoded: Vec<ScanReport> = entries
            .iter()
            .map(|e| {
                assert!(e.checksum_ok());
                decode_report(&mut &e.payload[..], 0)
                    .expect("clean payload decodes")
                    .0
            })
            .collect();
        assert_eq!(decoded, direct);
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let sim = sim();
        let plan = FaultPlan::clean(42)
            .with_duplicates(0.1)
            .with_reordering(0.2, 15)
            .with_corruption(0.05)
            .with_outages(0.02, 0.2);
        let a = drain(&mut FaultyFeed::from_sim(&sim, 0..400, plan));
        let b = drain(&mut FaultyFeed::from_sim(&sim, 0..400, plan));
        assert_eq!(a, b, "same plan, same chaos");
        let mut other = plan;
        other.seed = 43;
        let c = drain(&mut FaultyFeed::from_sim(&sim, 0..400, other));
        assert_ne!(a, c, "different seed, different chaos");
    }

    #[test]
    fn duplicates_add_exact_copies() {
        let sim = sim();
        let mut feed = FaultyFeed::from_sim(&sim, 0..400, FaultPlan::clean(7).with_duplicates(0.3));
        let dups = feed.duplicated_entries();
        assert!(
            dups > 0,
            "rate 0.3 over hundreds of reports should duplicate some"
        );
        assert_eq!(feed.scheduled_entries(), {
            let direct = crate::feed::TimeOrderedFeed::new(&sim, 0..400).count() as u64;
            direct + dups
        });
        let entries = drain(&mut feed);
        let mut by_key: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for e in &entries {
            *by_key.entry(e.checksum).or_default() += 1;
        }
        assert!(
            by_key.values().any(|&n| n >= 2),
            "some entry delivered twice"
        );
    }

    #[test]
    fn reordering_is_bounded_lateness() {
        let sim = sim();
        let mut feed =
            FaultyFeed::from_sim(&sim, 0..400, FaultPlan::clean(9).with_reordering(0.5, 20));
        assert!(feed.delayed_entries() > 0);
        let mut late_minutes = Vec::new();
        while let Some(minute) = feed.first_minute() {
            for e in feed.poll(minute, 0).expect("no outages planned") {
                assert!(minute >= e.generated_minute, "never early");
                assert!(
                    minute - e.generated_minute <= 20,
                    "lateness bounded by max_lateness"
                );
                if minute > e.generated_minute {
                    late_minutes.push(minute - e.generated_minute);
                }
            }
        }
        assert!(!late_minutes.is_empty());
    }

    #[test]
    fn corruption_is_always_detectable() {
        let sim = sim();
        let mut feed =
            FaultyFeed::from_sim(&sim, 0..400, FaultPlan::clean(11).with_corruption(0.2));
        let planned = feed.corrupted_entries();
        assert!(planned > 0);
        let entries = drain(&mut feed);
        let bad = entries.iter().filter(|e| !e.checksum_ok()).count() as u64;
        assert_eq!(bad, planned, "every corrupted payload fails its checksum");
    }

    #[test]
    fn outages_heal_or_stay_hard_deterministically() {
        let sim = sim();
        let plan = FaultPlan::clean(13).with_outages(0.3, 0.25);
        let feed = FaultyFeed::from_sim(&sim, 0..50, plan);
        let (mut transient, mut hard) = (0, 0);
        let first = feed.first_minute().unwrap();
        for minute in first..first + 2_000 {
            if !feed.outage_at(minute, 0) {
                continue;
            }
            // Status must be stable: probing twice gives the same answer.
            assert!(feed.outage_at(minute, 0));
            if (1..=plan.outage_heal_attempts).any(|a| !feed.outage_at(minute, a)) {
                transient += 1;
            } else {
                hard += 1;
            }
        }
        assert!(transient > 0, "some outages heal within the attempt bound");
        assert!(hard > 0, "some outages never heal");
    }

    #[test]
    fn abandon_drops_exactly_that_minute() {
        let sim = sim();
        let mut feed = FaultyFeed::from_sim(&sim, 0..400, FaultPlan::clean(17));
        let total = feed.scheduled_entries();
        let first = feed.first_minute().unwrap();
        let lost = feed.abandon(first) as u64;
        assert!(lost > 0);
        let rest = drain(&mut feed).len() as u64;
        assert_eq!(rest + lost, total);
        assert_eq!(feed.abandon(first), 0, "abandoning twice is a no-op");
    }
}
