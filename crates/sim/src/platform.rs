//! The assembled platform: population + traffic + APIs + fleet.
//!
//! [`VirusTotalSim`] streams the full simulated dataset: for each sample
//! it opens a [`crate::api::SampleSession`] (first upload), then drives
//! the remaining scheduled scans through a mix of upload
//! (re-submission) and rescan calls, yielding `(SampleMeta,
//! Vec<ScanReport>)` per sample. Reports within a sample are in
//! analysis-time order; samples stream in ordinal order (any subrange
//! can be generated independently, which is how the parallel analyses
//! partition work).

use crate::api::SampleSession;
use crate::config::SimConfig;
use crate::population::PopulationGen;
use crate::traffic::TrafficModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vt_engines::EngineFleet;
use vt_model::hash::mix64;
use vt_model::{SampleMeta, ScanReport};

/// The simulated VirusTotal platform.
#[derive(Debug)]
pub struct VirusTotalSim {
    config: SimConfig,
    population: PopulationGen,
    traffic: TrafficModel,
    fleet: EngineFleet,
}

impl VirusTotalSim {
    /// Builds the platform from a config.
    pub fn new(config: SimConfig) -> Self {
        Self {
            config,
            population: PopulationGen::new(config),
            traffic: TrafficModel::new(config),
            fleet: EngineFleet::new(config.fleet),
        }
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The engine fleet (analyses need it for update schedules and
    /// engine names).
    pub fn fleet(&self) -> &EngineFleet {
        &self.fleet
    }

    /// The population generator.
    pub fn population(&self) -> &PopulationGen {
        &self.population
    }

    /// Generates one sample's full trajectory: metadata plus all scan
    /// reports, in analysis-time order.
    pub fn sample_trajectory(&self, ordinal: u64) -> (SampleMeta, Vec<ScanReport>) {
        let meta = self.population.sample(ordinal);
        let times = self.traffic.scan_times(&meta);
        let mut rng = SmallRng::seed_from_u64(mix64(&[self.config.seed, 0xA91, ordinal]));
        let (mut session, first) = if meta.first_submission < self.config.window_start() {
            // Pre-existing sample: resume with its pre-window history.
            let prior = 1 + (rng.gen::<u64>() % 3) as u32;
            SampleSession::open_resumed(&self.fleet, meta, times[0], prior)
        } else {
            SampleSession::open(&self.fleet, meta, times[0])
        };
        let mut reports = Vec::with_capacity(times.len());
        reports.push(first);
        for &t in &times[1..] {
            let r = if rng.gen::<f64>() < self.config.resubmit_fraction {
                session.upload(t)
            } else {
                session.rescan(t)
            };
            reports.push(r);
        }
        (meta, reports)
    }

    /// Streams every sample's trajectory.
    pub fn trajectories(&self) -> impl Iterator<Item = (SampleMeta, Vec<ScanReport>)> + '_ {
        (0..self.config.samples).map(move |i| self.sample_trajectory(i))
    }

    /// Streams trajectories for an ordinal subrange (parallel
    /// partitioning hook).
    pub fn trajectories_in(
        &self,
        range: std::ops::Range<u64>,
    ) -> impl Iterator<Item = (SampleMeta, Vec<ScanReport>)> + '_ {
        range.map(move |i| self.sample_trajectory(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::ReportKind;

    #[test]
    fn trajectories_are_deterministic_and_ordered() {
        let sim = VirusTotalSim::new(SimConfig::new(7, 500));
        for i in [0u64, 13, 499] {
            let (m1, r1) = sim.sample_trajectory(i);
            let (m2, r2) = sim.sample_trajectory(i);
            assert_eq!(m1, m2);
            assert_eq!(r1, r2);
            for w in r1.windows(2) {
                assert!(w[0].analysis_date < w[1].analysis_date);
            }
            assert!(!r1.is_empty());
            if m1.first_submission >= sim.config().window_start() {
                assert_eq!(r1[0].kind, ReportKind::Upload);
            } else {
                assert_eq!(r1[0].kind, ReportKind::Rescan);
                assert_eq!(r1[0].last_submission_date, m1.first_submission);
                assert!(r1[0].times_submitted >= 1);
            }
            for r in &r1 {
                assert_eq!(r.sample, m1.hash);
            }
        }
    }

    #[test]
    fn times_submitted_is_monotone_nondecreasing() {
        let sim = VirusTotalSim::new(SimConfig::new(11, 2_000));
        for (_, reports) in sim.trajectories() {
            let mut last: Option<u32> = None;
            for r in &reports {
                assert!(r.times_submitted >= 1);
                if let Some(prev) = last {
                    assert!(r.times_submitted >= prev);
                    // Rescans never bump the counter past the upload count.
                    if r.kind == ReportKind::Rescan {
                        assert_eq!(r.times_submitted, prev);
                    }
                }
                last = Some(r.times_submitted);
            }
        }
    }

    #[test]
    fn subrange_matches_full_stream() {
        let sim = VirusTotalSim::new(SimConfig::new(3, 100));
        let full: Vec<_> = sim.trajectories().collect();
        let part: Vec<_> = sim.trajectories_in(40..60).collect();
        assert_eq!(&full[40..60], part.as_slice());
    }

    #[test]
    fn report_mix_contains_uploads_and_rescans() {
        let sim = VirusTotalSim::new(SimConfig::new(5, 5_000));
        let mut uploads = 0u64;
        let mut rescans = 0u64;
        for (_, reports) in sim.trajectories() {
            for r in &reports[1..] {
                match r.kind {
                    ReportKind::Upload => uploads += 1,
                    ReportKind::Rescan => rescans += 1,
                    ReportKind::Report => panic!("report API generates no reports"),
                }
            }
        }
        assert!(uploads > 0 && rescans > 0);
        let frac = uploads as f64 / (uploads + rescans) as f64;
        assert!((frac - 0.55).abs() < 0.05, "upload fraction {frac}");
    }
}
