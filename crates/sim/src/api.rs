//! The three VirusTotal APIs and their Table 1 field semantics.
//!
//! §3 of the paper establishes, by black-box probing, how three report
//! fields update under each API:
//!
//! * **Upload** (`POST /api/v3/files`) — submits the file and analyzes
//!   it: `last_analysis_date` updates, `last_submission_date` updates,
//!   `times_submitted` increments.
//! * **Rescan** (`POST /api/v3/files/{id}/analyse`) — re-analyzes an
//!   existing file: only `last_analysis_date` updates.
//! * **Report** (`GET /api/v3/files/{id}`) — retrieves the latest
//!   report: nothing updates, and *no new report is generated*.
//!
//! [`SampleSession`] is the per-sample platform state machine enforcing
//! exactly those rules; the platform drives one session per sample.

use vt_engines::{EngineFleet, SamplePlan};
use vt_model::{ReportKind, SampleMeta, ScanReport, Timestamp};

/// Platform-side state of one sample, advanced by API calls.
#[derive(Debug)]
pub struct SampleSession<'f> {
    fleet: &'f EngineFleet,
    plan: SamplePlan,
    meta: SampleMeta,
    /// Last produced report (what the report API returns).
    last_report: Option<ScanReport>,
    times_submitted: u32,
    last_submission_date: Timestamp,
}

impl<'f> SampleSession<'f> {
    /// Opens a session by uploading the sample for the first time at
    /// `t` (every sample enters the platform through the upload API).
    /// Returns the session and the first report.
    pub fn open(fleet: &'f EngineFleet, meta: SampleMeta, t: Timestamp) -> (Self, ScanReport) {
        let plan = fleet.sample_plan(&meta);
        let mut session = Self {
            fleet,
            plan,
            meta,
            last_report: None,
            times_submitted: 0,
            last_submission_date: t,
        };
        let report = session.upload(t);
        (session, report)
    }

    /// Resumes a session for a sample that was already on the platform
    /// before the collection window: the platform state carries its
    /// prior submission history (`prior_submissions` ≥ 1 and the
    /// original `meta.first_submission` as the last submission date),
    /// and the first in-window event is a **rescan** — which is what
    /// keeps the pre-window submission metadata visible in the report
    /// stream, exactly how the paper distinguishes fresh samples
    /// (91.76%) from pre-existing ones.
    pub fn open_resumed(
        fleet: &'f EngineFleet,
        meta: SampleMeta,
        t: Timestamp,
        prior_submissions: u32,
    ) -> (Self, ScanReport) {
        assert!(
            prior_submissions >= 1,
            "a pre-existing sample was submitted before"
        );
        assert!(
            meta.first_submission <= t,
            "resume after the original submission"
        );
        let plan = fleet.sample_plan(&meta);
        let mut session = Self {
            fleet,
            plan,
            meta,
            last_report: None,
            times_submitted: prior_submissions,
            last_submission_date: meta.first_submission,
        };
        let report = session.rescan(t);
        (session, report)
    }

    /// The sample this session manages.
    pub fn meta(&self) -> &SampleMeta {
        &self.meta
    }

    /// `times_submitted` as the platform currently reports it.
    pub fn times_submitted(&self) -> u32 {
        self.times_submitted
    }

    /// Upload API: new submission + analysis. Updates all three fields.
    pub fn upload(&mut self, t: Timestamp) -> ScanReport {
        self.times_submitted += 1;
        self.last_submission_date = t;
        self.analyze(t, ReportKind::Upload)
    }

    /// Rescan API: analysis only. Updates `last_analysis_date`; leaves
    /// `last_submission_date` and `times_submitted` unchanged.
    pub fn rescan(&mut self, t: Timestamp) -> ScanReport {
        self.analyze(t, ReportKind::Rescan)
    }

    /// Report API: retrieval only — returns the most recent report
    /// (kind re-tagged), generating nothing and updating nothing.
    /// Returns `None` if the sample was never analyzed (unreachable via
    /// [`SampleSession::open`], which always uploads).
    pub fn report(&self) -> Option<ScanReport> {
        self.last_report.map(|r| ScanReport {
            kind: ReportKind::Report,
            ..r
        })
    }

    fn analyze(&mut self, t: Timestamp, kind: ReportKind) -> ScanReport {
        let verdicts = self.fleet.scan(&self.plan, &self.meta, t);
        let report = ScanReport {
            sample: self.meta.hash,
            file_type: self.meta.file_type,
            analysis_date: t,
            last_submission_date: self.last_submission_date,
            times_submitted: self.times_submitted,
            kind,
            verdicts,
        };
        self.last_report = Some(report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_engines::EngineFleet;
    use vt_model::time::{Date, Duration};
    use vt_model::{FileType, GroundTruth, ReportKind, SampleHash};

    fn meta() -> SampleMeta {
        let origin = Timestamp::from_date(Date::new(2021, 6, 1));
        SampleMeta {
            hash: SampleHash::from_ordinal(1),
            file_type: FileType::Pdf,
            origin,
            first_submission: origin + Duration::days(3),
            truth: GroundTruth::Malicious { detectability: 0.5 },
        }
    }

    #[test]
    fn table1_upload_semantics() {
        let fleet = EngineFleet::with_seed(1);
        let m = meta();
        let t0 = m.first_submission;
        let (mut s, r0) = SampleSession::open(&fleet, m, t0);
        assert_eq!(r0.kind, ReportKind::Upload);
        assert_eq!(r0.times_submitted, 1);
        assert_eq!(r0.last_submission_date, t0);
        assert_eq!(r0.analysis_date, t0);

        let t1 = t0 + Duration::days(2);
        let r1 = s.upload(t1);
        // Upload updates everything.
        assert_eq!(r1.times_submitted, 2);
        assert_eq!(r1.last_submission_date, t1);
        assert_eq!(r1.analysis_date, t1);
    }

    #[test]
    fn table1_rescan_semantics() {
        let fleet = EngineFleet::with_seed(1);
        let m = meta();
        let t0 = m.first_submission;
        let (mut s, _) = SampleSession::open(&fleet, m, t0);
        let t1 = t0 + Duration::days(5);
        let r = s.rescan(t1);
        assert_eq!(r.kind, ReportKind::Rescan);
        // Analysis date moves; submission metadata does not.
        assert_eq!(r.analysis_date, t1);
        assert_eq!(r.last_submission_date, t0);
        assert_eq!(r.times_submitted, 1);
    }

    #[test]
    fn table1_report_semantics() {
        let fleet = EngineFleet::with_seed(1);
        let m = meta();
        let t0 = m.first_submission;
        let (mut s, _) = SampleSession::open(&fleet, m, t0);
        let t1 = t0 + Duration::days(5);
        let r1 = s.rescan(t1);

        let before = s.times_submitted();
        let fetched = s.report().expect("analyzed sample has a report");
        assert_eq!(fetched.kind, ReportKind::Report);
        // Retrieval returns the latest analysis, unchanged.
        assert_eq!(fetched.analysis_date, r1.analysis_date);
        assert_eq!(fetched.last_submission_date, r1.last_submission_date);
        assert_eq!(fetched.times_submitted, r1.times_submitted);
        assert_eq!(fetched.verdicts, r1.verdicts);
        // And nothing advanced.
        assert_eq!(s.times_submitted(), before);
    }

    #[test]
    fn rescan_after_upload_keeps_latest_submission() {
        let fleet = EngineFleet::with_seed(1);
        let m = meta();
        let t0 = m.first_submission;
        let (mut s, _) = SampleSession::open(&fleet, m, t0);
        let t1 = t0 + Duration::days(1);
        s.upload(t1);
        let t2 = t0 + Duration::days(9);
        let r = s.rescan(t2);
        assert_eq!(r.last_submission_date, t1);
        assert_eq!(r.times_submitted, 2);
    }
}
