//! Walker's alias method for O(1) weighted sampling.
//!
//! The population generator draws a file type for every sample from a
//! 351-way categorical distribution; at millions of samples a linear
//! CDF scan would dominate generation time. The alias method answers
//! each draw with one uniform and one comparison. (The
//! `ablation_alias_sampling` bench quantifies the win.)

use rand::Rng;

/// A categorical distribution supporting O(1) sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (need not sum to 1).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable requires weights");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be non-negative and finite"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Scale weights to mean 1.
        let scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = work[s];
            alias[s] = l as u32;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains (numerical leftovers) gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i as u32;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Draws a category from two externally supplied uniforms (for
    /// hash-derived determinism without an RNG).
    pub fn sample_with(&self, u_index: f64, u_accept: f64) -> usize {
        let n = self.prob.len();
        let i = ((u_index * n as f64) as usize).min(n - 1);
        if u_accept < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_weights_statistically() {
        let weights = [1.0, 2.0, 4.0, 8.0, 1.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u64; 5];
        let n = 400_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.005,
                "category {i}: expect {expect}, got {got}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = table.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn sample_with_uniforms_covers_support() {
        let table = AliasTable::new(&[1.0, 1.0, 2.0]);
        let mut seen = [false; 3];
        for a in 0..50 {
            for b in 0..50 {
                let i = table.sample_with(a as f64 / 50.0, b as f64 / 50.0);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "requires weights")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
