//! Box-plot summaries (Tukey box-and-whisker statistics).
//!
//! The paper renders several distributions as box plots with the median
//! (orange line), the mean (green triangle), the interquartile box, and
//! whiskers, with outliers *excluded from the figures* (Figs. 4, 6, 7).
//! [`BoxplotSummary`] computes exactly that statistic set so the report
//! layer can render the same figures.

/// The statistics behind one box in a box plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (the paper's green triangle).
    pub mean: f64,
    /// Median / Q2 (the paper's orange line).
    pub median: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lower whisker: smallest observation ≥ Q1 − 1.5·IQR.
    pub whisker_lo: f64,
    /// Upper whisker: largest observation ≤ Q3 + 1.5·IQR.
    pub whisker_hi: f64,
    /// Count of observations outside the whiskers (excluded by the
    /// paper's figures).
    pub outliers: usize,
    /// Minimum observation (including outliers).
    pub min: f64,
    /// Maximum observation (including outliers).
    pub max: f64,
}

impl BoxplotSummary {
    /// Computes the summary from an unsorted sample. Returns `None` on an
    /// empty sample.
    ///
    /// Quartiles use linear interpolation between order statistics
    /// (matplotlib's default, which is what the paper's figures use).
    pub fn from_unsorted(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite inputs"));
        Some(Self::from_sorted(&sorted))
    }

    /// Computes the summary from an already-sorted (ascending) sample.
    ///
    /// # Panics
    /// Panics on an empty slice; debug-asserts sortedness.
    pub fn from_sorted(sorted: &[f64]) -> Self {
        assert!(!sorted.is_empty(), "BoxplotSummary requires observations");
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        let n = sorted.len();
        let q1 = interp_quantile(sorted, 0.25);
        let median = interp_quantile(sorted, 0.50);
        let q3 = interp_quantile(sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers extend to the most extreme points within the fences,
        // clamped to the box edges so a whisker never sits inside the box
        // (possible with interpolated quartiles over gappy data).
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&v| v >= lo_fence)
            .unwrap_or(sorted[0])
            .min(q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= hi_fence)
            .unwrap_or(sorted[n - 1])
            .max(q3);
        let outliers = sorted
            .iter()
            .filter(|&&v| v < whisker_lo || v > whisker_hi)
            .count();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Self {
            n,
            mean,
            median,
            q1,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
            min: sorted[0],
            max: sorted[n - 1],
        }
    }

    /// Computes the summary from a counting representation: `counts[v]`
    /// observations of the integer value `v`. Returns `None` when all
    /// counts are zero.
    ///
    /// Bit-identical to [`Self::from_unsorted`] on the expanded
    /// multiset as long as every partial sum stays below 2⁵³ (integer
    /// values and their running sums are then exact in `f64`), so the
    /// analyses can swap their per-observation `Vec<f64>` buffers for
    /// fixed-size count arrays without perturbing a single bit of the
    /// published statistics.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        let n = counts.iter().map(|&c| c as u128).sum::<u128>();
        if n == 0 {
            return None;
        }
        let n = usize::try_from(n).expect("observation count fits usize");
        // k-th (0-based) order statistic via a cumulative walk.
        let value_at = |k: usize| -> f64 {
            let mut seen = 0usize;
            for (v, &c) in counts.iter().enumerate() {
                seen += c as usize;
                if seen > k {
                    return v as f64;
                }
            }
            unreachable!("k < n by construction")
        };
        // Replicates `interp_quantile` on the expanded sorted sample.
        let quantile = |q: f64| -> f64 {
            if n == 1 {
                return value_at(0);
            }
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                value_at(lo)
            } else {
                let frac = pos - lo as f64;
                value_at(lo) * (1.0 - frac) + value_at(hi) * frac
            }
        };
        let q1 = quantile(0.25);
        let median = quantile(0.50);
        let q3 = quantile(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let present = || {
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(v, &c)| (v as f64, c))
        };
        let min = present().next().expect("non-empty").0;
        let max = present().next_back().expect("non-empty").0;
        let whisker_lo = present()
            .map(|(v, _)| v)
            .find(|&v| v >= lo_fence)
            .unwrap_or(min)
            .min(q1);
        let whisker_hi = present()
            .map(|(v, _)| v)
            .rev()
            .find(|&v| v <= hi_fence)
            .unwrap_or(max)
            .max(q3);
        let outliers = present()
            .filter(|&(v, _)| v < whisker_lo || v > whisker_hi)
            .map(|(_, c)| c as usize)
            .sum();
        // Each value and each partial sum is an integer < 2^53, so this
        // equals the sequential sum over the expanded sorted sample.
        let mean = present().map(|(v, c)| v * c as f64).sum::<f64>() / n as f64;
        Some(Self {
            n,
            mean,
            median,
            q1,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
            min,
            max,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile on a sorted slice (type-7 estimator, the
/// NumPy/matplotlib default).
fn interp_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_box() {
        let s = BoxplotSummary::from_unsorted(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 5.0);
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn outlier_is_fenced() {
        // 1..=9 plus an extreme point: IQR fences exclude 100.
        let mut v: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        v.push(100.0);
        let s = BoxplotSummary::from_unsorted(&v).unwrap();
        assert_eq!(s.outliers, 1);
        assert_eq!(s.whisker_hi, 9.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn interpolated_quartiles_match_numpy() {
        // numpy.percentile([1,2,3,4], 25) = 1.75 ; 75 → 3.25
        let s = BoxplotSummary::from_unsorted(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        let s = BoxplotSummary::from_unsorted(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxplotSummary::from_unsorted(&[]).is_none());
    }

    #[test]
    fn from_counts_empty_is_none() {
        assert!(BoxplotSummary::from_counts(&[]).is_none());
        assert!(BoxplotSummary::from_counts(&[0, 0, 0]).is_none());
    }

    #[test]
    fn from_counts_singleton() {
        let s = BoxplotSummary::from_counts(&[0, 0, 3]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.mean, 2.0);
    }

    proptest! {
        /// The bit-identity contract `from_counts` is built on: on any
        /// integer multiset it reproduces `from_unsorted` exactly.
        #[test]
        fn from_counts_matches_from_unsorted(counts in proptest::collection::vec(0u64..50, 1..130)) {
            let expanded: Vec<f64> = counts
                .iter()
                .enumerate()
                .flat_map(|(v, &c)| std::iter::repeat(v as f64).take(c as usize))
                .collect();
            prop_assume!(!expanded.is_empty());
            let a = BoxplotSummary::from_counts(&counts).unwrap();
            let b = BoxplotSummary::from_unsorted(&expanded).unwrap();
            prop_assert_eq!(a.n, b.n);
            prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            prop_assert_eq!(a.median.to_bits(), b.median.to_bits());
            prop_assert_eq!(a.q1.to_bits(), b.q1.to_bits());
            prop_assert_eq!(a.q3.to_bits(), b.q3.to_bits());
            prop_assert_eq!(a.whisker_lo.to_bits(), b.whisker_lo.to_bits());
            prop_assert_eq!(a.whisker_hi.to_bits(), b.whisker_hi.to_bits());
            prop_assert_eq!(a.outliers, b.outliers);
            prop_assert_eq!(a.min.to_bits(), b.min.to_bits());
            prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
        }

        #[test]
        fn ordering_invariants(v in proptest::collection::vec(-1e4..1e4f64, 1..300)) {
            let s = BoxplotSummary::from_unsorted(&v).unwrap();
            prop_assert!(s.min <= s.whisker_lo);
            prop_assert!(s.whisker_lo <= s.q1 + 1e-9);
            prop_assert!(s.q1 <= s.median + 1e-9);
            prop_assert!(s.median <= s.q3 + 1e-9);
            prop_assert!(s.q3 - 1e-9 <= s.whisker_hi);
            prop_assert!(s.whisker_hi <= s.max);
            prop_assert!(s.outliers <= s.n);
            prop_assert!((s.min..=s.max).contains(&s.mean));
        }
    }
}
