//! Fixed-width histograms over non-negative integer observations.
//!
//! Several analyses bucket observations by small integer values (AV-Rank
//! 0..=70, rank differences 0..=70, day counts 0..=450). [`Histogram`]
//! keeps exact counts per integer value with a configurable upper bound
//! and an overflow bucket, and can convert into cumulative fractions.

/// Exact counts per integer value in `0..bound`, plus an overflow bucket
/// for values `>= bound`.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram covering values `0..bound`.
    pub fn new(bound: usize) -> Self {
        Self {
            counts: vec![0; bound],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.counts.len() {
            self.counts[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Records `weight` observations of `value` at once.
    pub fn record_n(&mut self, value: u64, weight: u64) {
        if (value as usize) < self.counts.len() {
            self.counts[value as usize] += weight;
        } else {
            self.overflow += weight;
        }
        self.total += weight;
    }

    /// Merges another histogram with the same bound into this one.
    ///
    /// # Panics
    /// Panics if the bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bound mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Count for one in-range value.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Count of observations `>= bound`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Upper bound (exclusive) of the in-range buckets.
    pub fn bound(&self) -> usize {
        self.counts.len()
    }

    /// Fraction of observations `<= value` (overflow counts only when the
    /// query reaches the bound).
    pub fn fraction_le(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto = (value as usize + 1).min(self.counts.len());
        let mut c: u64 = self.counts[..upto].iter().sum();
        if value as usize >= self.counts.len() {
            c += self.overflow;
        }
        c as f64 / self.total as f64
    }

    /// The cumulative-fraction staircase over observed values only:
    /// `(value, F(value))` for values with nonzero count, plus a final
    /// entry for the overflow bucket if nonempty (rendered at `bound`).
    pub fn cumulative(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                acc += c;
                out.push((v as u64, acc as f64 / self.total as f64));
            }
        }
        if self.overflow > 0 {
            acc += self.overflow;
            out.push((self.counts.len() as u64, acc as f64 / self.total as f64));
        }
        out
    }

    /// Mean of the recorded values (overflow contributes at `bound`).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (v, &c) in self.counts.iter().enumerate() {
            sum += v as f64 * c as f64;
        }
        sum += self.counts.len() as f64 * self.overflow as f64;
        Some(sum / self.total as f64)
    }

    /// Smallest value `v` with `F(v) >= q` (nearest-rank quantile).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(v as u64);
            }
        }
        Some(self.counts.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_and_query() {
        let mut h = Histogram::new(5);
        for v in [0, 0, 1, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.fraction_le(0), 0.4);
        assert_eq!(h.fraction_le(3), 0.8);
        assert_eq!(h.fraction_le(10), 1.0);
    }

    #[test]
    fn cumulative_staircase() {
        let mut h = Histogram::new(4);
        h.record_n(1, 2);
        h.record_n(3, 2);
        assert_eq!(h.cumulative(), vec![(1, 0.5), (3, 1.0)]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(3);
        a.record(0);
        let mut b = Histogram::new(3);
        b.record(0);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn quantile_and_mean() {
        let mut h = Histogram::new(10);
        for v in [1u64, 2, 2, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(1.0), Some(9));
        assert!((h.mean().unwrap() - 3.4).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn fraction_le_is_monotone(v in proptest::collection::vec(0..200u64, 0..300)) {
            let mut h = Histogram::new(100);
            for x in &v {
                h.record(*x);
            }
            let mut last = 0.0;
            for q in 0..=200u64 {
                let f = h.fraction_le(q);
                prop_assert!(f >= last - 1e-15);
                prop_assert!((0.0..=1.0).contains(&f));
                last = f;
            }
            if !v.is_empty() {
                prop_assert!((h.fraction_le(200) - 1.0).abs() < 1e-12);
            }
        }
    }
}
