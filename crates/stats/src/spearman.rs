//! Spearman rank correlation with significance testing.
//!
//! This is the workhorse of the paper's two correlation analyses:
//!
//! * §5.3.5 correlates the per-day mean AV-Rank difference against the
//!   scan interval and reports ρ = 0.9181, p = 2.6083e-167.
//! * §7.2 computes ρ between every pair of engine verdict columns of the
//!   scan matrix `R` and keeps pairs with ρ > 0.8 as "strongly
//!   correlated" (Figs. 11–12, Tables 4–8).
//!
//! We compute ρ as the Pearson correlation of fractional ranks (the
//! tie-robust definition), and the p-value via the Student-t
//! approximation `t = ρ√((n−2)/(1−ρ²))` with `n−2` degrees of freedom —
//! the same procedure SciPy's `spearmanr` uses, which is what the
//! paper's numbers come from.

use crate::pearson::pearson;
use crate::rank::average_ranks;
use crate::special::student_t_two_sided_p;

/// Result of a Spearman correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpearmanResult {
    /// The rank correlation coefficient ρ ∈ [−1, 1].
    pub rho: f64,
    /// Two-sided p-value from the t-approximation. For |ρ| = 1 the
    /// statistic diverges and the p-value is reported as 0.
    pub p_value: f64,
    /// Number of paired observations.
    pub n: usize,
}

/// Spearman rank correlation coefficient between `x` and `y`.
///
/// Returns `None` if fewer than 2 observations are available or either
/// side is constant (ranks have zero variance).
///
/// # Examples
///
/// ```
/// // A strictly monotone relationship has ρ = 1 regardless of shape.
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [1.0, 8.0, 27.0, 64.0, 125.0];
/// assert_eq!(vt_stats::spearman(&x, &y), Some(1.0));
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "spearman requires equal-length inputs");
    if x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Spearman ρ together with its two-sided p-value.
///
/// Returns `None` under the same degenerate conditions as [`spearman`],
/// plus `n < 3` (the t-test needs at least one degree of freedom).
pub fn spearman_with_p(x: &[f64], y: &[f64]) -> Option<SpearmanResult> {
    let n = x.len();
    if n < 3 {
        return None;
    }
    let rho = spearman(x, y)?;
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let df = (n - 2) as f64;
        let t = rho * (df / (1.0 - rho * rho)).sqrt();
        student_t_two_sided_p(t, df)
    };
    Some(SpearmanResult { rho, p_value, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn monotone_transform_invariance() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert_eq!(spearman(&x, &y), Some(1.0));
        let y_rev: Vec<f64> = x.iter().map(|v| -v.powi(3)).collect();
        assert_eq!(spearman(&x, &y_rev), Some(-1.0));
    }

    #[test]
    fn classic_textbook_example() {
        // Wikipedia's IQ vs TV-hours example: ρ = −29/165 ≈ −0.17575757
        let iq = [
            106.0, 100.0, 86.0, 101.0, 99.0, 103.0, 97.0, 113.0, 112.0, 110.0,
        ];
        let tv = [7.0, 27.0, 2.0, 50.0, 28.0, 29.0, 20.0, 12.0, 6.0, 17.0];
        let rho = spearman(&iq, &tv).unwrap();
        assert!((rho - (-29.0 / 165.0)).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn tie_handling_matches_scipy() {
        // scipy.stats.spearmanr([1,2,2,3], [1,2,3,4]) → 0.9486832980505138
        let rho = spearman(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((rho - 0.948_683_298_050_513_8).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn p_value_matches_scipy() {
        // scipy.stats.spearmanr([1..10], [2,1,4,3,6,5,8,7,10,9])
        //   → rho = 0.9393939393939394, p ≈ 5.484053e-05
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0, 10.0, 9.0];
        let r = spearman_with_p(&x, &y).unwrap();
        assert!((r.rho - 0.939_393_939_393_939_4).abs() < 1e-12);
        assert!((r.p_value - 5.484_053e-5).abs() < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn perfect_correlation_p_is_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let r = spearman_with_p(&x, &x).unwrap();
        assert_eq!(r.rho, 1.0);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn constant_column_yields_none() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    proptest! {
        #[test]
        fn rho_in_unit_interval(
            v in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..120)
        ) {
            let x: Vec<f64> = v.iter().map(|p| p.0).collect();
            let y: Vec<f64> = v.iter().map(|p| p.1).collect();
            if let Some(r) = spearman_with_p(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&r.rho));
                prop_assert!((0.0..=1.0).contains(&r.p_value));
            }
        }

        #[test]
        fn reversal_negates_rho(v in proptest::collection::vec(-1e3..1e3f64, 3..60)) {
            // ρ(x, y) = −ρ(x, −y)
            let x: Vec<f64> = (0..v.len()).map(|i| i as f64).collect();
            let neg: Vec<f64> = v.iter().map(|a| -a).collect();
            match (spearman(&x, &v), spearman(&x, &neg)) {
                (Some(a), Some(b)) => prop_assert!((a + b).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false),
            }
        }
    }
}
