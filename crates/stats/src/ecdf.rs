//! Empirical cumulative distribution functions.
//!
//! Every "CDF of …" figure in the paper (Figs. 1, 2, 3, 5) is an ECDF over
//! integer-valued observations (report counts, AV-Ranks, rank
//! differences). [`Ecdf`] stores the sorted sample once and answers
//! `F(x)`, quantile, and "fraction ≤ x" queries in `O(log n)`.

/// An empirical CDF over a finite sample.
///
/// Construction sorts the data (`O(n log n)`); queries are
/// binary searches.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Non-finite values are rejected with a
    /// panic — the study's data is always finite.
    pub fn new(mut data: Vec<f64>) -> Self {
        assert!(
            data.iter().all(|v| v.is_finite()),
            "Ecdf requires finite observations"
        );
        data.sort_by(|a, b| a.partial_cmp(b).expect("finite inputs"));
        Self { sorted: data }
    }

    /// Builds an ECDF from integer counts (the common case in this study).
    pub fn from_u64(data: impl IntoIterator<Item = u64>) -> Self {
        Self::new(data.into_iter().map(|v| v as f64).collect())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of observations `<= x`. Returns 0 for an
    /// empty sample.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly less than `x`.
    pub fn fraction_lt(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q ∈ [0, 1]` using the nearest-rank (inverse
    /// CDF) definition. Returns `None` on an empty sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        // Nearest-rank: smallest k with k/n >= q.
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[k - 1])
    }

    /// Median (0.5 quantile, nearest-rank).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Evaluates the CDF at each of the given points, producing `(x, F(x))`
    /// pairs — the series a plotting front-end consumes.
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }

    /// The distinct observed values and the CDF evaluated at each — the
    /// minimal exact staircase representation.
    pub fn staircase(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let n = self.sorted.len() as f64;
        let mut i = 0;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let mut j = i + 1;
            while j < self.sorted.len() && self.sorted[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_queries() {
        let e = Ecdf::from_u64([1, 1, 2, 3, 5]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.fraction_le(0.0), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.4);
        assert_eq!(e.fraction_le(2.5), 0.6);
        assert_eq!(e.fraction_le(5.0), 1.0);
        assert_eq!(e.fraction_lt(1.0), 0.0);
        assert_eq!(e.fraction_lt(2.0), 0.4);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::from_u64([10, 20, 30, 40]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(0.75), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
        assert_eq!(e.median(), Some(20.0));
    }

    #[test]
    fn staircase_is_exact() {
        let e = Ecdf::from_u64([1, 1, 2, 2, 2, 7]);
        assert_eq!(
            e.staircase(),
            vec![(1.0, 2.0 / 6.0), (2.0, 5.0 / 6.0), (7.0, 1.0)]
        );
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(3.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_bounded(v in proptest::collection::vec(-1e4..1e4f64, 1..200)) {
            let e = Ecdf::new(v);
            let mut last = 0.0;
            for i in -20..=20 {
                let f = e.fraction_le(i as f64 * 500.0);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f >= last);
                last = f;
            }
        }

        #[test]
        fn quantile_inverts_cdf(v in proptest::collection::vec(0..1000u64, 1..200)) {
            let e = Ecdf::from_u64(v);
            for i in 1..=10 {
                let q = i as f64 / 10.0;
                let x = e.quantile(q).unwrap();
                // Nearest-rank property: F(x) >= q.
                prop_assert!(e.fraction_le(x) >= q - 1e-12);
            }
        }

        #[test]
        fn quantiles_are_monotone(v in proptest::collection::vec(0..1000u64, 1..200)) {
            let e = Ecdf::from_u64(v);
            let mut last = f64::NEG_INFINITY;
            for i in 0..=20 {
                let x = e.quantile(i as f64 / 20.0).unwrap();
                prop_assert!(x >= last);
                last = x;
            }
        }
    }
}
