//! Frequency counters over arbitrary keys, with ranked ("top-N")
//! extraction — the machinery behind the file-type distribution table
//! (Table 3) and the per-month accounting (Table 2).

use std::collections::HashMap;
use std::hash::Hash;

/// A frequency counter with percentage and top-N reporting.
#[derive(Debug, Clone)]
pub struct FreqCounter<K: Eq + Hash> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash> Default for FreqCounter<K> {
    fn default() -> Self {
        Self {
            counts: HashMap::new(),
            total: 0,
        }
    }
}

impl<K: Eq + Hash + Clone> FreqCounter<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `key`.
    pub fn record(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` occurrences of `key`.
    pub fn record_n(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Count for `key` (0 if unseen).
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Fraction of all occurrences belonging to `key`.
    pub fn fraction(&self, key: &K) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(key) as f64 / self.total as f64
        }
    }

    /// Total occurrences recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// All `(key, count)` pairs sorted by descending count. Ties are
    /// broken by insertion-independent key comparison when `K: Ord`-like
    /// ordering is unavailable; here we leave tie order unspecified.
    pub fn ranked(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// The `n` most frequent keys with their counts.
    pub fn top_n(&self, n: usize) -> Vec<(K, u64)> {
        let mut v = self.ranked();
        v.truncate(n);
        v
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &FreqCounter<K>) {
        for (k, &c) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Iterates over all `(key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let mut c = FreqCounter::new();
        c.record("exe");
        c.record("exe");
        c.record("pdf");
        assert_eq!(c.count(&"exe"), 2);
        assert_eq!(c.count(&"pdf"), 1);
        assert_eq!(c.count(&"zip"), 0);
        assert_eq!(c.total(), 3);
        assert!((c.fraction(&"exe") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn ranked_descending() {
        let mut c = FreqCounter::new();
        c.record_n("a", 5);
        c.record_n("b", 9);
        c.record_n("c", 1);
        let r = c.ranked();
        assert_eq!(r[0], ("b", 9));
        assert_eq!(r[1], ("a", 5));
        assert_eq!(r[2], ("c", 1));
        assert_eq!(c.top_n(2).len(), 2);
    }

    #[test]
    fn merge() {
        let mut a = FreqCounter::new();
        a.record("x");
        let mut b = FreqCounter::new();
        b.record_n("x", 2);
        b.record("y");
        a.merge(&b);
        assert_eq!(a.count(&"x"), 3);
        assert_eq!(a.count(&"y"), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn empty_counter() {
        let c: FreqCounter<u32> = FreqCounter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.fraction(&7), 0.0);
        assert!(c.ranked().is_empty());
    }
}
