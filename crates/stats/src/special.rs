//! Special functions needed for p-values: `ln Γ`, the regularized
//! incomplete beta function, and the Student-t CDF built on top of them.
//!
//! The Spearman significance test in the paper (§5.3.5 reports
//! p = 2.6083e-167) uses the usual t-approximation
//! `t = ρ·√((n−2)/(1−ρ²))` with `n−2` degrees of freedom. Evaluating that
//! requires the regularized incomplete beta function `I_x(a, b)`, which we
//! implement with the standard Lentz continued-fraction expansion
//! (Numerical Recipes §6.4). Accuracy is ~1e-12 over the domain we use,
//! which is far more than the study needs.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients). Valid for `x > 0`.
///
/// Accurate to ~1e-13 relative error on the positive axis.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, kept at published precision.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`, via the continued-fraction expansion with the usual
/// symmetry split for fast convergence.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "betai requires a, b > 0");
    debug_assert!((0.0..=1.0).contains(&x), "betai requires x in [0,1]");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom,
/// evaluated at `t`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    debug_assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t statistic with `df` degrees of freedom:
/// `P(|T| >= |t|)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    // betai can underflow to exactly 0 for enormous |t|; that is the
    // honest answer at f64 precision.
    betai(0.5 * df, 0.5, x).clamp(0.0, 1.0)
}

/// Inverse CDF of the standard normal distribution (probit function),
/// via Acklam's rational approximation (relative error < 1.15e-9 —
/// far beyond what distribution sampling needs).
///
/// Used to turn uniform hash-derived variates into normal/lognormal
/// draws deterministically (no RNG state).
pub fn probit(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probit requires p in [0,1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Acklam coefficients, kept at published precision.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// CDF of the standard normal distribution, via the incomplete beta
/// relation is overkill — use the erf-based formula with Abramowitz &
/// Stegun 7.1.26-grade accuracy from `erfc_approx`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc_approx(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function approximation (A&S 7.1.26 derivative;
/// absolute error < 1.2e-7 — plenty for the shape comparisons here).
fn erfc_approx(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(0.5) = √π
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(3.0), 2.0f64.ln(), 1e-12));
        assert!(close(ln_gamma(4.0), 6.0f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(10) = 362880
        assert!(close(ln_gamma(10.0), 362_880.0f64.ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x)
        for &x in &[0.3, 0.7, 1.4, 2.5, 5.9, 17.3, 123.4] {
            assert!(
                close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11),
                "recurrence failed at {x}"
            );
        }
    }

    #[test]
    fn betai_boundary_values() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (5.0, 1.5, 0.77)] {
            assert!(close(betai(a, b, x), 1.0 - betai(b, a, 1.0 - x), 1e-12));
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert!(close(betai(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn betai_known_value() {
        // I_{0.5}(2, 2) = 0.5 (by symmetry); I_{0.25}(2,2) = 0.15625
        assert!(close(betai(2.0, 2.0, 0.5), 0.5, 1e-12));
        // ∫0..x 6 t (1−t) dt = 3x² − 2x³ → at 0.25: 3/16 − 2/64 = 0.15625
        assert!(close(betai(2.0, 2.0, 0.25), 0.15625, 1e-12));
    }

    #[test]
    fn t_cdf_is_symmetric_and_monotone() {
        for &df in &[1.0, 3.0, 10.0, 100.0] {
            assert!(close(student_t_cdf(0.0, df), 0.5, 1e-12));
            assert!(close(
                student_t_cdf(1.7, df) + student_t_cdf(-1.7, df),
                1.0,
                1e-12
            ));
            let mut last = 0.0;
            for i in -40..=40 {
                let v = student_t_cdf(i as f64 / 4.0, df);
                assert!(v >= last - 1e-15, "CDF must be nondecreasing");
                last = v;
            }
        }
    }

    #[test]
    fn t_cdf_matches_reference_values() {
        // Reference values from the standard t tables / scipy.stats.t.cdf.
        // df=10, t=2.228 → 0.975 (the classic 95% two-sided critical value)
        assert!(close(student_t_cdf(2.228, 10.0), 0.975, 2e-4));
        // df=1 is the Cauchy distribution: CDF(1) = 0.75
        assert!(close(student_t_cdf(1.0, 1.0), 0.75, 1e-10));
        // Large df approaches the normal: CDF(1.959964) ≈ 0.975
        assert!(close(student_t_cdf(1.959964, 1.0e6), 0.975, 1e-5));
    }

    #[test]
    fn two_sided_p_matches_cdf() {
        for &(t, df) in &[(2.5, 12.0), (0.3, 5.0), (4.4, 60.0)] {
            let p = student_t_two_sided_p(t, df);
            let via_cdf = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
            assert!(close(p, via_cdf, 1e-9));
        }
    }

    #[test]
    fn probit_known_values() {
        assert!(close(probit(0.5), 0.0, 1e-9));
        // Φ⁻¹(0.975) = 1.959963984540054
        assert!(close(probit(0.975), 1.959_963_984_540_054, 1e-8));
        assert!(close(probit(0.025), -1.959_963_984_540_054, 1e-8));
        // Φ⁻¹(0.84134474...) ≈ 1
        assert!(close(probit(0.841_344_746_068_543), 1.0, 1e-8));
        assert_eq!(probit(0.0), f64::NEG_INFINITY);
        assert_eq!(probit(1.0), f64::INFINITY);
    }

    #[test]
    fn probit_inverts_normal_cdf() {
        for i in 1..40 {
            let p = i as f64 / 40.0;
            let x = probit(p);
            assert!(close(normal_cdf(x), p, 2e-6), "p = {p}");
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-7));
        for &x in &[0.3, 1.0, 2.5] {
            assert!(close(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-7));
        }
    }

    #[test]
    fn two_sided_p_extreme_t_underflows_to_zero_like_values() {
        // Huge |t| with many dof: p must be vanishingly small, not NaN.
        let p = student_t_two_sided_p(60.0, 1.0e5);
        assert!(p.is_finite());
        assert!(p < 1e-100);
    }
}
