//! Pearson product-moment correlation, used directly on ranks to compute
//! the tie-robust Spearman coefficient.

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `None` when the inputs are shorter than 2 elements or either
/// input has zero variance (the coefficient is undefined there — the
/// caller decides whether that means "no correlation" or "skip pair").
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson requires equal-length inputs");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    // Clamp tiny floating-point excursions outside [-1, 1].
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    fn known_value() {
        // Hand-computed: x = [1,2,3], y = [1,3,2] → r = 0.5
        let r = pearson(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn in_unit_interval(
            v in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..100)
        ) {
            let x: Vec<f64> = v.iter().map(|p| p.0).collect();
            let y: Vec<f64> = v.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&r));
            }
        }

        #[test]
        fn self_correlation_is_one(v in proptest::collection::vec(-1e3..1e3f64, 2..100)) {
            if let Some(r) = pearson(&v, &v) {
                prop_assert!((r - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn symmetric(v in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..100)) {
            let x: Vec<f64> = v.iter().map(|p| p.0).collect();
            let y: Vec<f64> = v.iter().map(|p| p.1).collect();
            let a = pearson(&x, &y);
            let b = pearson(&y, &x);
            match (a, b) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
                (None, None) => {}
                _ => prop_assert!(false, "asymmetric None"),
            }
        }
    }
}
