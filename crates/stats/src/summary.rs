//! Streaming summary statistics (Welford's online algorithm).
//!
//! The analysis passes stream millions of reports; [`RunningSummary`]
//! accumulates count/mean/variance/min/max in O(1) memory and merges
//! across threads (parallel partitions are combined with
//! [`RunningSummary::merge`] using Chan et al.'s pairwise update).

/// Online mean/variance/min/max accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningSummary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary (Chan/parallel-variance formula).
    pub fn merge(&mut self, other: &RunningSummary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample (Bessel-corrected) variance, or `None` when n < 2.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_stats() {
        let mut s = RunningSummary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary() {
        let s = RunningSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningSummary::new();
        a.push(3.0);
        let before = a;
        a.merge(&RunningSummary::new());
        assert_eq!(a, before);

        let mut e = RunningSummary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            a in proptest::collection::vec(-1e3..1e3f64, 1..50),
            b in proptest::collection::vec(-1e3..1e3f64, 1..50),
        ) {
            let mut s1 = RunningSummary::new();
            for &x in a.iter().chain(&b) {
                s1.push(x);
            }
            let mut sa = RunningSummary::new();
            for &x in &a { sa.push(x); }
            let mut sb = RunningSummary::new();
            for &x in &b { sb.push(x); }
            sa.merge(&sb);
            prop_assert_eq!(s1.count(), sa.count());
            prop_assert!((s1.mean().unwrap() - sa.mean().unwrap()).abs() < 1e-8);
            prop_assert!((s1.variance().unwrap() - sa.variance().unwrap()).abs() < 1e-6);
            prop_assert_eq!(s1.min(), sa.min());
            prop_assert_eq!(s1.max(), sa.max());
        }
    }
}
