//! Percentile bootstrap confidence intervals.
//!
//! The Fig. 7 day-bins at laptop scale hold 10²–10⁴ pairs, so their
//! means carry visible sampling noise (EXPERIMENTS.md, deviation 1).
//! A bootstrap CI quantifies that noise, letting the report annotate
//! which bins are trustworthy. Deterministic: resampling indices come
//! from a splitmix stream seeded by the caller.

use crate::summary::RunningSummary;
use vt_model_free::splitmix64;

/// The crate avoids a dependency on vt-model; a local splitmix copy
/// keeps the bootstrap deterministic without an RNG crate.
mod vt_model_free {
    /// SplitMix64 finalizer (same constants as `vt_model::hash`).
    pub fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A bootstrap confidence interval for a statistic of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap replicates.
    pub replicates: usize,
}

impl BootstrapCi {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap CI for the *mean* of `data` at the given
/// confidence level (e.g. 0.95), using `replicates` resamples.
///
/// Returns `None` on an empty sample. Deterministic for a given
/// `(data, seed)`.
pub fn bootstrap_mean_ci(
    data: &[f64],
    confidence: f64,
    replicates: usize,
    seed: u64,
) -> Option<BootstrapCi> {
    if data.is_empty() || replicates == 0 {
        return None;
    }
    assert!((0.0..1.0).contains(&confidence) || confidence == 0.0 || confidence < 1.0);
    let n = data.len();
    let mut state = seed ^ 0xb007_57a9;
    let mut next = || {
        state = splitmix64(state);
        state
    };
    let mut means = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let mut acc = RunningSummary::new();
        for _ in 0..n {
            let idx = (next() % n as u64) as usize;
            acc.push(data[idx]);
        }
        means.push(acc.mean().expect("n >= 1"));
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = (1.0 - confidence) / 2.0;
    let pick = |q: f64| {
        let pos = (q * (replicates - 1) as f64).round() as usize;
        means[pos.min(replicates - 1)]
    };
    let estimate = data.iter().sum::<f64>() / n as f64;
    Some(BootstrapCi {
        estimate,
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let data: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let a = bootstrap_mean_ci(&data, 0.95, 200, 42).unwrap();
        let b = bootstrap_mean_ci(&data, 0.95, 200, 42).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&data, 0.95, 200, 43).unwrap();
        assert_ne!(a, c, "different seeds should resample differently");
    }

    #[test]
    fn interval_brackets_estimate() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 13) % 29) as f64).collect();
        let ci = bootstrap_mean_ci(&data, 0.95, 500, 7).unwrap();
        assert!(ci.lo <= ci.estimate);
        assert!(ci.estimate <= ci.hi);
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn constant_data_collapses() {
        let data = vec![5.0; 30];
        let ci = bootstrap_mean_ci(&data, 0.9, 100, 1).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert_eq!(ci.estimate, 5.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(bootstrap_mean_ci(&[], 0.95, 100, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, 1).is_none());
    }

    #[test]
    fn wider_sample_narrows_interval() {
        // CI width shrinks roughly like 1/√n.
        let small: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..2_000).map(|i| (i % 10) as f64).collect();
        let ci_small = bootstrap_mean_ci(&small, 0.95, 400, 3).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 0.95, 400, 3).unwrap();
        assert!(
            ci_large.width() < ci_small.width() / 3.0,
            "{} vs {}",
            ci_large.width(),
            ci_small.width()
        );
    }

    proptest! {
        #[test]
        fn bounds_are_ordered(
            data in proptest::collection::vec(-100.0..100.0f64, 1..100),
            seed in any::<u64>(),
        ) {
            let ci = bootstrap_mean_ci(&data, 0.9, 100, seed).unwrap();
            prop_assert!(ci.lo <= ci.hi);
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(ci.lo >= min - 1e-9);
            prop_assert!(ci.hi <= max + 1e-9);
        }
    }
}
