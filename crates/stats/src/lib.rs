//! Statistics substrate for the VirusTotal label-dynamics study.
//!
//! The paper's analyses lean on a small but specific set of statistics:
//!
//! * **Spearman rank correlation with p-values** — used twice: to relate
//!   AV-Rank differences to scan intervals (§5.3.5, Fig. 7) and to measure
//!   pairwise engine correlation over the scan matrix `R` (§7.2,
//!   Figs. 11–12, Tables 4–8).
//! * **Empirical CDFs** — Figs. 1, 2, 3, 5.
//! * **Box-plot summaries** (median, mean, quartiles, Tukey whiskers, with
//!   outliers excluded from the rendering) — Figs. 4, 6, 7.
//! * **Histograms / frequency counters** — the distribution tables.
//!
//! Everything here is implemented from scratch (no external stats crates)
//! and is deliberately simple, allocation-conscious, and well-tested:
//! the numerical routines carry property tests for their invariants, and
//! the special functions are checked against high-precision reference
//! values.
//!
//! The crate is dependency-free and usable on its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod boxplot;
pub mod counter;
pub mod ecdf;
pub mod hist;
pub mod kendall;
pub mod pearson;
pub mod rank;
pub mod spearman;
pub mod special;
pub mod summary;

pub use bootstrap::{bootstrap_mean_ci, BootstrapCi};
pub use boxplot::BoxplotSummary;
pub use counter::FreqCounter;
pub use ecdf::Ecdf;
pub use hist::Histogram;
pub use kendall::kendall_tau;
pub use pearson::pearson;
pub use rank::average_ranks;
pub use spearman::{spearman, spearman_with_p, SpearmanResult};
pub use summary::RunningSummary;
