//! Rank assignment with tie handling ("average" / fractional ranks), the
//! preprocessing step for Spearman correlation.

/// Assigns 1-based average ranks to `data`, resolving ties by assigning
/// every member of a tie group the mean of the ranks the group spans
/// (the "fractional ranks" convention used by SciPy and R).
///
/// Non-finite values are not supported and will panic in debug builds;
/// the study's inputs are always finite counts and durations.
///
/// # Examples
///
/// ```
/// let ranks = vt_stats::average_ranks(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    debug_assert!(
        data.iter().all(|v| v.is_finite()),
        "average_ranks requires finite inputs"
    );
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    // Total order is fine: inputs are finite.
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite inputs"));

    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        // Find the extent of the tie group starting at sorted position i.
        let mut j = i + 1;
        while j < n && data[idx[j]] == data[idx[i]] {
            j += 1;
        }
        // Positions i..j (0-based) hold ranks i+1 ..= j (1-based).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

/// Counts tie groups and returns the tie-correction term
/// `Σ (tᵢ³ − tᵢ)` over tie groups of size `tᵢ`, used in the
/// tie-corrected Spearman formula.
pub fn tie_correction_term(data: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite inputs"));
    let mut term = 0.0;
    let n = sorted.len();
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && sorted[j] == sorted[i] {
            j += 1;
        }
        let t = (j - i) as f64;
        if t > 1.0 {
            term += t * t * t - t;
        }
        i = j;
    }
    term
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_ties_gives_permutation_ranks() {
        let ranks = average_ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(ranks, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_equal_gives_midrank() {
        let ranks = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(ranks, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(average_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn mixed_ties() {
        // values: 1 2 2 3 3 3 → ranks 1, 2.5, 2.5, 5, 5, 5
        let ranks = average_ranks(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn tie_term_counts_groups() {
        // one group of 2 → 2³−2 = 6; one group of 3 → 27−3 = 24
        let term = tie_correction_term(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
        assert_eq!(term, 30.0);
        assert_eq!(tie_correction_term(&[1.0, 2.0, 3.0]), 0.0);
    }

    proptest! {
        #[test]
        fn rank_sum_is_invariant(v in proptest::collection::vec(-1e6..1e6f64, 0..200)) {
            // Σ ranks = n(n+1)/2 regardless of ties.
            let n = v.len() as f64;
            let sum: f64 = average_ranks(&v).iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }

        #[test]
        fn ranks_preserve_order(v in proptest::collection::vec(-1e6..1e6f64, 2..100)) {
            let r = average_ranks(&v);
            for i in 0..v.len() {
                for j in 0..v.len() {
                    if v[i] < v[j] {
                        prop_assert!(r[i] < r[j]);
                    } else if v[i] == v[j] {
                        prop_assert!(r[i] == r[j]);
                    }
                }
            }
        }
    }
}
