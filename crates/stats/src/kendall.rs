//! Kendall's τ-b rank correlation.
//!
//! An alternative to Spearman for the engine-correlation analysis
//! (§7.2): τ-b handles the heavy ties of three-valued verdict columns
//! gracefully and is less sensitive to marginal distributions. The
//! `ablation` benches compare the two on the same engine pairs.
//!
//! This is the O(n log n) Knight algorithm: sort by x, count discordant
//! pairs via merge-sort inversion counting, with the standard tie
//! corrections.

/// Kendall's τ-b between two equal-length slices.
///
/// Returns `None` for inputs shorter than 2 or when either side is
/// constant (τ undefined).
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "kendall_tau requires equal-length inputs");
    let n = x.len();
    if n < 2 {
        return None;
    }
    // Sort indices by (x, y).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        x[a].partial_cmp(&x[b])
            .expect("finite")
            .then(y[a].partial_cmp(&y[b]).expect("finite"))
    });

    let nf = n as f64;
    let n0 = nf * (nf - 1.0) / 2.0;

    // Tie counts in x (n1), in y (n2), and joint ties (n3).
    let mut n1 = 0.0;
    let mut n3 = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && x[idx[j]] == x[idx[i]] {
                j += 1;
            }
            let t = (j - i) as f64;
            n1 += t * (t - 1.0) / 2.0;
            // Joint ties within the x-tie run.
            let mut k = i;
            while k < j {
                let mut m = k + 1;
                while m < j && y[idx[m]] == y[idx[k]] {
                    m += 1;
                }
                let u = (m - k) as f64;
                n3 += u * (u - 1.0) / 2.0;
                k = m;
            }
            i = j;
        }
    }
    let mut n2 = 0.0;
    {
        let mut ys: Vec<f64> = y.to_vec();
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && ys[j] == ys[i] {
                j += 1;
            }
            let t = (j - i) as f64;
            n2 += t * (t - 1.0) / 2.0;
            i = j;
        }
    }

    // Count discordant pairs: inversions of the y-sequence ordered by x.
    let y_ordered: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    let discordant = count_inversions(&y_ordered);

    let denom = ((n0 - n1) * (n0 - n2)).sqrt();
    if denom <= 0.0 {
        return None;
    }
    let concordant_minus_discordant = n0 - n1 - n2 + n3 - 2.0 * discordant as f64;
    Some((concordant_minus_discordant / denom).clamp(-1.0, 1.0))
}

/// Counts strict inversions (i < j, v[i] > v[j]) via merge sort.
fn count_inversions(v: &[f64]) -> u64 {
    fn merge_count(v: &mut [f64], buf: &mut [f64]) -> u64 {
        let n = v.len();
        if n <= 1 {
            return 0;
        }
        let mid = n / 2;
        let mut inv = {
            let (lo, hi) = v.split_at_mut(mid);
            merge_count(lo, buf) + merge_count(hi, buf)
        };
        // Merge.
        buf[..n].copy_from_slice(v);
        let (lo, hi) = buf[..n].split_at(mid);
        let (mut i, mut j) = (0, 0);
        for slot in v.iter_mut() {
            if i < lo.len() && (j >= hi.len() || lo[i] <= hi[j]) {
                *slot = lo[i];
                i += 1;
            } else {
                if i < lo.len() {
                    inv += (lo.len() - i) as u64;
                }
                *slot = hi[j];
                j += 1;
            }
        }
        inv
    }
    let mut work = v.to_vec();
    let mut buf = vec![0.0; v.len()];
    merge_count(&mut work, &mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(kendall_tau(&x, &x), Some(1.0));
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&x, &rev), Some(-1.0));
    }

    #[test]
    fn known_value_no_ties() {
        // x = 1..5, y = [2,1,4,3,5]: discordant pairs = 2 of 10 →
        // tau = (8 - 2)/10 = 0.6
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!((tau - 0.6).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn tie_handling_matches_reference() {
        // scipy.stats.kendalltau([1,2,2,3], [1,2,3,4]) → 0.9128709291752769
        let tau = kendall_tau(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((tau - 0.912_870_929_175_276_9).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), None);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn inversion_counter() {
        assert_eq!(count_inversions(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(count_inversions(&[3.0, 2.0, 1.0]), 3);
        assert_eq!(count_inversions(&[2.0, 1.0, 3.0]), 1);
        assert_eq!(count_inversions(&[]), 0);
    }

    /// Brute-force τ-b for the property test.
    fn tau_naive(x: &[f64], y: &[f64]) -> Option<f64> {
        let n = x.len();
        if n < 2 {
            return None;
        }
        let sgn = |a: f64, b: f64| -> f64 {
            if a > b {
                1.0
            } else if a < b {
                -1.0
            } else {
                0.0
            }
        };
        let (mut c, mut d, mut tx, mut ty) = (0f64, 0f64, 0f64, 0f64);
        for i in 0..n {
            for j in (i + 1)..n {
                let sx = sgn(x[i], x[j]);
                let sy = sgn(y[i], y[j]);
                if sx == 0.0 && sy == 0.0 {
                    // joint tie: counts toward both tie corrections
                    tx += 1.0;
                    ty += 1.0;
                } else if sx == 0.0 {
                    tx += 1.0;
                } else if sy == 0.0 {
                    ty += 1.0;
                } else if sx == sy {
                    c += 1.0;
                } else {
                    d += 1.0;
                }
            }
        }
        let n0 = n as f64 * (n as f64 - 1.0) / 2.0;
        let denom = ((n0 - tx) * (n0 - ty)).sqrt();
        (denom > 0.0).then(|| (c - d) / denom)
    }

    proptest! {
        #[test]
        fn matches_naive(
            data in proptest::collection::vec((0u8..6, 0u8..6), 2..60)
        ) {
            let x: Vec<f64> = data.iter().map(|&(a, _)| a as f64).collect();
            let y: Vec<f64> = data.iter().map(|&(_, b)| b as f64).collect();
            match (kendall_tau(&x, &y), tau_naive(&x, &y)) {
                (Some(fast), Some(naive)) => {
                    prop_assert!((fast - naive).abs() < 1e-9, "{} vs {}", fast, naive)
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a, b),
            }
        }

        #[test]
        fn bounded(data in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..80)) {
            let x: Vec<f64> = data.iter().map(|p| p.0).collect();
            let y: Vec<f64> = data.iter().map(|p| p.1).collect();
            if let Some(tau) = kendall_tau(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&tau));
            }
        }
    }
}
