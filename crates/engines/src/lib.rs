//! Behaviour models for the 70 antivirus engines of the study.
//!
//! The paper (§5.5, Obs. 7) identifies three mechanisms behind label
//! changes — **engine latency** (signatures arrive some time after a
//! sample starts circulating), **engine update** (labels change when the
//! engine ships a model update; ~60% of observed flips coincide with
//! one), and **engine activity** (engines time out or are absent from a
//! scan). §7 adds two structural facts: per-engine flip behaviour varies
//! wildly across file types (Fig. 10), and groups of engines copy labels
//! from each other (Figs. 11–12, Tables 4–8; also Sebastián et al.).
//!
//! This crate encodes exactly those mechanisms:
//!
//! * [`registry`] — the roster: 70 engine names (the names appearing in
//!   the paper's figures) with per-engine behaviour profiles.
//! * [`groups`] — label-copying rules (follower → leader), global or
//!   scoped to one file type, seeded from the paper's reported groups.
//! * [`update`] — per-engine model-update schedules.
//! * [`typemods`] — per-file-type behaviour modifiers (latency scale,
//!   FP and timeout multipliers).
//! * [`behavior`] — [`behavior::EngineFleet`], the deterministic verdict
//!   function: given (engine, sample, time), produce a
//!   [`vt_model::Verdict`]. Every random decision is a pure function of
//!   `(fleet seed, sample hash, engine, purpose)`, so scans are
//!   reproducible and cachable.
//!
//! ## The at-most-one-transition invariant
//!
//! Each (engine, sample) pair follows one of four lifetime plans:
//! *never flags*, *flags from the sample's origin forever*, *flags from
//! origin until a retraction time*, or *flags from an acquisition time
//! forever*. Retraction is only possible for pairs that flagged from
//! origin, so a pair's label sequence over any sequence of scans is
//! `0…0 1…1`, `1…1 0…0`, or constant — never `0→1→0` or `1→0→1`. This is
//! the mechanism behind the paper's startling observation that "hazard
//! flips" are all but absent in real feed data (9 in 109 M reports);
//! a tiny per-scan glitch probability reproduces the residual handful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod groups;
pub mod registry;
pub mod typemods;
pub mod update;

pub use behavior::{
    EngineFleet, FleetConfig, FleetConfigBuilder, FleetConfigError, PairPlan, SamplePlan,
};
pub use groups::{CopyRule, Scope};
pub use registry::{EngineProfile, ENGINE_COUNT};
pub use update::UpdateSchedule;
