//! Label-copying rules between engines.
//!
//! §7.2 confirms that groups of engines produce strongly correlated
//! labels (ρ > 0.8), globally and per file type. Sebastián et al. \[23\]
//! attribute this to vendors copying labels (OEM'd engines, shared
//! intelligence feeds). We model it directly: a *follower* engine reuses
//! its *leader's* per-sample behavioural draws with high probability, so
//! the two columns of the scan matrix agree except for independent
//! timeouts and the occasional independent decision.
//!
//! The rule list below is seeded from the paper's reported groups
//! (Fig. 11 globally, Tables 4–8 per type, Appendix 2), including the
//! scoped quirks the paper highlights: *Cyren–Fortinet* correlate only
//! on Win32 EXE, *Avira–Cynet* correlate globally **except** on
//! Win32 EXE, and *Lionic–VirIT* only on GZIP.

use crate::registry::engine_index;
use vt_model::FileType;

/// Where a copy rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Applies to every file type.
    Global,
    /// Applies only to the given type.
    Only(FileType),
    /// Applies to every type except the given one.
    Except(FileType),
}

impl Scope {
    /// Whether the scope covers `ft`.
    pub fn covers(self, ft: FileType) -> bool {
        match self {
            Scope::Global => true,
            Scope::Only(t) => ft == t,
            Scope::Except(t) => ft != t,
        }
    }
}

/// One copying relationship: `follower` reuses `leader`'s behavioural
/// draws with probability `prob` for samples within `scope`.
#[derive(Debug, Clone, Copy)]
pub struct CopyRule {
    /// Roster index of the copying engine.
    pub follower: usize,
    /// Roster index of the engine being copied.
    pub leader: usize,
    /// File types the rule covers.
    pub scope: Scope,
    /// Per-sample copy probability.
    pub prob: f64,
}

/// Builds the copy-rule list. Order matters: for a given follower and
/// file type, the **first** matching rule wins.
pub fn build_copy_rules() -> Vec<CopyRule> {
    use FileType::*;
    let r = |follower: &str, leader: &str, scope: Scope, prob: f64| CopyRule {
        follower: engine_index(follower),
        leader: engine_index(leader),
        scope,
        prob,
    };
    vec![
        // ---- Global pairs (Fig. 11) -------------------------------
        // Paloalto–APEX is the paper's strongest pair (ρ = 0.9933).
        r("APEX", "Paloalto", Scope::Except(Html), 0.995),
        // Avast–AVG (ρ = 0.9814).
        r("AVG", "Avast", Scope::Global, 0.985),
        // Webroot–CrowdStrike (ρ = 0.9754).
        r("Webroot", "CrowdStrike", Scope::Global, 0.978),
        // Babable–F-Prot (ρ = 0.9698).
        r("Babable", "F-Prot", Scope::Global, 0.972),
        // The BitDefender OEM cluster (Table 4 group 3): eScan, GData,
        // FireEye, MAX, ALYac, Ad-Aware, Emsisoft.
        r("MicroWorld-eScan", "BitDefender", Scope::Global, 0.965),
        r("GData", "BitDefender", Scope::Global, 0.960),
        r("FireEye", "BitDefender", Scope::Global, 0.955),
        r("MAX", "BitDefender", Scope::Global, 0.945),
        r("ALYac", "BitDefender", Scope::Global, 0.935),
        r("Ad-Aware", "BitDefender", Scope::Global, 0.935),
        r("Emsisoft", "BitDefender", Scope::Global, 0.925),
        // K7 family.
        r("K7GW", "K7AntiVirus", Scope::Global, 0.955),
        // TrendMicro family (Table 4 group 5).
        r("TrendMicro-HouseCall", "TrendMicro", Scope::Global, 0.935),
        // Avira–Cynet: strong globally (0.9751) but NOT on Win32 EXE
        // (Appendix 2 calls this out explicitly — moderate there, so the
        // pair stays below the 0.8 strong bar on EXE without dragging
        // the global coefficient down).
        r("Cynet", "Avira", Scope::Only(Win32Exe), 0.62),
        r("Cynet", "Avira", Scope::Except(Win32Exe), 0.978),
        // McAfee family: moderate globally, strong on DEX (Table: 0.8301).
        r("McAfee-GW-Edition", "McAfee", Scope::Only(Dex), 0.92),
        r("McAfee-GW-Edition", "McAfee", Scope::Global, 0.80),
        // ---- Per-type quirks --------------------------------------
        // Cyren–Fortinet only on Win32 EXE (Appendix 2 / Table 4 group 6).
        r("Cyren", "Fortinet", Scope::Only(Win32Exe), 0.91),
        // ESET joins the K7 group on Win32 EXE (Table 4 group 4).
        r("ESET-NOD32", "K7AntiVirus", Scope::Only(Win32Exe), 0.86),
        // Lionic–VirIT only on GZIP (ρ = 0.8896, §7.2.2).
        r("VirIT", "Lionic", Scope::Only(Gzip), 0.90),
        // Alibaba–Webroot on TXT (Table 5 group 6).
        r("Alibaba", "Webroot", Scope::Only(Txt), 0.87),
        // AVG–Avast-Mobile on DEX (Table: 0.9567): Avast-Mobile copies
        // Avast on Android samples, putting it in the Avast family there.
        r("Avast-Mobile", "Avast", Scope::Only(Dex), 0.96),
        // The HTML mega-cluster (Table 6 group 5): AhnLab-V3, Cynet,
        // Rising, Cyren, Avira, CAT-QuickHeal, ESET-NOD32,
        // NANO-Antivirus all converge on HTML.
        r("AhnLab-V3", "ESET-NOD32", Scope::Only(Html), 0.87),
        r("Rising", "ESET-NOD32", Scope::Only(Html), 0.86),
        r("CAT-QuickHeal", "ESET-NOD32", Scope::Only(Html), 0.85),
        r("NANO-Antivirus", "ESET-NOD32", Scope::Only(Html), 0.86),
        r("Cyren", "ESET-NOD32", Scope::Only(Html), 0.88),
        r("Avira", "ESET-NOD32", Scope::Only(Html), 0.84),
        // APEX–Webroot on HTML (Table 6 group 9) — APEX leaves the
        // Paloalto pair for HTML (hence the Except(Html) above).
        r("APEX", "Webroot", Scope::Only(Html), 0.85),
    ]
}

/// Resolves the effective rule for `(follower, file type)`: the first
/// matching rule, if any.
pub fn rule_for(rules: &[CopyRule], follower: usize, ft: FileType) -> Option<&CopyRule> {
    rules
        .iter()
        .find(|r| r.follower == follower && r.scope.covers(ft))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::engine_index;
    use vt_model::FileType;

    #[test]
    fn scope_covers() {
        assert!(Scope::Global.covers(FileType::Pdf));
        assert!(Scope::Only(FileType::Pdf).covers(FileType::Pdf));
        assert!(!Scope::Only(FileType::Pdf).covers(FileType::Zip));
        assert!(Scope::Except(FileType::Pdf).covers(FileType::Zip));
        assert!(!Scope::Except(FileType::Pdf).covers(FileType::Pdf));
    }

    #[test]
    fn rules_reference_valid_engines() {
        let rules = build_copy_rules();
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(r.follower < crate::ENGINE_COUNT);
            assert!(r.leader < crate::ENGINE_COUNT);
            assert_ne!(r.follower, r.leader, "self-copy rule");
            assert!((0.0..=1.0).contains(&r.prob));
        }
    }

    #[test]
    fn first_match_wins() {
        let rules = build_copy_rules();
        // APEX on HTML copies Webroot; elsewhere Paloalto.
        let apex = engine_index("APEX");
        let on_html = rule_for(&rules, apex, FileType::Html).unwrap();
        assert_eq!(on_html.leader, engine_index("Webroot"));
        let on_exe = rule_for(&rules, apex, FileType::Win32Exe).unwrap();
        assert_eq!(on_exe.leader, engine_index("Paloalto"));
    }

    #[test]
    fn avira_cynet_weak_on_win32exe() {
        let rules = build_copy_rules();
        let cynet = engine_index("Cynet");
        // On Win32 EXE the copy probability is moderate (stays below the
        // strong-correlation bar); elsewhere it is near-certain.
        let on_exe = rule_for(&rules, cynet, FileType::Win32Exe).unwrap();
        assert_eq!(on_exe.leader, engine_index("Avira"));
        assert!(on_exe.prob < 0.7);
        let on_pdf = rule_for(&rules, cynet, FileType::Pdf).unwrap();
        assert_eq!(on_pdf.leader, engine_index("Avira"));
        assert!(on_pdf.prob > 0.95);
    }

    #[test]
    fn cyren_fortinet_only_win32exe() {
        let rules = build_copy_rules();
        let cyren = engine_index("Cyren");
        let on_exe = rule_for(&rules, cyren, FileType::Win32Exe).unwrap();
        assert_eq!(on_exe.leader, engine_index("Fortinet"));
        // On HTML, Cyren follows the HTML cluster instead.
        let on_html = rule_for(&rules, cyren, FileType::Html).unwrap();
        assert_eq!(on_html.leader, engine_index("ESET-NOD32"));
        // On PDF, no rule.
        assert!(rule_for(&rules, cyren, FileType::Pdf).is_none());
    }

    #[test]
    fn no_copy_cycles() {
        // Following leader links (for any single file type) must
        // terminate: walk every (follower, type) chain with a step bound.
        let rules = build_copy_rules();
        for ft in FileType::TOP20 {
            for start in 0..crate::ENGINE_COUNT {
                let mut cur = start;
                let mut steps = 0;
                while let Some(r) = rule_for(&rules, cur, ft) {
                    cur = r.leader;
                    steps += 1;
                    assert!(steps < 10, "copy cycle at engine {start} for {ft}");
                }
            }
        }
    }
}
