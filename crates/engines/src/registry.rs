//! The engine roster: 70 engines with behaviour profiles.
//!
//! Names are the real vendor names appearing in the paper's figures and
//! tables; the behaviour parameters are synthetic (derived procedurally
//! with deterministic per-engine jitter, then adjusted by explicit
//! overrides for the engines whose behaviour the paper calls out — e.g.
//! flip-prone Arcabit / F-Secure / Lionic and stable Jiangmin /
//! AhnLab-V3, §7.1). Nothing here implies anything about the real
//! products.

use vt_model::hash::{mix64, unit_f64};

/// Number of engines on the roster. The paper's platform runs "over 70"
/// engines; we fix exactly 70.
pub const ENGINE_COUNT: usize = 70;

/// The engine names, in roster order. Indices are stable across
/// versions: analyses and tests may reference engines by name via
/// [`engine_index`].
pub const ENGINE_NAMES: [&str; ENGINE_COUNT] = [
    "Avast",
    "AVG",
    "BitDefender",
    "MicroWorld-eScan",
    "GData",
    "FireEye",
    "MAX",
    "ALYac",
    "Ad-Aware",
    "Emsisoft",
    "K7AntiVirus",
    "K7GW",
    "ESET-NOD32",
    "TrendMicro",
    "TrendMicro-HouseCall",
    "Cyren",
    "Fortinet",
    "F-Prot",
    "Babable",
    "Paloalto",
    "APEX",
    "CrowdStrike",
    "Webroot",
    "Avira",
    "Cynet",
    "McAfee",
    "McAfee-GW-Edition",
    "Arcabit",
    "F-Secure",
    "Lionic",
    "Jiangmin",
    "AhnLab-V3",
    "Microsoft",
    "Alibaba",
    "Rising",
    "CAT-QuickHeal",
    "NANO-Antivirus",
    "VirIT",
    "Avast-Mobile",
    "Kaspersky",
    "Symantec",
    "Sophos",
    "ClamAV",
    "Malwarebytes",
    "ZoneAlarm",
    "Panda",
    "Comodo",
    "DrWeb",
    "VBA32",
    "Tencent",
    "Baidu",
    "Zillya",
    "SUPERAntiSpyware",
    "TotalDefense",
    "Yandex",
    "Ikarus",
    "Bkav",
    "MaxSecure",
    "Cylance",
    "SentinelOne",
    "Elastic",
    "Acronis",
    "TACHYON",
    "Gridinsoft",
    "ViRobot",
    "Antiy-AVL",
    "Trapmine",
    "eGambit",
    "Sangfor",
    "Zoner",
];

/// Behaviour profile of one engine. Probabilities are per the unit they
/// describe (per sample, per scan, or per day); durations are in days.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineProfile {
    /// Roster name.
    pub name: &'static str,
    /// Eventual-detection capability multiplier: the probability that
    /// this engine ever flags a malicious sample is
    /// `min(1, detectability × capability)`. Fleet mean ≈ 1.0 so a
    /// sample's asymptotic AV-Rank ≈ 70 × detectability.
    pub capability: f64,
    /// Median signature latency from sample origin, in days.
    pub latency_median_days: f64,
    /// Lognormal σ of the signature latency.
    pub latency_sigma: f64,
    /// Probability that, given the engine will detect, its signature is
    /// live at the sample's origin (generic/heuristic detection).
    pub instant_prob: f64,
    /// False-positive probability per benign sample.
    pub fp_rate: f64,
    /// Probability that an origin-flagging detection of a *malicious*
    /// sample is later retracted (signature pruning / whitelisting).
    pub retract_prob: f64,
    /// Probability a false positive on a benign sample is retracted.
    pub fp_retract_prob: f64,
    /// Per-scan probability of producing no result (timeout etc.).
    pub timeout_rate: f64,
    /// Per-day probability of a whole-day outage (engine absent from
    /// every scan that day).
    pub outage_rate: f64,
    /// Model-update cadence, days between updates.
    pub update_period_days: f64,
    /// Probability that a signature acquisition only takes effect at the
    /// engine's next model update (vs. a cloud-side change effective
    /// immediately). Drives the "~60% of flips coincide with an update"
    /// observation.
    pub update_quant_prob: f64,
}

/// Builds the full roster. Profiles are procedurally jittered from the
/// engine index (stable across runs and seeds — the roster is a fixed
/// fact of the platform, like reality), then the overrides below adjust
/// the engines whose behaviour the paper singles out.
pub fn build_roster() -> Vec<EngineProfile> {
    let mut roster: Vec<EngineProfile> = ENGINE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| default_profile(i, name))
        .collect();
    apply_overrides(&mut roster);
    roster
}

/// Index of an engine by roster name.
///
/// # Panics
/// Panics if the name is not on the roster (test/analysis convenience).
pub fn engine_index(name: &str) -> usize {
    ENGINE_NAMES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown engine {name}"))
}

fn jitter(i: usize, tag: u64, lo: f64, hi: f64) -> f64 {
    let u = unit_f64(mix64(&[0x0e0e_0e0e, i as u64, tag]));
    lo + u * (hi - lo)
}

fn default_profile(i: usize, name: &'static str) -> EngineProfile {
    EngineProfile {
        name,
        capability: jitter(i, 1, 0.62, 1.32),
        latency_median_days: jitter(i, 2, 0.3, 2.5),
        latency_sigma: jitter(i, 3, 0.55, 0.85),
        instant_prob: jitter(i, 4, 0.55, 0.78),
        fp_rate: jitter(i, 5, 0.0003, 0.0022),
        retract_prob: jitter(i, 6, 0.018, 0.042),
        fp_retract_prob: jitter(i, 7, 0.85, 0.97),
        timeout_rate: jitter(i, 8, 0.025, 0.065),
        outage_rate: jitter(i, 9, 0.001, 0.008),
        update_period_days: jitter(i, 10, 10.0, 45.0),
        update_quant_prob: jitter(i, 11, 0.50, 0.70),
    }
}

/// Hand-tuned overrides for engines the paper characterizes explicitly.
fn apply_overrides(roster: &mut [EngineProfile]) {
    let mut set = |name: &str, f: &mut dyn FnMut(&mut EngineProfile)| {
        f(&mut roster[engine_index(name)]);
    };

    // Flip-prone engines (§7.1.2: "some engines (e.g., Arcabit,
    // F-Secure, Lionic) were more prone to flipping").
    set("Arcabit", &mut |p| {
        p.latency_median_days = 5.0;
        p.latency_sigma = 1.2;
        p.instant_prob = 0.25;
        p.retract_prob = 0.06;
        p.timeout_rate = 0.06;
    });
    set("F-Secure", &mut |p| {
        p.latency_median_days = 4.0;
        p.instant_prob = 0.28;
        p.retract_prob = 0.05;
        p.timeout_rate = 0.05;
    });
    set("Lionic", &mut |p| {
        p.latency_median_days = 4.5;
        p.instant_prob = 0.27;
        p.retract_prob = 0.05;
        p.fp_rate = 0.005;
        p.timeout_rate = 0.05;
    });
    // "even some well-known and reputable engines like F-Secure and
    // Microsoft showed a significant number of flips".
    set("Microsoft", &mut |p| {
        p.capability = 1.30;
        p.latency_median_days = 2.0;
        p.retract_prob = 0.045;
        p.update_period_days = 10.0;
    });

    // Stable engines (§7.1.2: "some (e.g., Jiangmin, AhnLab) exhibited
    // more stable performance"): detect fast-or-never, rarely retract,
    // rarely time out.
    set("Jiangmin", &mut |p| {
        p.instant_prob = 0.85;
        p.latency_median_days = 0.4;
        p.retract_prob = 0.008;
        p.timeout_rate = 0.004;
        p.fp_rate = 0.0006;
        p.capability = 0.70;
    });
    set("AhnLab-V3", &mut |p| {
        p.instant_prob = 0.80;
        p.latency_median_days = 0.5;
        p.retract_prob = 0.01;
        p.timeout_rate = 0.004;
        p.capability = 0.80;
    });

    // Big-name engines: strong, fast.
    for name in [
        "Kaspersky",
        "ESET-NOD32",
        "BitDefender",
        "Avast",
        "Symantec",
    ] {
        set(name, &mut |p| {
            p.capability = p.capability.max(1.15);
            p.latency_median_days = p.latency_median_days.min(1.5);
            p.instant_prob = p.instant_prob.max(0.45);
        });
    }

    // Next-gen/ML engines flag aggressively at origin (models, not
    // signatures) and rarely change afterwards.
    for name in [
        "Paloalto",
        "APEX",
        "CrowdStrike",
        "Webroot",
        "Cylance",
        "SentinelOne",
        "Elastic",
    ] {
        set(name, &mut |p| {
            p.instant_prob = 0.90;
            p.latency_median_days = 0.3;
            p.capability = p.capability.clamp(0.85, 1.1);
            p.fp_rate = 0.004; // ML engines run hotter on FPs
            p.update_quant_prob = 0.3;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_70_unique_names() {
        let roster = build_roster();
        assert_eq!(roster.len(), ENGINE_COUNT);
        let mut names: Vec<&str> = roster.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ENGINE_COUNT, "duplicate engine name");
    }

    #[test]
    fn roster_is_deterministic() {
        assert_eq!(build_roster(), build_roster());
    }

    #[test]
    fn profiles_are_sane() {
        for p in build_roster() {
            assert!(p.capability > 0.0 && p.capability < 2.0, "{}", p.name);
            assert!(p.latency_median_days > 0.0 && p.latency_median_days < 60.0);
            assert!((0.0..=1.0).contains(&p.instant_prob));
            assert!((0.0..0.05).contains(&p.fp_rate));
            assert!((0.0..0.5).contains(&p.retract_prob));
            assert!((0.0..=1.0).contains(&p.fp_retract_prob));
            assert!((0.0..0.1).contains(&p.timeout_rate));
            assert!((0.0..0.1).contains(&p.outage_rate));
            assert!(p.update_period_days > 0.1);
            assert!((0.0..=1.0).contains(&p.update_quant_prob));
        }
    }

    #[test]
    fn fleet_capability_mean_near_one() {
        let roster = build_roster();
        let mean: f64 = roster.iter().map(|p| p.capability).sum::<f64>() / roster.len() as f64;
        assert!((0.85..1.15).contains(&mean), "fleet capability mean {mean}");
    }

    #[test]
    fn named_engines_resolve() {
        for name in ["Avast", "AVG", "Paloalto", "APEX", "Jiangmin", "Zoner"] {
            let idx = engine_index(name);
            assert_eq!(ENGINE_NAMES[idx], name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn unknown_engine_panics() {
        engine_index("NotAnEngine");
    }

    #[test]
    fn paper_engines_have_paper_traits() {
        let roster = build_roster();
        let by = |n: &str| roster[engine_index(n)];
        // Flip-prone engines acquire late and retract often relative to
        // stable ones.
        assert!(by("Arcabit").latency_median_days > by("Jiangmin").latency_median_days);
        assert!(by("F-Secure").retract_prob > by("AhnLab-V3").retract_prob);
        assert!(by("Lionic").retract_prob > by("Jiangmin").retract_prob);
        // ML engines flag at origin.
        assert!(by("Paloalto").instant_prob >= 0.9);
    }
}
