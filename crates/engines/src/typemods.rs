//! Per-file-type behaviour modifiers.
//!
//! Fig. 6 and Fig. 10 show that label dynamics differ sharply by file
//! type: PE binaries move the most (Win32 EXE has the largest overall
//! AV-Rank swing, Win32 DLL the largest adjacent-scan difference), while
//! EPUB / FPX / JPEG / ELF shared library / GZIP / PHP barely move, and
//! container/text types (ZIP, JSON, TXT) creep slowly (small adjacent
//! differences, large overall drift). These modifiers scale the engine
//! profiles per type to produce those regimes:
//!
//! * `latency_scale` — stretches signature latency: longer ramps ⇒ more
//!   within-window acquisitions ⇒ higher dynamics.
//! * `timeout_mult` — scales per-scan engine timeouts: analysis-heavy
//!   formats (DLL/EXE) time out more, adding adjacent-scan jitter.
//! * `fp_mult` — scales false-positive rates (script/text formats draw
//!   more FPs than images).
//! * `retract_mult` — scales detection-retraction probability.

use vt_model::FileType;

/// Behaviour modifiers for one file type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeMods {
    /// Multiplier on engine signature-latency medians.
    pub latency_scale: f64,
    /// Multiplier on engine per-scan timeout rates.
    pub timeout_mult: f64,
    /// Multiplier on engine false-positive rates.
    pub fp_mult: f64,
    /// Multiplier on engine retraction probabilities.
    pub retract_mult: f64,
}

impl TypeMods {
    const DEFAULT: TypeMods = TypeMods {
        latency_scale: 1.0,
        timeout_mult: 1.0,
        fp_mult: 1.0,
        retract_mult: 1.0,
    };
}

/// The modifiers for a file type.
pub fn type_mods(ft: FileType) -> TypeMods {
    use FileType::*;
    match ft {
        // PE binaries: heavy analysis (timeouts), fast-moving detections
        // with moderate ramps. DLLs time out the most (Fig. 6a: highest
        // adjacent-scan δ).
        Win32Exe => TypeMods {
            latency_scale: 2.2,
            timeout_mult: 1.25,
            fp_mult: 1.2,
            retract_mult: 1.2,
        },
        Win32Dll => TypeMods {
            latency_scale: 1.8,
            timeout_mult: 3.2,
            fp_mult: 1.2,
            retract_mult: 1.6,
        },
        Win64Exe => TypeMods {
            latency_scale: 2.0,
            timeout_mult: 1.15,
            fp_mult: 1.1,
            retract_mult: 1.2,
        },
        Win64Dll => TypeMods {
            latency_scale: 1.8,
            timeout_mult: 1.8,
            fp_mult: 1.1,
            retract_mult: 1.4,
        },
        // Slow-creep types: small per-step movement but long ramps
        // (signatures for text/script content lag).
        Txt => TypeMods {
            latency_scale: 6.0,
            timeout_mult: 0.55,
            fp_mult: 2.6,
            retract_mult: 1.0,
        },
        Html => TypeMods {
            latency_scale: 4.5,
            timeout_mult: 0.7,
            fp_mult: 2.6,
            retract_mult: 1.0,
        },
        Zip => TypeMods {
            latency_scale: 6.0,
            timeout_mult: 0.8,
            fp_mult: 1.9,
            retract_mult: 0.9,
        },
        Json => TypeMods {
            latency_scale: 8.0,
            timeout_mult: 0.06,
            fp_mult: 0.7,
            retract_mult: 0.8,
        },
        Xml => TypeMods {
            latency_scale: 5.0,
            timeout_mult: 0.5,
            fp_mult: 2.0,
            retract_mult: 0.9,
        },
        Pdf => TypeMods {
            latency_scale: 3.0,
            timeout_mult: 0.9,
            fp_mult: 1.9,
            retract_mult: 1.0,
        },
        Docx => TypeMods {
            latency_scale: 1.8,
            timeout_mult: 0.8,
            fp_mult: 1.0,
            retract_mult: 1.0,
        },
        Dex => TypeMods {
            latency_scale: 1.4,
            timeout_mult: 0.7,
            fp_mult: 0.8,
            retract_mult: 0.9,
        },
        ElfExecutable => TypeMods {
            latency_scale: 1.6,
            timeout_mult: 1.0,
            fp_mult: 0.9,
            retract_mult: 1.1,
        },
        Lnk => TypeMods {
            latency_scale: 1.5,
            timeout_mult: 0.6,
            fp_mult: 1.0,
            retract_mult: 1.0,
        },
        // Quiet types (Fig. 6: "both δ and Δ maintain low dynamics in
        // EPUB, FPX, JPEG, ELF shared library, GZIP, PHP"): fast
        // (or never) detection, few timeouts, few FP adventures.
        ElfSharedLib => TypeMods {
            latency_scale: 0.6,
            timeout_mult: 0.3,
            fp_mult: 0.5,
            retract_mult: 0.5,
        },
        Epub => TypeMods {
            latency_scale: 0.5,
            timeout_mult: 0.25,
            fp_mult: 0.4,
            retract_mult: 0.4,
        },
        Fpx => TypeMods {
            latency_scale: 0.5,
            timeout_mult: 0.25,
            fp_mult: 0.3,
            retract_mult: 0.4,
        },
        Php => TypeMods {
            latency_scale: 0.7,
            timeout_mult: 0.3,
            fp_mult: 0.8,
            retract_mult: 0.5,
        },
        Gzip => TypeMods {
            latency_scale: 0.6,
            timeout_mult: 0.35,
            fp_mult: 0.5,
            retract_mult: 0.5,
        },
        Jpeg => TypeMods {
            latency_scale: 0.45,
            timeout_mult: 0.2,
            fp_mult: 0.3,
            retract_mult: 0.3,
        },
        Null => TypeMods {
            latency_scale: 1.2,
            timeout_mult: 0.8,
            fp_mult: 0.9,
            retract_mult: 0.9,
        },
        Other(_) => TypeMods::DEFAULT,
    }
}

/// Per-(engine, type) latency overrides for the flip hot spots the paper
/// names — e.g. Arcabit's 25.78% flip ratio on ELF executables vs 0.05%
/// on DEX (Fig. 10). Returns a latency multiplier (≥1 makes the engine's
/// detections for that type land late, inside observation windows, which
/// is what produces flips).
pub fn engine_type_latency_mult(engine_name: &str, ft: FileType) -> f64 {
    use FileType::*;
    match (engine_name, ft) {
        ("Arcabit", ElfExecutable) => 3.0,
        ("Arcabit", Dex) => 0.05, // near-instant ⇒ almost never flips
        ("F-Secure", Win32Exe) => 3.0,
        ("F-Secure", Html) => 3.0,
        ("Lionic", Txt) => 4.0,
        ("Lionic", Gzip) => 3.0,
        ("Microsoft", Win32Exe) => 2.0,
        ("Microsoft", Win32Dll) => 2.5,
        ("Jiangmin", _) => 0.3,
        ("AhnLab-V3", _) => 0.4,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::filetype::TOTAL_TYPE_COUNT;

    #[test]
    fn all_types_have_sane_mods() {
        for idx in 0..TOTAL_TYPE_COUNT {
            let ft = FileType::from_dense_index(idx);
            let m = type_mods(ft);
            assert!(m.latency_scale > 0.0 && m.latency_scale < 20.0, "{ft}");
            assert!(m.timeout_mult >= 0.0 && m.timeout_mult < 20.0);
            assert!(m.fp_mult >= 0.0 && m.fp_mult < 20.0);
            assert!(m.retract_mult >= 0.0 && m.retract_mult < 20.0);
        }
    }

    #[test]
    fn dll_times_out_most() {
        // Fig. 6a: Win32 DLL has the highest adjacent-scan difference;
        // its timeout multiplier dominates the named types.
        let dll = type_mods(FileType::Win32Dll).timeout_mult;
        for ft in FileType::TOP20 {
            if ft != FileType::Win32Dll {
                assert!(type_mods(ft).timeout_mult < dll, "{ft}");
            }
        }
    }

    #[test]
    fn quiet_types_are_quiet() {
        // The six quiet types have below-default latency and timeout.
        use FileType::*;
        for ft in [Epub, Fpx, Jpeg, ElfSharedLib, Gzip, Php] {
            let m = type_mods(ft);
            assert!(m.latency_scale < 1.0, "{ft}");
            assert!(m.timeout_mult < 1.0, "{ft}");
        }
    }

    #[test]
    fn arcabit_elf_hotspot() {
        assert!(engine_type_latency_mult("Arcabit", FileType::ElfExecutable) > 2.0);
        assert!(engine_type_latency_mult("Arcabit", FileType::Dex) < 0.2);
        assert_eq!(engine_type_latency_mult("Zoner", FileType::Pdf), 1.0);
    }
}
