//! Per-engine model-update schedules.
//!
//! §5.5 attributes ~60% of label flips to engine updates: a signature
//! exists server-side but only takes effect when the engine ships its
//! next model/database update. We give every engine a periodic update
//! grid (period from its profile, phase derived from the engine index)
//! and expose the two queries the rest of the system needs:
//!
//! * *when is the next update at or after `t`* — used by the verdict
//!   function to quantize signature-acquisition times, and
//! * *did an update land in `(t₁, t₂]`* — used by the §5.5 cause
//!   attribution to check whether a flip coincides with an update.

use vt_model::hash::mix64;
use vt_model::time::{Duration, Timestamp, MINUTES_PER_DAY};

/// A periodic update grid for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateSchedule {
    period_minutes: i64,
    phase_minutes: i64,
}

impl UpdateSchedule {
    /// Builds the schedule for engine `engine_idx` with the given period
    /// (from its profile). Phase is a deterministic function of the
    /// engine index so schedules are stable across runs.
    pub fn new(engine_idx: usize, period_days: f64) -> Self {
        let period_minutes = ((period_days * MINUTES_PER_DAY as f64).round() as i64).max(30);
        let phase_minutes =
            (mix64(&[0x5c4e_d01e, engine_idx as u64]) % period_minutes as u64) as i64;
        Self {
            period_minutes,
            phase_minutes,
        }
    }

    /// Update period in minutes.
    pub fn period(&self) -> Duration {
        Duration::minutes(self.period_minutes)
    }

    /// The first update time at or after `t`.
    pub fn next_update_at_or_after(&self, t: Timestamp) -> Timestamp {
        let k = (t.0 - self.phase_minutes).div_euclid(self.period_minutes);
        let candidate = self.phase_minutes + k * self.period_minutes;
        if candidate >= t.0 {
            Timestamp(candidate)
        } else {
            Timestamp(candidate + self.period_minutes)
        }
    }

    /// Whether at least one update lands in the half-open interval
    /// `(t1, t2]`.
    pub fn updated_in(&self, t1: Timestamp, t2: Timestamp) -> bool {
        if t2 <= t1 {
            return false;
        }
        let f = |t: i64| (t - self.phase_minutes).div_euclid(self.period_minutes);
        f(t2.0) > f(t1.0)
    }

    /// Number of updates in `(t1, t2]`.
    pub fn updates_in(&self, t1: Timestamp, t2: Timestamp) -> i64 {
        if t2 <= t1 {
            return 0;
        }
        let f = |t: i64| (t - self.phase_minutes).div_euclid(self.period_minutes);
        f(t2.0) - f(t1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn next_update_is_on_grid_and_at_or_after() {
        let s = UpdateSchedule::new(3, 1.0);
        for t in [0i64, 1, 500, 1439, 1440, 99_999] {
            let u = s.next_update_at_or_after(Timestamp(t));
            assert!(u.0 >= t);
            assert_eq!((u.0 - s.phase_minutes).rem_euclid(s.period_minutes), 0);
            assert!(u.0 - t < s.period_minutes);
        }
    }

    #[test]
    fn updated_in_detects_grid_points() {
        let s = UpdateSchedule::new(0, 2.0);
        let u = s.next_update_at_or_after(Timestamp(10_000));
        // Interval straddling the update.
        assert!(s.updated_in(u - Duration::minutes(5), u));
        assert!(s.updated_in(u - Duration::minutes(5), u + Duration::minutes(5)));
        // Interval strictly between updates.
        assert!(!s.updated_in(u, u + Duration::minutes(5)));
        // Degenerate/reversed intervals.
        assert!(!s.updated_in(u, u));
        assert!(!s.updated_in(u, u - Duration::minutes(1)));
    }

    #[test]
    fn schedule_is_deterministic_per_engine() {
        assert_eq!(UpdateSchedule::new(7, 1.5), UpdateSchedule::new(7, 1.5));
        assert_ne!(
            UpdateSchedule::new(7, 1.5).phase_minutes,
            UpdateSchedule::new(8, 1.5).phase_minutes
        );
    }

    proptest! {
        #[test]
        fn updates_in_counts_consistently(
            engine in 0usize..70,
            period in 0.3f64..7.0,
            a in 0i64..1_000_000,
            len in 0i64..500_000,
        ) {
            let s = UpdateSchedule::new(engine, period);
            let t1 = Timestamp(a);
            let t2 = Timestamp(a + len);
            let n = s.updates_in(t1, t2);
            prop_assert!(n >= 0);
            prop_assert_eq!(n > 0, s.updated_in(t1, t2));
            // Count roughly matches interval / period (within 1).
            let expect = len as f64 / s.period().as_minutes() as f64;
            prop_assert!((n as f64 - expect).abs() <= 1.0);
        }
    }
}
