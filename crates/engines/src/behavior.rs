//! The deterministic verdict function.
//!
//! [`EngineFleet`] answers the question at the heart of the simulator:
//! *what does engine `e` say about sample `s` at time `t`?* The answer
//! is a pure function of `(fleet seed, sample, engine, t)` — every
//! "random" decision is derived by hashing, never by mutable RNG state —
//! so scans are reproducible, order-independent, and cachable.
//!
//! ## Pair plans
//!
//! For each (engine, sample) pair the fleet resolves a [`PairPlan`]:
//!
//! 1. **Copy resolution** — if a [`crate::groups::CopyRule`] covers the
//!    pair's file type and the per-sample copy draw fires, the follower
//!    adopts its leader's plan (recursively), modelling label copying.
//! 2. **Malicious samples** — the pair *eventually detects* with
//!    probability `min(1, detectability × capability)`. If it detects:
//!    with probability `instant_prob` the signature was live at the
//!    sample's origin (plan: flag from origin; may later *retract* with
//!    `retract_prob`); otherwise the signature arrives after a lognormal
//!    latency, optionally quantized to the engine's next model update
//!    (plan: flag from the acquisition time, forever).
//! 3. **Benign samples** — a false positive fires with probability
//!    `fp_rate × fp_mult(type)`; FPs exist from origin and are usually
//!    retracted after a lognormal delay.
//!
//! Retraction is *only* possible for origin-flagging pairs, which is
//! what makes hazard flips (`0→1→0` / `1→0→1`) structurally impossible
//! outside the tiny glitch path (see the crate docs).
//!
//! ## Per-scan noise
//!
//! On top of the plan, every scan independently applies *activity*
//! noise: whole-day engine outages and per-scan timeouts (both →
//! [`Verdict::Undetected`]), plus the rare glitch that inverts a label
//! for one scan.

use crate::groups::{build_copy_rules, rule_for, CopyRule};
use crate::registry::{build_roster, EngineProfile};
use crate::typemods::{engine_type_latency_mult, type_mods, TypeMods};
use crate::update::UpdateSchedule;
use vt_model::hash::{mix64, unit_f64};
use vt_model::time::MINUTES_PER_DAY;
use vt_model::{EngineId, GroundTruth, SampleMeta, Timestamp, Verdict, VerdictVec};

// Hash-stream tags: each purpose gets its own stream so draws are
// independent.
const TAG_COPY: u64 = 1;
const TAG_DETECT: u64 = 2;
const TAG_INSTANT: u64 = 3;
const TAG_LATENCY: u64 = 4;
const TAG_QUANT: u64 = 5;
const TAG_RETRACT: u64 = 6;
const TAG_RETRACT_T: u64 = 7;
const TAG_FP: u64 = 8;
const TAG_FP_RETRACT: u64 = 9;
const TAG_FP_RETRACT_T: u64 = 10;
const TAG_TIMEOUT: u64 = 11;
const TAG_OUTAGE: u64 = 12;
const TAG_GLITCH: u64 = 13;
const TAG_SLOWNESS: u64 = 14;
const TAG_LOAD: u64 = 15;
const TAG_EPOCH: u64 = 16;
const TAG_EPOCH_LEN: u64 = 17;
const TAG_EPOCH_SLOW: u64 = 18;
const TAG_EPOCH_SLOW_LEN: u64 = 19;
const TAG_TREND: u64 = 20;

/// Fleet-level tunables (fault injection and calibration knobs).
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Seed for all behavioural draws.
    pub seed: u64,
    /// Global multiplier on per-scan timeout rates (fault injection;
    /// 1.0 = nominal).
    pub timeout_mult: f64,
    /// Global multiplier on per-day outage rates (fault injection).
    pub outage_mult: f64,
    /// Per-scan probability that an engine's label is inverted for that
    /// scan only — the sole source of hazard flips. The paper observed
    /// 9 in 109 M reports ≈ 1e-7 per report-pair.
    pub glitch_rate: f64,
    /// Lognormal σ of the per-sample "slowness" factor that stretches
    /// every engine's latency for evasive samples.
    pub slowness_sigma: f64,
    /// Lognormal σ of the per-(sample, day) load factor that scales
    /// every engine's timeout probability that day (mean-normalized to
    /// 1). Correlated engine dropouts within a scan are a major source
    /// of AV-Rank jitter — the paper's "engine activity" cause.
    pub load_sigma: f64,
    /// Lognormal σ of the per-(engine, epoch) availability factor.
    /// Engines go through multi-week good/bad periods (infra incidents,
    /// regressed builds); scans weeks apart therefore differ more than
    /// scans days apart, which is what drives the §5.3.5 correlation
    /// between scan interval and AV-Rank difference.
    pub epoch_sigma: f64,
    /// Lognormal σ of the slow availability tier (2–5 month epochs):
    /// infrastructure migrations, roster churn, long-lived regressions.
    /// This is what keeps AV-Rank differences growing over intervals of
    /// months rather than plateauing after the fast tier's ~3 weeks.
    pub epoch_slow_sigma: f64,
    /// σ of the per-engine *secular trend*: each engine's availability
    /// drifts monotonically (log-linearly) across the collection window
    /// — vendor coverage waxes or wanes over a year. Unlike the epoch
    /// tiers (piecewise-constant random draws), the trend guarantees
    /// that scans further apart see systematically different engine
    /// availability at every interval scale, which is the §5.3.5
    /// monotone interval–difference relationship.
    pub trend_sigma: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_0001,
            timeout_mult: 1.0,
            outage_mult: 1.0,
            glitch_rate: 1.0e-7,
            slowness_sigma: 0.6,
            load_sigma: 0.55,
            epoch_sigma: 0.95,
            epoch_slow_sigma: 1.0,
            trend_sigma: 1.0,
        }
    }
}

impl FleetConfig {
    /// A validating builder seeded with the defaults.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: Self::default(),
        }
    }
}

/// A validation failure from [`FleetConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetConfigError {
    /// A rate multiplier or lognormal σ was negative, NaN or infinite.
    NotFiniteNonNegative {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `glitch_rate` is a per-scan probability and must lie in `[0, 1]`.
    GlitchRateOutOfRange {
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::NotFiniteNonNegative { field, value } => {
                write!(f, "{field} must be finite and >= 0, got {value}")
            }
            FleetConfigError::GlitchRateOutOfRange { value } => {
                write!(
                    f,
                    "glitch_rate must be a probability in [0, 1], got {value}"
                )
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Validating builder for [`FleetConfig`]: the only construction path
/// that guarantees every multiplier/σ is finite and non-negative and
/// `glitch_rate` is a probability. Struct-literal construction remains
/// possible for tests that deliberately want out-of-range values.
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the fleet seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.config.seed = v;
        self
    }

    /// Sets the global timeout-rate multiplier.
    pub fn timeout_mult(mut self, v: f64) -> Self {
        self.config.timeout_mult = v;
        self
    }

    /// Sets the global outage-rate multiplier.
    pub fn outage_mult(mut self, v: f64) -> Self {
        self.config.outage_mult = v;
        self
    }

    /// Sets the per-scan label-glitch probability.
    pub fn glitch_rate(mut self, v: f64) -> Self {
        self.config.glitch_rate = v;
        self
    }

    /// Sets the per-sample slowness lognormal σ.
    pub fn slowness_sigma(mut self, v: f64) -> Self {
        self.config.slowness_sigma = v;
        self
    }

    /// Sets the per-(sample, day) load lognormal σ.
    pub fn load_sigma(mut self, v: f64) -> Self {
        self.config.load_sigma = v;
        self
    }

    /// Sets the fast availability-epoch lognormal σ.
    pub fn epoch_sigma(mut self, v: f64) -> Self {
        self.config.epoch_sigma = v;
        self
    }

    /// Sets the slow availability-epoch lognormal σ.
    pub fn epoch_slow_sigma(mut self, v: f64) -> Self {
        self.config.epoch_slow_sigma = v;
        self
    }

    /// Sets the secular availability-trend σ.
    pub fn trend_sigma(mut self, v: f64) -> Self {
        self.config.trend_sigma = v;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<FleetConfig, FleetConfigError> {
        let c = &self.config;
        for (field, value) in [
            ("timeout_mult", c.timeout_mult),
            ("outage_mult", c.outage_mult),
            ("slowness_sigma", c.slowness_sigma),
            ("load_sigma", c.load_sigma),
            ("epoch_sigma", c.epoch_sigma),
            ("epoch_slow_sigma", c.epoch_slow_sigma),
            ("trend_sigma", c.trend_sigma),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(FleetConfigError::NotFiniteNonNegative { field, value });
            }
        }
        if !c.glitch_rate.is_finite() || !(0.0..=1.0).contains(&c.glitch_rate) {
            return Err(FleetConfigError::GlitchRateOutOfRange {
                value: c.glitch_rate,
            });
        }
        Ok(self.config)
    }
}

/// The lifetime plan of one (engine, sample) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPlan {
    /// The engine never flags this sample.
    Never,
    /// The engine flags from `from` onward, forever.
    From(Timestamp),
    /// The engine flags from the sample's origin until `until`
    /// (retraction), then never again.
    UntilRetract(Timestamp),
}

impl PairPlan {
    /// Whether the plan has the pair flagged at time `t` (ignoring
    /// per-scan noise), given the sample's origin.
    pub fn flagged_at(self, t: Timestamp) -> bool {
        match self {
            PairPlan::Never => false,
            PairPlan::From(from) => t >= from,
            PairPlan::UntilRetract(until) => t < until,
        }
    }
}

/// Precomputed plans for every engine against one sample. Building this
/// once per sample and reusing it across that sample's scans is the
/// fast path the simulator uses.
#[derive(Debug, Clone)]
pub struct SamplePlan {
    plans: Vec<PairPlan>,
    /// Timeout rate per engine for this sample's type (the *effective*
    /// engine's profile rate × type multiplier × fleet multiplier —
    /// copied engines share an engine core and hang on the same
    /// samples).
    timeout_rates: Vec<f64>,
    /// Effective engine index per engine (after copy resolution); the
    /// timeout draw is keyed by it so copier pairs drop out together.
    effective: Vec<u8>,
}

/// The full engine fleet: profiles, update schedules, copy rules.
#[derive(Debug, Clone)]
pub struct EngineFleet {
    profiles: Vec<EngineProfile>,
    schedules: Vec<UpdateSchedule>,
    rules: Vec<CopyRule>,
    config: FleetConfig,
}

impl EngineFleet {
    /// Builds the fleet with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        let profiles = build_roster();
        let schedules = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| UpdateSchedule::new(i, p.update_period_days))
            .collect();
        Self {
            profiles,
            schedules,
            rules: build_copy_rules(),
            config,
        }
    }

    /// Builds the fleet with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(FleetConfig {
            seed,
            ..FleetConfig::default()
        })
    }

    /// Number of engines.
    pub fn engine_count(&self) -> usize {
        self.profiles.len()
    }

    /// The profile of engine `e`.
    pub fn profile(&self, e: EngineId) -> &EngineProfile {
        &self.profiles[e.index()]
    }

    /// The update schedule of engine `e` (for §5.5 cause attribution).
    pub fn schedule(&self, e: EngineId) -> &UpdateSchedule {
        &self.schedules[e.index()]
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Engine id by roster name (panics on unknown name).
    pub fn engine_by_name(&self, name: &str) -> EngineId {
        EngineId(crate::registry::engine_index(name) as u8)
    }

    // ---- draw helpers ------------------------------------------------

    fn u(&self, sample: &SampleMeta, engine: usize, tag: u64) -> f64 {
        unit_f64(mix64(&[
            self.config.seed,
            sample.hash.seed64(),
            engine as u64,
            tag,
        ]))
    }

    fn u_scan(&self, sample: &SampleMeta, engine: usize, tag: u64, t: Timestamp) -> f64 {
        unit_f64(mix64(&[
            self.config.seed,
            sample.hash.seed64(),
            engine as u64,
            tag,
            t.0 as u64,
        ]))
    }

    /// Deterministic lognormal draw in days: `exp(N(ln median, sigma))`.
    fn lognormal_days(
        &self,
        sample: &SampleMeta,
        engine: usize,
        tag: u64,
        median: f64,
        sigma: f64,
    ) -> f64 {
        let u = self.u(sample, engine, tag).clamp(1e-12, 1.0 - 1e-12);
        let z = vt_stats::special::probit(u);
        median.max(1e-3) * (sigma * z).exp()
    }

    /// The per-sample slowness factor shared by all engines (evasive
    /// samples are slow for everyone — this correlates latencies across
    /// the fleet).
    fn sample_slowness(&self, sample: &SampleMeta) -> f64 {
        let u = unit_f64(mix64(&[
            self.config.seed,
            sample.hash.seed64(),
            TAG_SLOWNESS,
        ]))
        .clamp(1e-12, 1.0 - 1e-12);
        (self.config.slowness_sigma * vt_stats::special::probit(u)).exp()
    }

    // ---- plan resolution ----------------------------------------------

    /// Resolves the engine whose behavioural draws the pair uses:
    /// follows copy rules (recursively) while the per-sample copy draws
    /// fire. Returns the effective engine index.
    fn resolve_effective(&self, engine: usize, sample: &SampleMeta) -> usize {
        let mut cur = engine;
        let mut depth = 0;
        while let Some(rule) = rule_for(&self.rules, cur, sample.file_type) {
            // The copy draw is keyed by the *follower* so independent
            // followers of one leader decorrelate independently.
            if self.u(sample, cur, TAG_COPY) < rule.prob {
                cur = rule.leader;
                depth += 1;
                if depth >= 8 {
                    break; // cycle guard; build_copy_rules() is acyclic
                }
            } else {
                break;
            }
        }
        cur
    }

    /// Computes the lifetime plan of `(engine, sample)`.
    pub fn pair_plan(&self, engine: EngineId, sample: &SampleMeta) -> PairPlan {
        let eff = self.resolve_effective(engine.index(), sample);
        self.pair_plan_with_eff(engine, eff, sample)
    }

    fn pair_plan_with_eff(&self, engine: EngineId, eff: usize, sample: &SampleMeta) -> PairPlan {
        let profile = &self.profiles[eff];
        let mods = type_mods(sample.file_type);
        match sample.truth {
            GroundTruth::Benign => self.benign_plan(eff, profile, &mods, sample),
            GroundTruth::Malicious { detectability } => self.malicious_plan(
                engine.index(),
                eff,
                profile,
                &mods,
                sample,
                detectability as f64,
            ),
        }
    }

    fn benign_plan(
        &self,
        eff: usize,
        profile: &EngineProfile,
        mods: &TypeMods,
        sample: &SampleMeta,
    ) -> PairPlan {
        let fp_rate = (profile.fp_rate * mods.fp_mult).min(1.0);
        if self.u(sample, eff, TAG_FP) >= fp_rate {
            return PairPlan::Never;
        }
        // False positive, live from origin. Usually retracted — and the
        // retraction clock starts at first submission: FPs surface once
        // the file circulates and users report them.
        if self.u(sample, eff, TAG_FP_RETRACT) < profile.fp_retract_prob {
            let days = self.lognormal_days(sample, eff, TAG_FP_RETRACT_T, 9.0, 0.9);
            let until = sample.first_submission
                + vt_model::time::Duration::minutes((days * MINUTES_PER_DAY as f64) as i64);
            if until <= sample.origin {
                PairPlan::Never
            } else {
                PairPlan::UntilRetract(until)
            }
        } else {
            PairPlan::From(sample.origin)
        }
    }

    fn malicious_plan(
        &self,
        follower: usize,
        eff: usize,
        profile: &EngineProfile,
        mods: &TypeMods,
        sample: &SampleMeta,
        detectability: f64,
    ) -> PairPlan {
        let q = (detectability * profile.capability).min(1.0);
        if self.u(sample, eff, TAG_DETECT) >= q {
            return PairPlan::Never;
        }
        if self.u(sample, eff, TAG_INSTANT) < profile.instant_prob {
            // Signature live at origin. Possibly retracted later.
            let retract = (profile.retract_prob * mods.retract_mult).min(1.0);
            if self.u(sample, eff, TAG_RETRACT) < retract {
                // Retraction (pruning/whitelisting) follows visibility:
                // anchored at first submission.
                let days = self.lognormal_days(sample, eff, TAG_RETRACT_T, 12.0, 1.0);
                let until = sample.first_submission
                    + vt_model::time::Duration::minutes((days * MINUTES_PER_DAY as f64) as i64);
                if until <= sample.origin {
                    return PairPlan::Never;
                }
                return PairPlan::UntilRetract(until);
            }
            return PairPlan::From(sample.origin);
        }
        // Signature arrives after a latency. The hot-spot override uses
        // the *follower's* identity (Fig. 10 is about the engine whose
        // column flips, even when it copies labels).
        let hot = engine_type_latency_mult(self.profiles[follower].name, sample.file_type);
        let median =
            profile.latency_median_days * mods.latency_scale * hot * self.sample_slowness(sample);
        let days = self.lognormal_days(sample, eff, TAG_LATENCY, median, profile.latency_sigma);
        let mut at = sample.origin
            + vt_model::time::Duration::minutes((days * MINUTES_PER_DAY as f64) as i64);
        // Quantize to the *effective* engine's next model update with
        // the profile's probability (the §5.5 "engine update"
        // mechanism). Copier pairs share the leader's database, so they
        // acquire signatures on the leader's schedule.
        if self.u(sample, eff, TAG_QUANT) < profile.update_quant_prob {
            at = self.schedules[eff].next_update_at_or_after(at);
        }
        PairPlan::From(at)
    }

    /// Precomputes the plans of every engine against `sample`.
    pub fn sample_plan(&self, sample: &SampleMeta) -> SamplePlan {
        let mods = type_mods(sample.file_type);
        let n = self.profiles.len();
        let mut plans = Vec::with_capacity(n);
        let mut timeout_rates = Vec::with_capacity(n);
        let mut effective = Vec::with_capacity(n);
        for i in 0..n {
            let eff = self.resolve_effective(i, sample);
            plans.push(self.pair_plan_with_eff(EngineId(i as u8), eff, sample));
            timeout_rates.push(
                (self.profiles[eff].timeout_rate * mods.timeout_mult * self.config.timeout_mult)
                    .min(0.5),
            );
            effective.push(eff as u8);
        }
        SamplePlan {
            plans,
            timeout_rates,
            effective,
        }
    }

    // ---- per-scan evaluation -------------------------------------------

    /// Whether engine `e` is in a whole-day outage on the day of `t`.
    pub fn in_outage(&self, e: EngineId, t: Timestamp) -> bool {
        let rate = self.profiles[e.index()].outage_rate * self.config.outage_mult;
        let day = t.day_number() as u64;
        unit_f64(mix64(&[
            self.config.seed,
            TAG_OUTAGE,
            e.index() as u64,
            day,
        ])) < rate
    }

    /// Mean-normalized lognormal factor from a uniform word.
    fn lognormal_factor(word: u64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        let u = unit_f64(word).clamp(1e-12, 1.0 - 1e-12);
        (sigma * vt_stats::special::probit(u) - sigma * sigma / 2.0).exp()
    }

    /// The per-(sample, day) load factor: scales every engine's timeout
    /// probability for scans of this sample that day. Lognormal,
    /// mean-normalized to 1.
    pub fn load_factor(&self, sample: &SampleMeta, t: Timestamp) -> f64 {
        Self::lognormal_factor(
            mix64(&[
                self.config.seed,
                sample.hash.seed64(),
                TAG_LOAD,
                t.day_number() as u64,
            ]),
            self.config.load_sigma,
        )
    }

    /// The per-(engine, epoch) availability factor. Each engine's
    /// timeline is cut into epochs of 7–21 days (length and phase
    /// engine-specific); within an epoch the engine's timeout rate is a
    /// constant multiple of its base rate. Scans far apart in time land
    /// in different epochs and therefore see systematically different
    /// engine availability — the slow component of AV-Rank drift.
    pub fn epoch_factor(&self, engine: usize, t: Timestamp) -> f64 {
        let seed = self.config.seed;
        // Fast tier: 7–21 day epochs.
        let fast_len = 7 + (mix64(&[seed, TAG_EPOCH_LEN, engine as u64]) % 15) as i64;
        let fast = Self::lognormal_factor(
            mix64(&[
                seed,
                TAG_EPOCH,
                engine as u64,
                t.day_number().div_euclid(fast_len) as u64,
            ]),
            self.config.epoch_sigma,
        );
        // Slow tier: 60–150 day epochs.
        let slow_len = 60 + (mix64(&[seed, TAG_EPOCH_SLOW_LEN, engine as u64]) % 91) as i64;
        let slow = Self::lognormal_factor(
            mix64(&[
                seed,
                TAG_EPOCH_SLOW,
                engine as u64,
                t.day_number().div_euclid(slow_len) as u64,
            ]),
            self.config.epoch_slow_sigma,
        );
        // Secular tier: log-linear drift across the collection window
        // (day 0 = 2021-01-01; the window spans days ~120..546, centred
        // near day 333).
        let trend = if self.config.trend_sigma > 0.0 {
            let u = unit_f64(mix64(&[seed, TAG_TREND, engine as u64])).clamp(1e-12, 1.0 - 1e-12);
            let slope = self.config.trend_sigma * vt_stats::special::probit(u);
            let frac = (t.day_number() as f64 - 333.0) / 426.0; // ≈ ±0.5 over the window
            (slope * frac).exp()
        } else {
            1.0
        };
        fast * slow * trend
    }

    /// One engine's verdict for one scan, using a precomputed plan.
    pub fn verdict_with_plan(
        &self,
        plan: &SamplePlan,
        e: EngineId,
        sample: &SampleMeta,
        t: Timestamp,
    ) -> Verdict {
        let i = e.index();
        if self.in_outage(e, t) {
            return Verdict::Undetected;
        }
        // Timeout draw keyed by the *effective* engine and the scan day:
        // copier pairs share an engine core (they hang on the same
        // samples), and scans of a sample within one day see identical
        // engine availability.
        let eff = plan.effective[i] as usize;
        let p = (plan.timeout_rates[i] * self.epoch_factor(eff, t) * self.load_factor(sample, t))
            .min(0.9);
        let day_word = mix64(&[
            self.config.seed,
            sample.hash.seed64(),
            eff as u64,
            TAG_TIMEOUT,
            t.day_number() as u64,
        ]);
        if unit_f64(day_word) < p {
            return Verdict::Undetected;
        }
        let mut flagged = plan.plans[i].flagged_at(t);
        if self.config.glitch_rate > 0.0
            && self.u_scan(sample, i, TAG_GLITCH, t) < self.config.glitch_rate
        {
            flagged = !flagged;
        }
        if flagged {
            Verdict::Malicious
        } else {
            Verdict::Benign
        }
    }

    /// One engine's verdict for one scan (resolves the plan on the fly;
    /// prefer [`EngineFleet::sample_plan`] + [`EngineFleet::verdict_with_plan`]
    /// when scanning a sample repeatedly).
    pub fn verdict(&self, e: EngineId, sample: &SampleMeta, t: Timestamp) -> Verdict {
        let plan = self.sample_plan(sample);
        self.verdict_with_plan(&plan, e, sample, t)
    }

    /// Scans a sample with the whole fleet at time `t`.
    pub fn scan(&self, plan: &SamplePlan, sample: &SampleMeta, t: Timestamp) -> VerdictVec {
        let mut v = VerdictVec::new(self.profiles.len());
        for i in 0..self.profiles.len() {
            let id = EngineId(i as u8);
            v.set(id, self.verdict_with_plan(plan, id, sample, t));
        }
        v
    }
}

impl SamplePlan {
    /// The plan of one engine.
    pub fn plan(&self, e: EngineId) -> PairPlan {
        self.plans[e.index()]
    }

    /// The asymptotic AV-Rank: how many engines flag the sample as
    /// `t → ∞` (after all acquisitions and retractions settle).
    pub fn asymptotic_positives(&self) -> u32 {
        self.plans
            .iter()
            .filter(|p| matches!(p, PairPlan::From(_)))
            .count() as u32
    }

    /// How many engines flag at time `t` under the plan (no noise).
    pub fn positives_at(&self, t: Timestamp) -> u32 {
        self.plans.iter().filter(|p| p.flagged_at(t)).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Duration};
    use vt_model::{FileType, SampleHash};

    fn fleet() -> EngineFleet {
        EngineFleet::with_seed(42)
    }

    fn sample(ordinal: u64, ft: FileType, truth: GroundTruth) -> SampleMeta {
        let origin = Timestamp::from_date(Date::new(2021, 6, 1));
        SampleMeta {
            hash: SampleHash::from_ordinal(ordinal),
            file_type: ft,
            origin,
            first_submission: origin + Duration::days(4),
            truth,
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let f = fleet();
        let s = sample(
            7,
            FileType::Win32Exe,
            GroundTruth::Malicious { detectability: 0.6 },
        );
        let t = s.first_submission + Duration::days(3);
        let plan = f.sample_plan(&s);
        for e in 0..f.engine_count() {
            let id = EngineId(e as u8);
            assert_eq!(
                f.verdict_with_plan(&plan, id, &s, t),
                f.verdict_with_plan(&plan, id, &s, t)
            );
            assert_eq!(f.verdict_with_plan(&plan, id, &s, t), f.verdict(id, &s, t));
        }
    }

    #[test]
    fn benign_samples_mostly_scan_clean() {
        let f = fleet();
        let mut total_positives = 0u32;
        let n = 200;
        for i in 0..n {
            let s = sample(1000 + i, FileType::Jpeg, GroundTruth::Benign);
            let plan = f.sample_plan(&s);
            let v = f.scan(&plan, &s, s.first_submission);
            total_positives += v.positives();
        }
        // JPEG FP rates are tiny: expect well under 0.2 positives/sample.
        assert!(
            (total_positives as f64) < 0.2 * n as f64 * 70.0 / 70.0 * 10.0,
            "benign positives too high: {total_positives}"
        );
    }

    #[test]
    fn detectability_drives_asymptotic_rank() {
        let f = fleet();
        let mean_rank = |d: f32| {
            let mut acc = 0u32;
            let n = 120;
            for i in 0..n {
                let s = sample(
                    5000 + i,
                    FileType::Win32Exe,
                    GroundTruth::Malicious { detectability: d },
                );
                acc += f.sample_plan(&s).asymptotic_positives();
            }
            acc as f64 / n as f64
        };
        let low = mean_rank(0.2);
        let mid = mean_rank(0.5);
        let high = mean_rank(0.9);
        assert!(low < mid && mid < high, "{low} {mid} {high}");
        // ≈ 70 × detectability (capability mean ≈ 1).
        assert!((high - 63.0).abs() < 12.0, "high = {high}");
        assert!((low - 14.0).abs() < 7.0, "low = {low}");
    }

    #[test]
    fn ranks_ramp_up_over_time() {
        let f = fleet();
        let mut early = 0u32;
        let mut late = 0u32;
        for i in 0..150 {
            let s = sample(
                9000 + i,
                FileType::Win32Exe,
                GroundTruth::Malicious { detectability: 0.7 },
            );
            let plan = f.sample_plan(&s);
            early += plan.positives_at(s.first_submission);
            late += plan.positives_at(s.first_submission + Duration::days(90));
        }
        assert!(late > early, "no ramp: early={early} late={late}");
        // And a decent share must already be armed at first submission
        // (the §5.4 gray curves require fresh samples not to start at 0).
        assert!(
            early as f64 > 0.35 * late as f64,
            "early share too small: {early}/{late}"
        );
    }

    #[test]
    fn pair_transitions_at_most_once() {
        // Scan densely over a year; per engine the (active-only) label
        // sequence must change at most once with glitches disabled.
        let mut cfg = FleetConfig {
            seed: 9,
            glitch_rate: 0.0,
            ..FleetConfig::default()
        };
        cfg.timeout_mult = 0.0;
        cfg.outage_mult = 0.0;
        let f = EngineFleet::new(cfg);
        for i in 0..40 {
            let s = sample(
                100 + i,
                FileType::Html,
                GroundTruth::Malicious { detectability: 0.5 },
            );
            let plan = f.sample_plan(&s);
            for e in 0..f.engine_count() {
                let id = EngineId(e as u8);
                let mut changes = 0;
                let mut last: Option<bool> = None;
                for day in 0..400 {
                    let t = s.first_submission + Duration::days(day);
                    let v = f.verdict_with_plan(&plan, id, &s, t);
                    let label = v.is_malicious();
                    if let Some(prev) = last {
                        if prev != label {
                            changes += 1;
                        }
                    }
                    last = Some(label);
                }
                assert!(changes <= 1, "engine {e} flipped {changes} times");
            }
        }
    }

    #[test]
    fn copy_groups_agree() {
        let f = fleet();
        let avast = f.engine_by_name("Avast");
        let avg = f.engine_by_name("AVG");
        let paloalto = f.engine_by_name("Paloalto");
        let apex = f.engine_by_name("APEX");
        let mut avast_avg_agree = 0;
        let mut pa_apex_agree = 0;
        let mut unrelated_agree = 0;
        let kasp = f.engine_by_name("Kaspersky");
        let zoner = f.engine_by_name("Zoner");
        let n = 400;
        for i in 0..n {
            let s = sample(
                50_000 + i,
                FileType::Win32Exe,
                GroundTruth::Malicious { detectability: 0.5 },
            );
            let plan = f.sample_plan(&s);
            let t = s.first_submission + Duration::days(10);
            let lab = |e: EngineId| f.verdict_with_plan(&plan, e, &s, t).is_malicious();
            if lab(avast) == lab(avg) {
                avast_avg_agree += 1;
            }
            if lab(paloalto) == lab(apex) {
                pa_apex_agree += 1;
            }
            if lab(kasp) == lab(zoner) {
                unrelated_agree += 1;
            }
        }
        // Copy pairs agree far more often than unrelated engines at
        // detectability 0.5 (where independent engines agree ~50-60%).
        assert!(
            avast_avg_agree as f64 > 0.93 * n as f64,
            "{avast_avg_agree}/{n}"
        );
        assert!(
            pa_apex_agree as f64 > 0.95 * n as f64,
            "{pa_apex_agree}/{n}"
        );
        assert!(
            unrelated_agree < avast_avg_agree,
            "unrelated {unrelated_agree} vs copy {avast_avg_agree}"
        );
    }

    #[test]
    fn timeouts_respect_fault_injection() {
        let nominal = EngineFleet::new(FleetConfig {
            seed: 5,
            ..FleetConfig::default()
        });
        let stormy = EngineFleet::new(FleetConfig {
            seed: 5,
            timeout_mult: 30.0,
            ..FleetConfig::default()
        });
        let s = sample(77, FileType::Pdf, GroundTruth::Benign);
        let count_undetected = |f: &EngineFleet| {
            let plan = f.sample_plan(&s);
            let mut n = 0;
            for day in 0..60 {
                let v = f.scan(&plan, &s, s.first_submission + Duration::days(day));
                n += f.engine_count() as u32 - v.active_count();
            }
            n
        };
        assert!(count_undetected(&stormy) > 3 * count_undetected(&nominal).max(1));
    }

    #[test]
    fn different_seeds_differ() {
        let f1 = EngineFleet::with_seed(1);
        let f2 = EngineFleet::with_seed(2);
        let s = sample(
            3,
            FileType::Win32Exe,
            GroundTruth::Malicious { detectability: 0.5 },
        );
        let t = s.first_submission;
        let v1 = f1.scan(&f1.sample_plan(&s), &s, t);
        let v2 = f2.scan(&f2.sample_plan(&s), &s, t);
        assert_ne!(v1, v2, "seeds should decorrelate verdict vectors");
    }
}
