//! Virtual time for the simulation and analyses.
//!
//! The paper's collection window runs 2021-05-01 through 2022-06-30
//! (14 calendar months). We model time as minutes since the **epoch
//! 2021-01-01 00:00 UTC** — the premium feed interface in the paper is
//! polled every minute, so minute resolution is the natural grain.
//!
//! Civil-date conversion uses Howard Hinnant's `days_from_civil`
//! algorithm (public domain), exact over the whole proleptic Gregorian
//! calendar; we property-test the round trip.

use core::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Minutes in a day.
pub const MINUTES_PER_DAY: i64 = 24 * 60;

/// A point in virtual time: minutes since 2021-01-01 00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(pub i64);

/// A span of virtual time in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Duration(pub i64);

impl Duration {
    /// A duration of `n` minutes.
    pub const fn minutes(n: i64) -> Self {
        Self(n)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: i64) -> Self {
        Self(n * 60)
    }

    /// A duration of `n` days.
    pub const fn days(n: i64) -> Self {
        Self(n * MINUTES_PER_DAY)
    }

    /// Whole days in this duration (truncating).
    pub const fn as_days(self) -> i64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Days as a float (fractional days preserved).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// Minutes in this duration.
    pub const fn as_minutes(self) -> i64 {
        self.0
    }

    /// Absolute value.
    pub const fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl Timestamp {
    /// The epoch (2021-01-01 00:00).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Constructs a timestamp at 00:00 of the given civil date.
    pub fn from_date(date: Date) -> Self {
        Self(date.days_since_epoch() * MINUTES_PER_DAY)
    }

    /// Constructs a timestamp from a civil date plus minute-of-day.
    pub fn from_date_time(date: Date, minute_of_day: i64) -> Self {
        debug_assert!((0..MINUTES_PER_DAY).contains(&minute_of_day));
        Self(date.days_since_epoch() * MINUTES_PER_DAY + minute_of_day)
    }

    /// The civil date this timestamp falls on.
    pub fn date(self) -> Date {
        Date::from_days_since_epoch(self.0.div_euclid(MINUTES_PER_DAY))
    }

    /// Whole days since the epoch (floor).
    pub fn day_number(self) -> i64 {
        self.0.div_euclid(MINUTES_PER_DAY)
    }

    /// Minute within the day, 0..1440.
    pub fn minute_of_day(self) -> i64 {
        self.0.rem_euclid(MINUTES_PER_DAY)
    }

    /// The calendar month this timestamp falls in.
    pub fn month(self) -> Month {
        let d = self.date();
        Month {
            year: d.year,
            month: d.month,
        }
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let m = self.minute_of_day();
        write!(f, "{} {:02}:{:02}", d, m / 60, m % 60)
    }
}

/// A civil (proleptic Gregorian) calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Date {
    /// Calendar year, e.g. 2021.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day of month 1..=31.
    pub day: u8,
}

impl Date {
    /// Constructs a date, validating the day against the month length.
    ///
    /// # Panics
    /// Panics on out-of-range month or day.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month:02}-{day:02}"
        );
        Self { year, month, day }
    }

    /// Days since the 2021-01-01 epoch (negative before it).
    pub fn days_since_epoch(self) -> i64 {
        days_from_civil(self.year, self.month, self.day) - days_from_civil(2021, 1, 1)
    }

    /// Inverse of [`Date::days_since_epoch`].
    pub fn from_days_since_epoch(days: i64) -> Self {
        civil_from_days(days + days_from_civil(2021, 1, 1))
    }

    /// The first day of this date's month.
    pub fn first_of_month(self) -> Date {
        Date { day: 1, ..self }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A calendar month (year + month), used for the monthly partitions of
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Month {
    /// Calendar year.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
}

impl Month {
    /// The paper's collection window start: May 2021.
    pub const COLLECTION_START: Month = Month {
        year: 2021,
        month: 5,
    };

    /// Number of months in the paper's collection window.
    pub const COLLECTION_LEN: usize = 14;

    /// The months of the collection window, in order
    /// (2021-05 ..= 2022-06).
    pub fn collection_window() -> impl Iterator<Item = Month> {
        (0..Self::COLLECTION_LEN).map(|i| Self::COLLECTION_START.plus(i))
    }

    /// The month `n` months after this one.
    pub fn plus(self, n: usize) -> Month {
        let zero = self.year as i64 * 12 + (self.month as i64 - 1) + n as i64;
        Month {
            year: zero.div_euclid(12) as i32,
            month: (zero.rem_euclid(12) + 1) as u8,
        }
    }

    /// Index of this month within the collection window, or `None` if it
    /// falls outside.
    pub fn collection_index(self) -> Option<usize> {
        let base =
            Self::COLLECTION_START.year as i64 * 12 + (Self::COLLECTION_START.month as i64 - 1);
        let this = self.year as i64 * 12 + (self.month as i64 - 1);
        let diff = this - base;
        (0..Self::COLLECTION_LEN as i64)
            .contains(&diff)
            .then_some(diff as usize)
    }

    /// Timestamp of the first minute of the month.
    pub fn start(self) -> Timestamp {
        Timestamp::from_date(Date::new(self.year, self.month, 1))
    }

    /// Timestamp of the first minute of the following month.
    pub fn end(self) -> Timestamp {
        self.plus(1).start()
    }

    /// Number of days in the month.
    pub fn days(self) -> u8 {
        days_in_month(self.year, self.month)
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}/{:04}", self.month, self.year)
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Hinnant's `days_from_civil`: days since 1970-01-01 for a civil date.
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Hinnant's `civil_from_days`: inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> Date {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    Date {
        year: (y + i64::from(m <= 2)) as i32,
        month: m,
        day: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_2021_01_01() {
        assert_eq!(Date::new(2021, 1, 1).days_since_epoch(), 0);
        assert_eq!(Timestamp::EPOCH.date(), Date::new(2021, 1, 1));
    }

    #[test]
    fn known_day_offsets() {
        assert_eq!(Date::new(2021, 1, 2).days_since_epoch(), 1);
        assert_eq!(Date::new(2021, 2, 1).days_since_epoch(), 31);
        assert_eq!(Date::new(2021, 5, 1).days_since_epoch(), 120); // 31+28+31+30
        assert_eq!(Date::new(2022, 1, 1).days_since_epoch(), 365);
        assert_eq!(Date::new(2020, 12, 31).days_since_epoch(), -1);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(2021));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
    }

    #[test]
    fn timestamp_roundtrip_date() {
        let d = Date::new(2022, 6, 30);
        let t = Timestamp::from_date_time(d, 23 * 60 + 59);
        assert_eq!(t.date(), d);
        assert_eq!(t.minute_of_day(), 23 * 60 + 59);
    }

    #[test]
    fn collection_window_months() {
        let months: Vec<Month> = Month::collection_window().collect();
        assert_eq!(months.len(), 14);
        assert_eq!(
            months[0],
            Month {
                year: 2021,
                month: 5
            }
        );
        assert_eq!(
            months[7],
            Month {
                year: 2021,
                month: 12
            }
        );
        assert_eq!(
            months[8],
            Month {
                year: 2022,
                month: 1
            }
        );
        assert_eq!(
            months[13],
            Month {
                year: 2022,
                month: 6
            }
        );
        for (i, m) in months.iter().enumerate() {
            assert_eq!(m.collection_index(), Some(i));
        }
        assert_eq!(
            Month {
                year: 2021,
                month: 4
            }
            .collection_index(),
            None
        );
        assert_eq!(
            Month {
                year: 2022,
                month: 7
            }
            .collection_index(),
            None
        );
    }

    #[test]
    fn month_boundaries() {
        let may = Month {
            year: 2021,
            month: 5,
        };
        assert_eq!(may.start().date(), Date::new(2021, 5, 1));
        assert_eq!(may.end().date(), Date::new(2021, 6, 1));
        assert_eq!(may.days(), 31);
        // A timestamp one minute before the end is still in May.
        let t = may.end() - Duration::minutes(1);
        assert_eq!(t.month(), may);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::days(2) + Duration::hours(3);
        assert_eq!(d.as_minutes(), 2 * 1440 + 180);
        assert_eq!(d.as_days(), 2);
        assert!((d.as_days_f64() - 2.125).abs() < 1e-12);
        let t = Timestamp::EPOCH + Duration::days(10);
        assert_eq!((t - Timestamp::EPOCH).as_days(), 10);
        assert_eq!(Duration::minutes(-5).abs(), Duration::minutes(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Date::new(2021, 5, 9).to_string(), "2021-05-09");
        assert_eq!(
            Month {
                year: 2021,
                month: 5
            }
            .to_string(),
            "05/2021"
        );
        let t = Timestamp::from_date_time(Date::new(2021, 5, 9), 61);
        assert_eq!(t.to_string(), "2021-05-09 01:01");
    }

    proptest! {
        #[test]
        fn civil_roundtrip(days in -200_000i64..200_000) {
            let d = Date::from_days_since_epoch(days);
            prop_assert_eq!(d.days_since_epoch(), days);
            prop_assert!((1..=12).contains(&d.month));
            prop_assert!(d.day >= 1 && d.day <= days_in_month(d.year, d.month));
        }

        #[test]
        fn successive_days_are_consecutive(days in -10_000i64..10_000) {
            let a = Date::from_days_since_epoch(days);
            let b = Date::from_days_since_epoch(days + 1);
            prop_assert_eq!(b.days_since_epoch() - a.days_since_epoch(), 1);
        }

        #[test]
        fn month_plus_is_additive(n in 0usize..500, m in 0usize..500) {
            let base = Month { year: 2021, month: 5 };
            prop_assert_eq!(base.plus(n).plus(m), base.plus(n + m));
        }
    }
}
