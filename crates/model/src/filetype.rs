//! The VirusTotal file-type taxonomy used throughout the study.
//!
//! Table 3 of the paper lists the top-20 file types (78–87% of all
//! samples), a `NULL` type (9.6%), and a long tail of "Others" reaching
//! 351 distinct types. We model the top 20 as named variants, `NULL`
//! explicitly, and the tail as `Other(k)` with `k < OTHER_TYPE_COUNT`
//! so the full taxonomy has exactly 351 types like the dataset.
//!
//! §5.4.3 groups Win32 EXE / Win32 DLL / Win64 EXE / Win64 DLL as "PE
//! files"; [`FileType::is_pe`] encodes that grouping.

use core::fmt;

/// Number of anonymous tail types, chosen so the total taxonomy size is
/// 351 (20 named + NULL + 330 others), matching the dataset.
pub const OTHER_TYPE_COUNT: u16 = 330;

/// Total number of distinct file types (matches the paper's 351).
pub const TOTAL_TYPE_COUNT: usize = 20 + 1 + OTHER_TYPE_COUNT as usize;

/// A VirusTotal file type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FileType {
    /// 32-bit Windows executable — the most common type (25.2% of samples).
    Win32Exe,
    /// Plain text.
    Txt,
    /// HTML document.
    Html,
    /// ZIP archive.
    Zip,
    /// PDF document.
    Pdf,
    /// XML document.
    Xml,
    /// 32-bit Windows dynamic library.
    Win32Dll,
    /// JSON document.
    Json,
    /// Android Dalvik executable.
    Dex,
    /// ELF executable.
    ElfExecutable,
    /// 64-bit Windows executable.
    Win64Exe,
    /// 64-bit Windows dynamic library.
    Win64Dll,
    /// ELF shared library.
    ElfSharedLib,
    /// EPUB e-book.
    Epub,
    /// Windows shell link.
    Lnk,
    /// FlashPix image.
    Fpx,
    /// PHP source.
    Php,
    /// Office Open XML document.
    Docx,
    /// GZIP archive.
    Gzip,
    /// JPEG image.
    Jpeg,
    /// VT could not determine a type ("NULL" in Table 3).
    Null,
    /// One of the 330 long-tail types.
    Other(u16),
}

impl FileType {
    /// The top-20 file types of Table 3, in the table's order.
    pub const TOP20: [FileType; 20] = [
        FileType::Win32Exe,
        FileType::Txt,
        FileType::Html,
        FileType::Zip,
        FileType::Pdf,
        FileType::Xml,
        FileType::Win32Dll,
        FileType::Json,
        FileType::Dex,
        FileType::ElfExecutable,
        FileType::Win64Exe,
        FileType::Win64Dll,
        FileType::ElfSharedLib,
        FileType::Epub,
        FileType::Lnk,
        FileType::Fpx,
        FileType::Php,
        FileType::Docx,
        FileType::Gzip,
        FileType::Jpeg,
    ];

    /// True for the PE grouping of §5.4.3 (Win32/64 EXE/DLL).
    pub fn is_pe(self) -> bool {
        matches!(
            self,
            FileType::Win32Exe | FileType::Win32Dll | FileType::Win64Exe | FileType::Win64Dll
        )
    }

    /// True for the named top-20 types.
    pub fn is_top20(self) -> bool {
        !matches!(self, FileType::Null | FileType::Other(_))
    }

    /// A dense index: top-20 → 0..20, NULL → 20, Other(k) → 21+k.
    /// Useful for array-indexed per-type accumulators.
    pub fn dense_index(self) -> usize {
        match self {
            FileType::Win32Exe => 0,
            FileType::Txt => 1,
            FileType::Html => 2,
            FileType::Zip => 3,
            FileType::Pdf => 4,
            FileType::Xml => 5,
            FileType::Win32Dll => 6,
            FileType::Json => 7,
            FileType::Dex => 8,
            FileType::ElfExecutable => 9,
            FileType::Win64Exe => 10,
            FileType::Win64Dll => 11,
            FileType::ElfSharedLib => 12,
            FileType::Epub => 13,
            FileType::Lnk => 14,
            FileType::Fpx => 15,
            FileType::Php => 16,
            FileType::Docx => 17,
            FileType::Gzip => 18,
            FileType::Jpeg => 19,
            FileType::Null => 20,
            FileType::Other(k) => 21 + k as usize,
        }
    }

    /// Inverse of [`FileType::dense_index`].
    ///
    /// # Panics
    /// Panics if `idx >= TOTAL_TYPE_COUNT`.
    pub fn from_dense_index(idx: usize) -> Self {
        match idx {
            0..=19 => Self::TOP20[idx],
            20 => FileType::Null,
            _ => {
                let k = idx - 21;
                assert!(
                    k < OTHER_TYPE_COUNT as usize,
                    "type index out of range: {idx}"
                );
                FileType::Other(k as u16)
            }
        }
    }

    /// Display name matching Table 3's spelling.
    pub fn name(self) -> String {
        match self {
            FileType::Win32Exe => "Win32 EXE".into(),
            FileType::Txt => "TXT".into(),
            FileType::Html => "HTML".into(),
            FileType::Zip => "ZIP".into(),
            FileType::Pdf => "PDF".into(),
            FileType::Xml => "XML".into(),
            FileType::Win32Dll => "Win32 DLL".into(),
            FileType::Json => "JSON".into(),
            FileType::Dex => "DEX".into(),
            FileType::ElfExecutable => "ELF executable".into(),
            FileType::Win64Exe => "Win64 EXE".into(),
            FileType::Win64Dll => "Win64 DLL".into(),
            FileType::ElfSharedLib => "ELF shared library".into(),
            FileType::Epub => "EPUB".into(),
            FileType::Lnk => "LNK".into(),
            FileType::Fpx => "FPX".into(),
            FileType::Php => "PHP".into(),
            FileType::Docx => "DOCX".into(),
            FileType::Gzip => "GZIP".into(),
            FileType::Jpeg => "JPEG".into(),
            FileType::Null => "NULL".into(),
            FileType::Other(k) => format!("Other#{k:03}"),
        }
    }

    /// Sample-share weights from Table 3 (column "% Samples"), used by the
    /// simulator's population generator. Returned as parts-per-million of
    /// the whole population; the `Other` share is spread over the tail
    /// with a Zipf-ish decay by the caller.
    pub fn sample_share_ppm(self) -> u32 {
        match self {
            FileType::Win32Exe => 252_139,
            FileType::Txt => 128_777,
            FileType::Html => 97_600,
            FileType::Zip => 55_398,
            FileType::Pdf => 39_489,
            FileType::Xml => 38_589,
            FileType::Win32Dll => 27_766,
            FileType::Json => 25_284,
            FileType::Dex => 22_345,
            FileType::ElfExecutable => 19_266,
            FileType::Win64Exe => 14_529,
            FileType::Win64Dll => 11_879,
            FileType::ElfSharedLib => 10_139,
            FileType::Epub => 9_268,
            FileType::Lnk => 8_612,
            FileType::Fpx => 7_643,
            FileType::Php => 6_959,
            FileType::Docx => 3_792,
            FileType::Gzip => 3_790,
            FileType::Jpeg => 3_547,
            FileType::Null => 96_048,
            // Remainder to 1_000_000, spread across the tail by the
            // population generator (117_141 ppm total).
            FileType::Other(_) => 0,
        }
    }

    /// Total `Other` share in ppm (Table 3's "Others" row: 11.7140%).
    pub const OTHER_SHARE_PPM: u32 = 117_141;
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_grouping() {
        assert!(FileType::Win32Exe.is_pe());
        assert!(FileType::Win32Dll.is_pe());
        assert!(FileType::Win64Exe.is_pe());
        assert!(FileType::Win64Dll.is_pe());
        assert!(!FileType::Pdf.is_pe());
        assert!(!FileType::ElfExecutable.is_pe());
        assert!(!FileType::Other(3).is_pe());
    }

    #[test]
    fn dense_index_roundtrip() {
        for idx in 0..TOTAL_TYPE_COUNT {
            let t = FileType::from_dense_index(idx);
            assert_eq!(t.dense_index(), idx);
        }
    }

    #[test]
    fn taxonomy_size_is_351() {
        assert_eq!(TOTAL_TYPE_COUNT, 351);
    }

    #[test]
    fn top20_are_top20() {
        assert_eq!(FileType::TOP20.len(), 20);
        for t in FileType::TOP20 {
            assert!(t.is_top20());
        }
        assert!(!FileType::Null.is_top20());
        assert!(!FileType::Other(0).is_top20());
    }

    #[test]
    fn shares_sum_to_a_million() {
        let named: u32 = FileType::TOP20
            .iter()
            .map(|t| t.sample_share_ppm())
            .sum::<u32>()
            + FileType::Null.sample_share_ppm();
        assert_eq!(named + FileType::OTHER_SHARE_PPM, 1_000_000);
    }

    #[test]
    fn names_match_table3() {
        assert_eq!(FileType::Win32Exe.name(), "Win32 EXE");
        assert_eq!(FileType::ElfSharedLib.name(), "ELF shared library");
        assert_eq!(FileType::Null.name(), "NULL");
    }
}
