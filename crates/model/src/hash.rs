//! Sample identifiers.
//!
//! The paper aggregates 847 M reports onto 571 M unique samples *by
//! hash*. We use an opaque 128-bit identifier: wide enough that the
//! simulator can mint identifiers without collision bookkeeping, small
//! enough to use as a map key everywhere.

use core::fmt;

/// A 128-bit sample identifier (stand-in for the SHA-256 the real
/// platform uses; 128 bits keeps collision probability negligible at
/// simulated scales while halving index size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampleHash(pub u128);

impl SampleHash {
    /// Derives a hash from a 64-bit ordinal using two rounds of
    /// SplitMix64 (high and low words), giving a well-mixed, collision-free
    /// mapping from ordinals to identifiers.
    pub fn from_ordinal(ordinal: u64) -> Self {
        let hi = splitmix64(ordinal ^ 0x9e37_79b9_7f4a_7c15);
        let lo = splitmix64(ordinal.wrapping_add(0xbf58_476d_1ce4_e5b9));
        Self(((hi as u128) << 64) | lo as u128)
    }

    /// A 64-bit digest of the identifier, used to seed per-sample
    /// deterministic randomness.
    pub fn seed64(self) -> u64 {
        (self.0 >> 64) as u64 ^ self.0 as u64
    }

    /// Hex rendering (32 nibbles), like the hashes in VT reports.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for SampleHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// SplitMix64 finalizer — a cheap, high-quality 64-bit mixing function.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes several 64-bit words into one, for deriving per-(entity, counter)
/// deterministic random streams.
pub fn mix64(words: &[u64]) -> u64 {
    let mut acc = 0x243f_6a88_85a3_08d3u64; // pi digits
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// Converts a mixed word into a uniform f64 in [0, 1).
pub fn unit_f64(word: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn ordinals_do_not_collide() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(SampleHash::from_ordinal(i)), "collision at {i}");
        }
    }

    #[test]
    fn hex_is_32_nibbles() {
        let h = SampleHash::from_ordinal(42);
        assert_eq!(h.to_hex().len(), 32);
        assert_eq!(h.to_hex(), format!("{h}"));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the canonical splitmix64 with seed state 0:
        // first output is 0xe220a8397b1dcdaf.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn unit_f64_bounds() {
        assert!(unit_f64(0) >= 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    proptest! {
        #[test]
        fn mix_is_deterministic(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(mix64(&[a, b]), mix64(&[a, b]));
        }

        #[test]
        fn mix_order_matters(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(mix64(&[a, b]), mix64(&[b, a]));
        }

        #[test]
        fn unit_f64_in_range(w in any::<u64>()) {
            let u = unit_f64(w);
            prop_assert!((0.0..1.0).contains(&u));
        }
    }
}
