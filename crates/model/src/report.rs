//! Scan reports.
//!
//! A VT scan report carries file metadata, VT-specific metadata, and one
//! label per engine. The paper's §3 establishes that three metadata
//! fields update differently depending on which API produced the report
//! (Table 1):
//!
//! | API    | `last_analysis_date` | `last_submission_date` | `times_submitted` |
//! |--------|----------------------|------------------------|-------------------|
//! | Upload | update               | update                 | increment         |
//! | Rescan | update               | unchanged              | unchanged         |
//! | Report | unchanged            | unchanged              | unchanged         |
//!
//! [`ScanReport`] carries exactly those fields plus the verdict vector;
//! the update semantics are enforced by `vt-sim::api` and exercised by
//! its tests.

use crate::engine::{EngineId, MAX_ENGINES};
use crate::filetype::FileType;
use crate::hash::SampleHash;
use crate::time::Timestamp;
use crate::verdict::Verdict;

/// Which API produced a report (§3's three report types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReportKind {
    /// Produced by the upload API (file submitted and analyzed).
    Upload,
    /// Produced by the rescan API (existing file re-analyzed).
    Rescan,
    /// Produced by the report API (existing report retrieved; no new
    /// analysis).
    Report,
}

/// A compact per-engine verdict vector: two bitmaps over engine indices.
///
/// `active` bit set ⇒ the engine produced a label for this scan;
/// `detected` bit set ⇒ that label was "malicious". A `detected` bit is
/// only meaningful when the corresponding `active` bit is set (the
/// constructor enforces `detected ⊆ active`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VerdictVec {
    active: [u64; 2],
    detected: [u64; 2],
    engine_count: u8,
}

impl VerdictVec {
    /// An empty vector over a roster of `engine_count` engines.
    pub fn new(engine_count: usize) -> Self {
        assert!(engine_count <= MAX_ENGINES);
        Self {
            active: [0; 2],
            detected: [0; 2],
            engine_count: engine_count as u8,
        }
    }

    /// Builds a vector from per-engine verdicts, in roster order.
    pub fn from_verdicts(verdicts: &[Verdict]) -> Self {
        let mut v = Self::new(verdicts.len());
        for (i, &verdict) in verdicts.iter().enumerate() {
            v.set(EngineId(i as u8), verdict);
        }
        v
    }

    /// Sets one engine's verdict.
    pub fn set(&mut self, engine: EngineId, verdict: Verdict) {
        let (w, b) = (engine.index() / 64, engine.index() % 64);
        let mask = 1u64 << b;
        match verdict {
            Verdict::Malicious => {
                self.active[w] |= mask;
                self.detected[w] |= mask;
            }
            Verdict::Benign => {
                self.active[w] |= mask;
                self.detected[w] &= !mask;
            }
            Verdict::Undetected => {
                self.active[w] &= !mask;
                self.detected[w] &= !mask;
            }
        }
    }

    /// Reads one engine's verdict.
    pub fn get(&self, engine: EngineId) -> Verdict {
        let (w, b) = (engine.index() / 64, engine.index() % 64);
        let mask = 1u64 << b;
        if self.active[w] & mask == 0 {
            Verdict::Undetected
        } else if self.detected[w] & mask != 0 {
            Verdict::Malicious
        } else {
            Verdict::Benign
        }
    }

    /// Number of engines in the roster this vector covers.
    pub fn engine_count(&self) -> usize {
        self.engine_count as usize
    }

    /// The report's `positives` field — the AV-Rank: how many engines
    /// flagged the sample.
    pub fn positives(&self) -> u32 {
        self.detected[0].count_ones() + self.detected[1].count_ones()
    }

    /// How many engines produced a label at all.
    pub fn active_count(&self) -> u32 {
        self.active[0].count_ones() + self.active[1].count_ones()
    }

    /// Iterates `(engine, verdict)` pairs over the roster.
    pub fn iter(&self) -> impl Iterator<Item = (EngineId, Verdict)> + '_ {
        (0..self.engine_count).map(move |i| {
            let id = EngineId(i);
            (id, self.get(id))
        })
    }

    /// Raw bitmap words `(active, detected)` — used by the store codec.
    pub fn raw(&self) -> ([u64; 2], [u64; 2]) {
        (self.active, self.detected)
    }

    /// Reconstructs from raw bitmap words.
    ///
    /// # Panics
    /// Panics if a `detected` bit is set without its `active` bit — that
    /// encoding is unrepresentable via the public API.
    pub fn from_raw(active: [u64; 2], detected: [u64; 2], engine_count: usize) -> Self {
        assert!(engine_count <= MAX_ENGINES);
        assert!(
            detected[0] & !active[0] == 0 && detected[1] & !active[1] == 0,
            "detected bits must be a subset of active bits"
        );
        Self {
            active,
            detected,
            engine_count: engine_count as u8,
        }
    }
}

/// One scan report: what the analysis pipeline consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScanReport {
    /// Hash of the scanned sample.
    pub sample: SampleHash,
    /// The sample's file type — §4.1: "in each VT scan report there is a
    /// field indicating the type of the scanned sample". Carrying it in
    /// the report (not just sample metadata) is what makes a stored feed
    /// self-contained for analysis.
    pub file_type: FileType,
    /// When the analysis ran ("last_analysis_date" at generation time).
    pub analysis_date: Timestamp,
    /// "last_submission_date" — when the file was last uploaded.
    pub last_submission_date: Timestamp,
    /// "times_submitted" — upload count at generation time.
    pub times_submitted: u32,
    /// Which API produced this report.
    pub kind: ReportKind,
    /// Per-engine verdicts.
    pub verdicts: VerdictVec,
}

impl ScanReport {
    /// The report's AV-Rank (`positives` field).
    pub fn positives(&self) -> u32 {
        self.verdicts.positives()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = VerdictVec::new(70);
        v.set(EngineId(0), Verdict::Malicious);
        v.set(EngineId(63), Verdict::Benign);
        v.set(EngineId(64), Verdict::Malicious);
        v.set(EngineId(69), Verdict::Undetected);
        assert_eq!(v.get(EngineId(0)), Verdict::Malicious);
        assert_eq!(v.get(EngineId(63)), Verdict::Benign);
        assert_eq!(v.get(EngineId(64)), Verdict::Malicious);
        assert_eq!(v.get(EngineId(69)), Verdict::Undetected);
        assert_eq!(v.get(EngineId(5)), Verdict::Undetected); // default
        assert_eq!(v.positives(), 2);
        assert_eq!(v.active_count(), 3);
    }

    #[test]
    fn overwrite_transitions() {
        let mut v = VerdictVec::new(4);
        v.set(EngineId(1), Verdict::Malicious);
        assert_eq!(v.positives(), 1);
        v.set(EngineId(1), Verdict::Benign);
        assert_eq!(v.positives(), 0);
        assert_eq!(v.get(EngineId(1)), Verdict::Benign);
        v.set(EngineId(1), Verdict::Undetected);
        assert_eq!(v.active_count(), 0);
    }

    #[test]
    fn from_verdicts_matches_iter() {
        let verdicts = [
            Verdict::Malicious,
            Verdict::Benign,
            Verdict::Undetected,
            Verdict::Malicious,
        ];
        let v = VerdictVec::from_verdicts(&verdicts);
        assert_eq!(v.engine_count(), 4);
        let collected: Vec<Verdict> = v.iter().map(|(_, x)| x).collect();
        assert_eq!(collected.as_slice(), &verdicts);
    }

    #[test]
    fn raw_roundtrip() {
        let mut v = VerdictVec::new(70);
        v.set(EngineId(3), Verdict::Malicious);
        v.set(EngineId(65), Verdict::Benign);
        let (a, d) = v.raw();
        let v2 = VerdictVec::from_raw(a, d, 70);
        assert_eq!(v, v2);
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn invalid_raw_rejected() {
        VerdictVec::from_raw([0, 0], [1, 0], 70);
    }

    proptest! {
        #[test]
        fn positives_counts_malicious(
            pattern in proptest::collection::vec(0u8..3, 1..70)
        ) {
            let verdicts: Vec<Verdict> = pattern
                .iter()
                .map(|&p| match p {
                    0 => Verdict::Benign,
                    1 => Verdict::Malicious,
                    _ => Verdict::Undetected,
                })
                .collect();
            let v = VerdictVec::from_verdicts(&verdicts);
            let expect_pos = verdicts.iter().filter(|x| x.is_malicious()).count() as u32;
            let expect_act = verdicts.iter().filter(|x| x.is_active()).count() as u32;
            prop_assert_eq!(v.positives(), expect_pos);
            prop_assert_eq!(v.active_count(), expect_act);
            for (i, &expected) in verdicts.iter().enumerate() {
                prop_assert_eq!(v.get(EngineId(i as u8)), expected);
            }
        }
    }
}
