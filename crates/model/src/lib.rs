//! Domain types for the VirusTotal label-dynamics study.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`time`] — a small civil-calendar and virtual-clock implementation
//!   covering the paper's 14-month collection window (May 2021 – June
//!   2022) with minute resolution. No external date crate.
//! * [`hash`] — 128-bit sample identifiers (the study aggregates scan
//!   reports by sample hash).
//! * [`filetype`] — the VirusTotal file-type taxonomy: the paper's top-20
//!   types (Table 3), the `NULL` type, and an open-ended `Other` space
//!   reaching the 351 types the dataset contains; plus the PE grouping
//!   used in §5.4.3.
//! * [`verdict`] — per-engine scan outcomes, the `R_ij ∈ {1, 0, −1}`
//!   encoding of Eq. (1).
//! * [`report`] — scan reports carrying the three metadata fields whose
//!   update rules the paper reverse-engineers (Table 1) and a compact
//!   per-engine verdict vector.
//! * [`sample`] — sample metadata and simulation ground truth.
//! * [`engine`] — engine identifiers (the engine *behaviour* lives in
//!   `vt-engines`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod filetype;
pub mod hash;
pub mod report;
pub mod sample;
pub mod time;
pub mod verdict;

pub use engine::EngineId;
pub use filetype::FileType;
pub use hash::SampleHash;
pub use report::{ReportKind, ScanReport, VerdictVec};
pub use sample::{GroundTruth, SampleMeta};
pub use time::{Date, Duration, Month, Timestamp};
pub use verdict::Verdict;
