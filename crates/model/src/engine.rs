//! Engine identifiers.
//!
//! The platform runs a fixed roster of engines; an [`EngineId`] is a
//! small dense index into that roster. The roster itself (names,
//! behaviour profiles) lives in the `vt-engines` crate; keeping the ID
//! type here lets `ScanReport` store verdict vectors without depending on
//! behaviour code.

use core::fmt;

/// Maximum number of engines a report's verdict vector can carry. The
/// paper's platform runs "over 70" engines; we fix the roster at 70 and
/// size bitmaps for up to 128 so the format has headroom.
pub const MAX_ENGINES: usize = 128;

/// Dense engine index (0-based position in the roster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EngineId(pub u8);

impl EngineId {
    /// Checked constructor from a dense roster index.
    ///
    /// The wire format stores engine ids in a `u8`, so a bare
    /// `EngineId(e as u8)` silently truncates for fleets past 256
    /// engines (and produces out-of-roster ids past [`MAX_ENGINES`]).
    /// Analyses that enumerate engines by `usize` index must go through
    /// this constructor instead of casting.
    ///
    /// # Panics
    /// Panics when `index >= MAX_ENGINES`.
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_ENGINES,
            "engine index {index} out of range: the roster is bounded at {MAX_ENGINES} engines"
        );
        EngineId(index as u8)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `count` engine ids.
    pub fn roster(count: usize) -> impl Iterator<Item = EngineId> {
        assert!(count <= MAX_ENGINES);
        (0..count as u8).map(EngineId)
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_iterates_in_order() {
        let ids: Vec<EngineId> = EngineId::roster(3).collect();
        assert_eq!(ids, vec![EngineId(0), EngineId(1), EngineId(2)]);
        assert_eq!(ids[2].index(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(EngineId(7).to_string(), "engine#7");
    }

    #[test]
    fn checked_constructor_accepts_the_full_roster() {
        for e in 0..MAX_ENGINES {
            assert_eq!(EngineId::new(e).index(), e);
        }
    }

    /// Documents the fleet-size bound: `MAX_ENGINES` is the hard roster
    /// limit. A bare `as u8` cast would wrap 256 → 0 and alias engine
    /// 0's column; the checked constructor refuses instead.
    #[test]
    #[should_panic(expected = "out of range")]
    fn checked_constructor_rejects_oversized_fleets() {
        let _ = EngineId::new(MAX_ENGINES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn checked_constructor_rejects_wrapping_index() {
        // 256 would wrap to 0 under `as u8` — the truncation this
        // constructor exists to catch.
        let _ = EngineId::new(256);
    }
}
