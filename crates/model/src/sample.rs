//! Sample metadata and simulation ground truth.
//!
//! The real platform has no ground truth — that is the paper's whole
//! problem. The *simulator* does: every generated sample carries a latent
//! class and detectability that drive engine behaviour. Analyses never
//! read the ground truth (they see only reports, as the paper did); it
//! exists for the generator and for validating the simulator itself.

use crate::filetype::FileType;
use crate::hash::SampleHash;
use crate::time::Timestamp;

/// Latent class of a simulated sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GroundTruth {
    /// A clean file. Engines only flag it by false positive.
    Benign,
    /// A malicious or unwanted file.
    Malicious {
        /// How easy the sample is to detect, in [0, 1]: the asymptotic
        /// fraction of capable engines that will eventually flag it.
        /// Low values model grayware/PUPs and evasive samples; high
        /// values model commodity malware.
        detectability: f32,
    },
}

impl GroundTruth {
    /// True for the malicious class.
    pub fn is_malicious(self) -> bool {
        matches!(self, GroundTruth::Malicious { .. })
    }

    /// Detectability (0 for benign samples).
    pub fn detectability(self) -> f32 {
        match self {
            GroundTruth::Benign => 0.0,
            GroundTruth::Malicious { detectability } => detectability,
        }
    }
}

/// Static metadata of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampleMeta {
    /// The sample's identifier.
    pub hash: SampleHash,
    /// VT file type.
    pub file_type: FileType,
    /// When the sample started circulating in the wild. Engine signature
    /// acquisition is anchored here: by the time a sample reaches VT
    /// (`first_submission`), fast engines may already detect it, which is
    /// why fresh samples rarely start at AV-Rank 0 (§5.4's gray-sample
    /// curves). Always `<= first_submission`.
    pub origin: Timestamp,
    /// When the sample was first submitted to the platform. For "fresh"
    /// samples (91.76% in the paper) this falls inside the collection
    /// window; for the rest it precedes it.
    pub first_submission: Timestamp,
    /// Simulation ground truth (invisible to analyses).
    pub truth: GroundTruth,
}

impl SampleMeta {
    /// Whether the sample is "fresh" with respect to a collection window
    /// starting at `window_start` (§4.1: first submitted within the
    /// window).
    pub fn is_fresh(&self, window_start: Timestamp) -> bool {
        self.first_submission >= window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Date, Timestamp};

    #[test]
    fn ground_truth_accessors() {
        assert!(!GroundTruth::Benign.is_malicious());
        assert_eq!(GroundTruth::Benign.detectability(), 0.0);
        let m = GroundTruth::Malicious { detectability: 0.8 };
        assert!(m.is_malicious());
        assert_eq!(m.detectability(), 0.8);
    }

    #[test]
    fn freshness() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let fresh = SampleMeta {
            hash: SampleHash::from_ordinal(1),
            file_type: FileType::Pdf,
            origin: window - crate::time::Duration::days(3),
            first_submission: window,
            truth: GroundTruth::Benign,
        };
        assert!(fresh.is_fresh(window));
        let old = SampleMeta {
            first_submission: Timestamp::from_date(Date::new(2021, 4, 30)),
            ..fresh
        };
        assert!(!old.is_fresh(window));
    }
}
