//! Per-engine scan outcomes.
//!
//! §7.2 Eq. (1) encodes an engine's decision about a sample as
//! `R_ij ∈ {1, 0, −1}`: malicious, benign, or undetected (the engine
//! produced no result — timeout, unsupported type, engine absent from
//! that scan). [`Verdict`] is that three-valued outcome.

/// One engine's outcome for one scan of one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Verdict {
    /// The engine flagged the sample (R = 1).
    Malicious,
    /// The engine examined the sample and did not flag it (R = 0).
    Benign,
    /// The engine produced no result for this scan (R = −1).
    Undetected,
}

impl Verdict {
    /// The paper's matrix encoding: 1 / 0 / −1.
    pub fn r_value(self) -> i8 {
        match self {
            Verdict::Malicious => 1,
            Verdict::Benign => 0,
            Verdict::Undetected => -1,
        }
    }

    /// Inverse of [`Verdict::r_value`].
    ///
    /// # Panics
    /// Panics on values outside {−1, 0, 1}.
    pub fn from_r_value(v: i8) -> Self {
        match v {
            1 => Verdict::Malicious,
            0 => Verdict::Benign,
            -1 => Verdict::Undetected,
            _ => panic!("invalid R value {v}"),
        }
    }

    /// True when the engine actually produced a label (R ≥ 0).
    pub fn is_active(self) -> bool {
        !matches!(self, Verdict::Undetected)
    }

    /// True when the engine flagged the sample.
    pub fn is_malicious(self) -> bool {
        matches!(self, Verdict::Malicious)
    }

    /// The §7.1 binary label `l_t ∈ {0, 1}` used for flip counting, or
    /// `None` if the engine was inactive for this scan (inactive scans do
    /// not participate in consecutive-label flip analysis).
    pub fn binary_label(self) -> Option<u8> {
        match self {
            Verdict::Malicious => Some(1),
            Verdict::Benign => Some(0),
            Verdict::Undetected => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_value_roundtrip() {
        for v in [Verdict::Malicious, Verdict::Benign, Verdict::Undetected] {
            assert_eq!(Verdict::from_r_value(v.r_value()), v);
        }
    }

    #[test]
    fn predicates() {
        assert!(Verdict::Malicious.is_active());
        assert!(Verdict::Benign.is_active());
        assert!(!Verdict::Undetected.is_active());
        assert!(Verdict::Malicious.is_malicious());
        assert!(!Verdict::Benign.is_malicious());
        assert_eq!(Verdict::Malicious.binary_label(), Some(1));
        assert_eq!(Verdict::Benign.binary_label(), Some(0));
        assert_eq!(Verdict::Undetected.binary_label(), None);
    }

    #[test]
    #[should_panic(expected = "invalid R value")]
    fn bad_r_value_panics() {
        Verdict::from_r_value(3);
    }
}
