//! On-disk persistence for sealed stores.
//!
//! The paper's pipeline persists compressed reports in MongoDB so the
//! 14-month collection can be analyzed repeatedly. Our equivalent is a
//! simple length-prefixed container file:
//!
//! ```text
//! magic "VTSTORE1"
//! u32   partition count
//! per partition:
//!   u8  has_month (1) → i32 year, u8 month   | (0) catch-all
//!   u32 block count
//!   per block: u32 report count, u32 byte length, <encoded bytes>
//! ```
//!
//! All integers little-endian. The per-sample index is rebuilt at load
//! time by decoding each block once (the blocks must be decoded to
//! verify integrity anyway). Writing requires a sealed store.

use crate::block::Block;
use crate::store::ReportStore;
use std::io::{self, Read, Write};
use vt_model::time::Month;

const MAGIC: &[u8; 8] = b"VTSTORE1";

/// Errors surfaced while loading a store file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a VTSTORE1 container or is structurally corrupt.
    Corrupt(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serializes a sealed store.
///
/// # Panics
/// Panics if the store is not sealed (mirrors the read-path contract).
pub fn write_store(store: &ReportStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let partitions = store.partitions_for_persist();
    put_u32(w, partitions.len() as u32)?;
    for (month, blocks) in partitions {
        match month {
            Some(m) => {
                w.write_all(&[1])?;
                w.write_all(&m.year.to_le_bytes())?;
                w.write_all(&[m.month])?;
            }
            None => w.write_all(&[0])?,
        }
        put_u32(w, blocks.len() as u32)?;
        for block in blocks {
            put_u32(w, block.len() as u32)?;
            put_u32(w, block.byte_len() as u32)?;
            w.write_all(block.raw_bytes())?;
        }
    }
    Ok(())
}

/// Loads a store file, rebuilding the per-sample index. The returned
/// store is sealed (read-only).
pub fn read_store(r: &mut impl Read) -> Result<ReportStore, PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Corrupt("bad magic"));
    }
    let partition_count = get_u32(r)? as usize;
    if partition_count > 1024 {
        return Err(PersistError::Corrupt("implausible partition count"));
    }
    let mut partitions = Vec::with_capacity(partition_count);
    for _ in 0..partition_count {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let month = match tag[0] {
            1 => {
                let mut ybuf = [0u8; 4];
                r.read_exact(&mut ybuf)?;
                let mut mbuf = [0u8; 1];
                r.read_exact(&mut mbuf)?;
                if !(1..=12).contains(&mbuf[0]) {
                    return Err(PersistError::Corrupt("month out of range"));
                }
                Some(Month {
                    year: i32::from_le_bytes(ybuf),
                    month: mbuf[0],
                })
            }
            0 => None,
            _ => return Err(PersistError::Corrupt("bad month tag")),
        };
        let block_count = get_u32(r)? as usize;
        let mut blocks = Vec::with_capacity(block_count.min(1 << 20));
        for _ in 0..block_count {
            let report_count = get_u32(r)?;
            let byte_len = get_u32(r)? as usize;
            if byte_len > 1 << 30 {
                return Err(PersistError::Corrupt("implausible block size"));
            }
            let mut data = vec![0u8; byte_len];
            r.read_exact(&mut data)?;
            let block = Block::from_parts(data.into(), report_count);
            // Integrity: the block must decode to exactly report_count
            // reports (decode_all panics on corrupt bytes; we convert
            // that contract into a checked decode here).
            if !block.verify() {
                return Err(PersistError::Corrupt("block failed to decode"));
            }
            blocks.push(block);
        }
        partitions.push((month, blocks));
    }
    ReportStore::from_persisted(partitions).map_err(PersistError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{FileType, ReportKind, SampleHash, ScanReport, VerdictVec};

    fn report(sample: u64, day: u8) -> ScanReport {
        ScanReport {
            sample: SampleHash::from_ordinal(sample),
            file_type: FileType::Pdf,
            analysis_date: Timestamp::from_date(Date::new(2021, 7, day)),
            last_submission_date: Timestamp::from_date(Date::new(2021, 7, day)),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts: VerdictVec::new(70),
        }
    }

    fn sample_store() -> ReportStore {
        let store = ReportStore::new();
        for i in 0..2_500u64 {
            store.append(&report(i % 40, 1 + (i % 28) as u8));
        }
        store.seal();
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let loaded = read_store(&mut buf.as_slice()).expect("read");
        assert_eq!(loaded.report_count(), store.report_count());
        assert_eq!(loaded.sample_count(), store.sample_count());
        for i in 0..40u64 {
            let hash = SampleHash::from_ordinal(i);
            assert_eq!(loaded.sample_reports(hash), store.sample_reports(hash));
        }
        let a = store.partition_stats();
        let b = loaded.partition_stats();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.reports, y.reports);
            assert_eq!(x.month, y.month);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_store(&mut &b"NOTASTORE!"[..]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt("bad magic")), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        for cut in [10, buf.len() / 2, buf.len() - 3] {
            let err = read_store(&mut &buf[..cut]).unwrap_err();
            assert!(matches!(err, PersistError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corruption_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        // Flip a byte in the middle of block data.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        // Either a decode failure or (if we hit a length field) a
        // structural error — both must surface as errors, never a
        // silently-wrong store.
        assert!(read_store(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("vtstore_test_{}.bin", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).expect("create");
            write_store(&store, &mut f).expect("write");
        }
        let mut f = std::fs::File::open(&path).expect("open");
        let loaded = read_store(&mut f).expect("read");
        assert_eq!(loaded.report_count(), store.report_count());
        std::fs::remove_file(&path).ok();
    }
}
