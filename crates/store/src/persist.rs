//! On-disk persistence for sealed stores.
//!
//! The paper's pipeline persists compressed reports in MongoDB so the
//! 14-month collection can be analyzed repeatedly. Our equivalent is a
//! container file in one of two formats.
//!
//! `VTSTORE1` — the legacy length-prefixed layout (still readable):
//!
//! ```text
//! magic "VTSTORE1"
//! u32   partition count
//! per partition:
//!   u8  has_month (1) → i32 year, u8 month   | (0) catch-all
//!   u32 block count
//!   per block: u32 report count, u32 byte length, <encoded bytes>
//! ```
//!
//! `VTSTORE2` — the current, fault-tolerant layout written by
//! [`write_store`]:
//!
//! ```text
//! magic "VTSTORE2"
//! u32   partition count
//! per partition:
//!   u32 PART_MARKER
//!   u8  has_month (1) → i32 year, u8 month   | (0) catch-all
//!   u32 block count
//!   per block:
//!     u32 BLOCK_MARKER
//!     u32 report count
//!     u32 byte length
//!     u32 crc32 of the encoded bytes
//!     <encoded bytes>
//! ```
//!
//! All integers little-endian. The markers and per-block CRCs buy two
//! things a months-long collector needs: corruption is detected *before*
//! decode (CRC), and a damaged region does not poison the rest of the
//! file — [`read_store_salvage`] skips bad blocks and re-synchronizes on
//! the next marker, returning whatever survives plus a
//! [`RecoveryReport`] saying exactly what was lost where.
//!
//! The strict reader [`read_store`] accepts both formats and fails on
//! the first integrity violation; the salvage reader degrades instead.
//! Neither panics on arbitrary input bytes (exercised by the randomized
//! sweep in `tests/fault_tolerance.rs`). The per-sample index is rebuilt
//! at load time by decoding each block once. Writing requires a sealed
//! store.

use crate::block::{Block, BLOCK_CAPACITY};
use crate::codec::MIN_ENCODED_REPORT_BYTES;
use crate::crc32::crc32;
use crate::store::{ReportStore, StoreError};
use std::io::{self, Read, Write};
use vt_model::time::Month;

const MAGIC_V1: &[u8; 8] = b"VTSTORE1";
const MAGIC_V2: &[u8; 8] = b"VTSTORE2";

/// Marks the start of a partition header (V2). Chosen to be unlikely in
/// encoded payload, but salvage never trusts a marker alone — the frame
/// behind it must also validate.
const PART_MARKER: u32 = 0x9A87_110E;
/// Marks the start of a block frame (V2).
const BLOCK_MARKER: u32 = 0xB10C_F00D;

/// Structural plausibility bounds, enforced before any allocation.
const MAX_PARTITIONS: u32 = 1024;
const MAX_BLOCKS_PER_PARTITION: u32 = 1 << 20;
const MAX_BLOCK_BYTES: u32 = 1 << 30;

/// The exact structural violation a strict load aborted on.
///
/// Each variant corresponds to one integrity check in the read path;
/// [`std::fmt::Display`] reproduces the legacy free-text descriptions so
/// rendered error messages are stable across the typed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Shorter than the 8-byte magic — not a VTSTORE container.
    FileShorterThanMagic,
    /// Leading magic matched neither `VTSTORE1` nor `VTSTORE2`.
    BadMagic,
    /// Declared partition count exceeds `MAX_PARTITIONS`.
    ImplausiblePartitionCount,
    /// A V2 partition did not start with its marker.
    BadPartitionMarker,
    /// Declared block count exceeds `MAX_BLOCKS_PER_PARTITION`.
    ImplausibleBlockCount,
    /// A V2 block did not start with its marker.
    BadBlockMarker,
    /// Declared block byte length exceeds `MAX_BLOCK_BYTES`.
    ImplausibleBlockSize,
    /// Declared report count exceeds the block builder's capacity.
    ImplausibleReportCount,
    /// Declared report count cannot fit in the declared byte length.
    ReportCountVsByteLength,
    /// A month tag's month byte fell outside `1..=12`.
    MonthOutOfRange,
    /// A month tag byte was neither 0 (catch-all) nor 1 (month).
    BadMonthTag,
    /// A block's payload no longer matches its stored CRC.
    ChecksumMismatch,
    /// A block's payload passed its CRC but did not decode to exactly
    /// the declared report count.
    BlockDecode,
}

impl CorruptKind {
    /// Human-readable description (the pre-typed-error message text).
    pub fn describe(self) -> &'static str {
        match self {
            CorruptKind::FileShorterThanMagic => "file shorter than magic",
            CorruptKind::BadMagic => "bad magic",
            CorruptKind::ImplausiblePartitionCount => "implausible partition count",
            CorruptKind::BadPartitionMarker => "bad partition marker",
            CorruptKind::ImplausibleBlockCount => "implausible block count",
            CorruptKind::BadBlockMarker => "bad block marker",
            CorruptKind::ImplausibleBlockSize => "implausible block size",
            CorruptKind::ImplausibleReportCount => "implausible report count",
            CorruptKind::ReportCountVsByteLength => "report count implausible for byte length",
            CorruptKind::MonthOutOfRange => "month out of range",
            CorruptKind::BadMonthTag => "bad month tag",
            CorruptKind::ChecksumMismatch => "block checksum mismatch",
            CorruptKind::BlockDecode => "block failed to decode",
        }
    }
}

impl std::fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// Errors surfaced while loading a store file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a VTSTORE container or is structurally corrupt
    /// at the byte level.
    Corrupt(CorruptKind),
    /// The container parsed, but its partition layout is not a store
    /// this build can host (see [`StoreError`]).
    Store(StoreError),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CorruptKind> for PersistError {
    fn from(kind: CorruptKind) -> Self {
        PersistError::Corrupt(kind)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
            PersistError::Store(e) => write!(f, "inconsistent store layout: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt(_) => None,
            PersistError::Store(e) => Some(e),
        }
    }
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Rejects block headers whose claimed report count cannot fit in the
/// claimed byte length (or exceeds the builder's capacity), before any
/// payload allocation happens.
fn check_block_header(report_count: u32, byte_len: u32) -> Result<(), PersistError> {
    if byte_len > MAX_BLOCK_BYTES {
        return Err(PersistError::Corrupt(CorruptKind::ImplausibleBlockSize));
    }
    if report_count as usize > BLOCK_CAPACITY {
        return Err(PersistError::Corrupt(CorruptKind::ImplausibleReportCount));
    }
    if (byte_len as u64) < report_count as u64 * MIN_ENCODED_REPORT_BYTES {
        return Err(PersistError::Corrupt(CorruptKind::ReportCountVsByteLength));
    }
    Ok(())
}

fn write_month_tag(w: &mut impl Write, month: Option<Month>) -> io::Result<()> {
    match month {
        Some(m) => {
            w.write_all(&[1])?;
            w.write_all(&m.year.to_le_bytes())?;
            w.write_all(&[m.month])
        }
        None => w.write_all(&[0]),
    }
}

/// Serializes a sealed store in the current `VTSTORE2` format (per-block
/// CRCs + salvage markers).
///
/// # Panics
/// Panics if the store is not sealed (mirrors the read-path contract).
pub fn write_store(store: &ReportStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC_V2)?;
    let partitions = store.partitions_for_persist();
    put_u32(w, partitions.len() as u32)?;
    for (month, blocks) in partitions {
        put_u32(w, PART_MARKER)?;
        write_month_tag(w, month)?;
        put_u32(w, blocks.len() as u32)?;
        for block in blocks {
            put_u32(w, BLOCK_MARKER)?;
            put_u32(w, block.len() as u32)?;
            put_u32(w, block.byte_len() as u32)?;
            put_u32(w, crc32(block.raw_bytes()))?;
            w.write_all(block.raw_bytes())?;
        }
    }
    Ok(())
}

/// Serializes a sealed store in the legacy `VTSTORE1` layout — byte-for-
/// byte what the original writer produced. Kept for compatibility tests
/// and for producing fixtures older tooling can read.
///
/// # Panics
/// Panics if the store is not sealed.
pub fn write_store_v1(store: &ReportStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC_V1)?;
    let partitions = store.partitions_for_persist();
    put_u32(w, partitions.len() as u32)?;
    for (month, blocks) in partitions {
        write_month_tag(w, month)?;
        put_u32(w, blocks.len() as u32)?;
        for block in blocks {
            put_u32(w, block.len() as u32)?;
            put_u32(w, block.byte_len() as u32)?;
            w.write_all(block.raw_bytes())?;
        }
    }
    Ok(())
}

fn read_month_tag(r: &mut impl Read) -> Result<Option<Month>, PersistError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        1 => {
            let mut ybuf = [0u8; 4];
            r.read_exact(&mut ybuf)?;
            let mut mbuf = [0u8; 1];
            r.read_exact(&mut mbuf)?;
            if !(1..=12).contains(&mbuf[0]) {
                return Err(PersistError::Corrupt(CorruptKind::MonthOutOfRange));
            }
            Ok(Some(Month {
                year: i32::from_le_bytes(ybuf),
                month: mbuf[0],
            }))
        }
        0 => Ok(None),
        _ => Err(PersistError::Corrupt(CorruptKind::BadMonthTag)),
    }
}

/// Loads a store file (either format), rebuilding the per-sample index.
/// Strict: the first integrity violation — bad marker, CRC mismatch,
/// implausible header, undecodable block — aborts the load. Use
/// [`read_store_salvage`] to recover what a damaged file still holds.
/// The returned store is sealed (read-only).
pub fn read_store(r: &mut impl Read) -> Result<ReportStore, PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let v2 = match &magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(PersistError::Corrupt(CorruptKind::BadMagic)),
    };
    let partition_count = get_u32(r)?;
    if partition_count > MAX_PARTITIONS {
        return Err(PersistError::Corrupt(
            CorruptKind::ImplausiblePartitionCount,
        ));
    }
    let mut partitions = Vec::with_capacity(partition_count as usize);
    for _ in 0..partition_count {
        if v2 && get_u32(r)? != PART_MARKER {
            return Err(PersistError::Corrupt(CorruptKind::BadPartitionMarker));
        }
        let month = read_month_tag(r)?;
        let block_count = get_u32(r)?;
        if block_count > MAX_BLOCKS_PER_PARTITION {
            return Err(PersistError::Corrupt(CorruptKind::ImplausibleBlockCount));
        }
        let mut blocks = Vec::with_capacity(block_count as usize);
        for _ in 0..block_count {
            if v2 && get_u32(r)? != BLOCK_MARKER {
                return Err(PersistError::Corrupt(CorruptKind::BadBlockMarker));
            }
            let report_count = get_u32(r)?;
            let byte_len = get_u32(r)?;
            check_block_header(report_count, byte_len)?;
            let expected_crc = if v2 { Some(get_u32(r)?) } else { None };
            let mut data = vec![0u8; byte_len as usize];
            r.read_exact(&mut data)?;
            if let Some(crc) = expected_crc {
                if crc32(&data) != crc {
                    return Err(PersistError::Corrupt(CorruptKind::ChecksumMismatch));
                }
            }
            let block = Block::from_parts(data.into(), report_count);
            // Integrity: the block must decode to exactly report_count
            // reports with nothing left over.
            if !block.verify() {
                return Err(PersistError::Corrupt(CorruptKind::BlockDecode));
            }
            blocks.push(block);
        }
        partitions.push((month, blocks));
    }
    ReportStore::from_persisted(partitions).map_err(PersistError::Store)
}

/// How a salvaged partition was identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageLabel {
    /// The partition header named a calendar month.
    Month(Month),
    /// The partition header named the catch-all partition.
    CatchAll,
    /// Blocks recovered by marker resync after their partition header
    /// was destroyed.
    Unlabeled,
}

/// Per-partition salvage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionRecovery {
    /// Which partition section of the file these counts describe.
    pub label: SalvageLabel,
    /// Blocks that passed marker + header + CRC + decode and were
    /// re-ingested.
    pub recovered_blocks: u64,
    /// Blocks (or unparseable regions) that were skipped.
    pub skipped_blocks: u64,
    /// Reports recovered from this partition's blocks.
    pub recovered_reports: u64,
}

/// What [`read_store_salvage`] managed to recover, and what it lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// One entry per partition section encountered in the file, in file
    /// order (plus `Unlabeled` entries for orphaned regions).
    pub partitions: Vec<PartitionRecovery>,
    /// Times the scanner lost framing and had to hunt forward for the
    /// next valid marker (V2 only).
    pub resyncs: u64,
    /// True when the file ended in the middle of a declared structure.
    pub truncated: bool,
}

impl RecoveryReport {
    /// Total blocks recovered across partitions.
    pub fn recovered_blocks(&self) -> u64 {
        self.partitions.iter().map(|p| p.recovered_blocks).sum()
    }

    /// Total blocks skipped across partitions.
    pub fn skipped_blocks(&self) -> u64 {
        self.partitions.iter().map(|p| p.skipped_blocks).sum()
    }

    /// Total reports recovered.
    pub fn recovered_reports(&self) -> u64 {
        self.partitions.iter().map(|p| p.recovered_reports).sum()
    }

    /// True when nothing was lost: no skips, no resyncs, no truncation.
    pub fn is_clean(&self) -> bool {
        self.skipped_blocks() == 0 && self.resyncs == 0 && !self.truncated
    }
}

/// Byte-slice cursor used by the salvage parser (infallible reads return
/// `None` at EOF instead of erroring).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn peek_u32_at(&self, offset: usize) -> Option<u32> {
        let start = self.pos.checked_add(offset)?;
        let bytes = self.data.get(start..start + 4)?;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take_u32(&mut self) -> Option<u32> {
        let v = self.peek_u32_at(0)?;
        self.pos += 4;
        Some(v)
    }

    fn take_u8(&mut self) -> Option<u8> {
        let v = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn take_bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.data.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(bytes)
    }
}

/// A parsed V2 partition header: label + declared block count.
fn try_partition_header(cur: &mut Cursor<'_>) -> Option<(SalvageLabel, u32)> {
    let start = cur.pos;
    let parsed = (|| {
        if cur.take_u32()? != PART_MARKER {
            return None;
        }
        let label = match cur.take_u8()? {
            1 => {
                let year = i32::from_le_bytes(cur.take_bytes(4)?.try_into().unwrap());
                let month = cur.take_u8()?;
                if !(1..=12).contains(&month) {
                    return None;
                }
                SalvageLabel::Month(Month { year, month })
            }
            0 => SalvageLabel::CatchAll,
            _ => return None,
        };
        let block_count = cur.take_u32()?;
        if block_count > MAX_BLOCKS_PER_PARTITION {
            return None;
        }
        Some((label, block_count))
    })();
    if parsed.is_none() {
        cur.pos = start;
    }
    parsed
}

enum BlockFrame {
    /// Marker, header, CRC and decode all valid.
    Good(Vec<vt_model::ScanReport>),
    /// Valid marker + plausible header, but the payload is corrupt
    /// (CRC mismatch or decode failure). The cursor has advanced past
    /// the frame, so parsing can continue at the next one.
    BadPayload,
    /// Valid marker + plausible header, but the payload runs past EOF.
    Truncated,
    /// No valid frame here (cursor unmoved).
    NoFrame,
}

fn try_block_frame(cur: &mut Cursor<'_>) -> BlockFrame {
    let start = cur.pos;
    let header = (|| {
        if cur.take_u32()? != BLOCK_MARKER {
            return None;
        }
        let report_count = cur.take_u32()?;
        let byte_len = cur.take_u32()?;
        let crc = cur.take_u32()?;
        check_block_header(report_count, byte_len).ok()?;
        Some((report_count, byte_len, crc))
    })();
    let Some((report_count, byte_len, crc)) = header else {
        cur.pos = start;
        return BlockFrame::NoFrame;
    };
    if cur.remaining() < byte_len as usize {
        cur.pos = cur.data.len();
        return BlockFrame::Truncated;
    }
    let payload = cur.take_bytes(byte_len as usize).expect("length checked");
    if crc32(payload) != crc {
        return BlockFrame::BadPayload;
    }
    let block = Block::from_parts(bytes::Bytes::copy_from_slice(payload), report_count);
    match block.decode_all() {
        Ok(reports) => BlockFrame::Good(reports),
        Err(_) => BlockFrame::BadPayload,
    }
}

/// Loads as much of a (possibly damaged) store file as possible.
///
/// For `VTSTORE2` files this skips blocks whose CRC or decode fails and
/// re-synchronizes on the next partition/block marker when framing is
/// lost, so one damaged region costs one block, not the rest of the
/// file. For legacy `VTSTORE1` files (no markers, no CRCs) the valid
/// prefix is recovered and everything after the first corruption is
/// reported lost. Recovered reports are re-ingested into a fresh store
/// (re-partitioned by analysis month, per-sample index rebuilt), which
/// is returned sealed together with the [`RecoveryReport`].
///
/// Errors only on I/O failure or when the file is too short / not a
/// VTSTORE container at all; damage beyond the magic degrades the
/// report instead.
pub fn read_store_salvage(
    r: &mut impl Read,
) -> Result<(ReportStore, RecoveryReport), PersistError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    if data.len() < 8 {
        return Err(PersistError::Corrupt(CorruptKind::FileShorterThanMagic));
    }
    match &data[..8] {
        m if m == MAGIC_V2 => Ok(salvage_v2(&data[8..])),
        m if m == MAGIC_V1 => Ok(salvage_v1(&data[8..])),
        _ => Err(PersistError::Corrupt(CorruptKind::BadMagic)),
    }
}

/// Appends a recovered block's reports to the rebuild, updating the
/// current partition's accounting.
fn ingest_block(
    store: &ReportStore,
    part: &mut PartitionRecovery,
    reports: Vec<vt_model::ScanReport>,
) {
    part.recovered_blocks += 1;
    part.recovered_reports += reports.len() as u64;
    store.append_batch(&reports);
}

fn empty_recovery(label: SalvageLabel) -> PartitionRecovery {
    PartitionRecovery {
        label,
        recovered_blocks: 0,
        skipped_blocks: 0,
        recovered_reports: 0,
    }
}

fn salvage_v2(body: &[u8]) -> (ReportStore, RecoveryReport) {
    let store = ReportStore::new();
    let mut cur = Cursor { data: body, pos: 0 };
    let mut partitions: Vec<PartitionRecovery> = Vec::new();
    let mut resyncs = 0u64;
    let mut truncated = false;

    // Declared partition count — advisory only; the parse is driven by
    // markers so a corrupt count cannot derail it.
    if cur.take_u32().is_none() {
        truncated = true;
    }

    let mut remaining_blocks = 0u32;
    while cur.remaining() > 0 {
        if remaining_blocks > 0 {
            match try_block_frame(&mut cur) {
                BlockFrame::Good(reports) => {
                    let part = partitions.last_mut().expect("in a partition");
                    ingest_block(&store, part, reports);
                    remaining_blocks -= 1;
                    continue;
                }
                BlockFrame::BadPayload => {
                    partitions
                        .last_mut()
                        .expect("in a partition")
                        .skipped_blocks += 1;
                    remaining_blocks -= 1;
                    continue;
                }
                BlockFrame::Truncated => {
                    let part = partitions.last_mut().expect("in a partition");
                    part.skipped_blocks += remaining_blocks as u64;
                    truncated = true;
                    break;
                }
                BlockFrame::NoFrame => {
                    // A corrupt block count can leave us expecting
                    // blocks when the next partition header has already
                    // arrived — accept it and charge the phantom blocks
                    // as skipped.
                    if let Some((label, block_count)) = try_partition_header(&mut cur) {
                        partitions
                            .last_mut()
                            .expect("in a partition")
                            .skipped_blocks += remaining_blocks as u64;
                        partitions.push(empty_recovery(label));
                        remaining_blocks = block_count;
                        continue;
                    }
                    /* fall through to resync */
                }
            }
        } else {
            if let Some((label, block_count)) = try_partition_header(&mut cur) {
                partitions.push(empty_recovery(label));
                remaining_blocks = block_count;
                continue;
            }
            // Orphan block (its partition header was destroyed, or a
            // lying block count left extra frames behind).
            match try_block_frame(&mut cur) {
                BlockFrame::Good(reports) => {
                    if partitions.is_empty() {
                        partitions.push(empty_recovery(SalvageLabel::Unlabeled));
                    }
                    let part = partitions.last_mut().expect("nonempty");
                    ingest_block(&store, part, reports);
                    continue;
                }
                BlockFrame::BadPayload => {
                    if partitions.is_empty() {
                        partitions.push(empty_recovery(SalvageLabel::Unlabeled));
                    }
                    partitions.last_mut().expect("nonempty").skipped_blocks += 1;
                    continue;
                }
                BlockFrame::Truncated => {
                    if partitions.is_empty() {
                        partitions.push(empty_recovery(SalvageLabel::Unlabeled));
                    }
                    partitions.last_mut().expect("nonempty").skipped_blocks += 1;
                    truncated = true;
                    break;
                }
                BlockFrame::NoFrame => { /* fall through to resync */ }
            }
        }

        // Framing lost: hunt forward for the next frame that actually
        // validates (a marker alone is not trusted — payload bytes can
        // contain marker-shaped u32s by chance).
        resyncs += 1;
        if partitions.is_empty() {
            partitions.push(empty_recovery(SalvageLabel::Unlabeled));
        }
        partitions.last_mut().expect("nonempty").skipped_blocks += 1;
        remaining_blocks = 0;
        let mut found = false;
        for probe in cur.pos + 1..cur.data.len().saturating_sub(3) {
            let word = u32::from_le_bytes(cur.data[probe..probe + 4].try_into().expect("4 bytes"));
            if word != PART_MARKER && word != BLOCK_MARKER {
                continue;
            }
            let mut candidate = Cursor {
                data: cur.data,
                pos: probe,
            };
            if word == PART_MARKER {
                if try_partition_header(&mut candidate).is_some() {
                    cur.pos = probe;
                    found = true;
                    break;
                }
            } else if !matches!(try_block_frame(&mut candidate), BlockFrame::NoFrame) {
                cur.pos = probe;
                found = true;
                break;
            }
        }
        if !found {
            truncated = truncated || cur.remaining() > 0;
            break;
        }
    }
    truncated = truncated || remaining_blocks > 0;

    store.seal();
    (
        store,
        RecoveryReport {
            partitions,
            resyncs,
            truncated,
        },
    )
}

fn salvage_v1(body: &[u8]) -> (ReportStore, RecoveryReport) {
    let store = ReportStore::new();
    let mut cur = Cursor { data: body, pos: 0 };
    let mut partitions: Vec<PartitionRecovery> = Vec::new();
    let mut truncated = false;

    'outer: {
        let Some(partition_count) = cur.take_u32() else {
            truncated = true;
            break 'outer;
        };
        if partition_count > MAX_PARTITIONS {
            truncated = true;
            break 'outer;
        }
        for _ in 0..partition_count {
            let header = (|| {
                let label = match cur.take_u8()? {
                    1 => {
                        let year = i32::from_le_bytes(cur.take_bytes(4)?.try_into().unwrap());
                        let month = cur.take_u8()?;
                        if !(1..=12).contains(&month) {
                            return None;
                        }
                        SalvageLabel::Month(Month { year, month })
                    }
                    0 => SalvageLabel::CatchAll,
                    _ => return None,
                };
                let block_count = cur.take_u32()?;
                if block_count > MAX_BLOCKS_PER_PARTITION {
                    return None;
                }
                Some((label, block_count))
            })();
            let Some((label, block_count)) = header else {
                truncated = true;
                break 'outer;
            };
            partitions.push(empty_recovery(label));
            for remaining in (1..=block_count).rev() {
                let block = (|| {
                    let report_count = cur.take_u32()?;
                    let byte_len = cur.take_u32()?;
                    check_block_header(report_count, byte_len).ok()?;
                    let payload = cur.take_bytes(byte_len as usize)?;
                    Block::from_parts(bytes::Bytes::copy_from_slice(payload), report_count)
                        .decode_all()
                        .ok()
                })();
                let part = partitions.last_mut().expect("just pushed");
                match block {
                    Some(reports) => ingest_block(&store, part, reports),
                    None => {
                        // V1 has no framing to recover with: everything
                        // from here on is unreadable.
                        part.skipped_blocks += remaining as u64;
                        truncated = true;
                        break 'outer;
                    }
                }
            }
        }
    }

    store.seal();
    (
        store,
        RecoveryReport {
            partitions,
            resyncs: 0,
            truncated,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{FileType, ReportKind, SampleHash, ScanReport, VerdictVec};

    fn report(sample: u64, day: u8) -> ScanReport {
        ScanReport {
            sample: SampleHash::from_ordinal(sample),
            file_type: FileType::Pdf,
            analysis_date: Timestamp::from_date(Date::new(2021, 7, day)),
            last_submission_date: Timestamp::from_date(Date::new(2021, 7, day)),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts: VerdictVec::new(70),
        }
    }

    fn sample_store() -> ReportStore {
        let store = ReportStore::new();
        for i in 0..2_500u64 {
            store.append(&report(i % 40, 1 + (i % 28) as u8));
        }
        store.seal();
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let loaded = read_store(&mut buf.as_slice()).expect("read");
        assert_eq!(loaded.report_count(), store.report_count());
        assert_eq!(loaded.sample_count(), store.sample_count());
        for i in 0..40u64 {
            let hash = SampleHash::from_ordinal(i);
            assert_eq!(loaded.sample_reports(hash), store.sample_reports(hash));
        }
        let a = store.partition_stats();
        let b = loaded.partition_stats();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.reports, y.reports);
            assert_eq!(x.month, y.month);
        }
    }

    #[test]
    fn v1_roundtrip_still_loads() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store_v1(&store, &mut buf).expect("write v1");
        assert_eq!(&buf[..8], b"VTSTORE1");
        let loaded = read_store(&mut buf.as_slice()).expect("read v1");
        assert_eq!(loaded.report_count(), store.report_count());
        assert_eq!(loaded.sample_count(), store.sample_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_store(&mut &b"NOTASTORE!"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(CorruptKind::BadMagic)),
            "{err}"
        );
        let err = read_store_salvage(&mut &b"NOTASTORE!"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(CorruptKind::BadMagic)),
            "{err}"
        );
    }

    #[test]
    fn truncation_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        for cut in [10, buf.len() / 2, buf.len() - 3] {
            let err = read_store(&mut &buf[..cut]).unwrap_err();
            assert!(matches!(err, PersistError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corruption_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        // Flip a byte in the middle of block data.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        // Either a checksum/decode failure or (if we hit a length field)
        // a structural error — both must surface as errors, never a
        // silently-wrong store.
        assert!(read_store(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn salvage_clean_file_recovers_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let (loaded, report) = read_store_salvage(&mut buf.as_slice()).expect("salvage");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(loaded.report_count(), store.report_count());
        assert_eq!(loaded.sample_count(), store.sample_count());
        assert_eq!(report.recovered_reports(), store.report_count());
    }

    #[test]
    fn salvage_skips_corrupt_block_and_keeps_rest() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        // Corrupt one payload byte inside the first block: find the
        // first BLOCK_MARKER and flip a byte 40 past its header.
        let marker = BLOCK_MARKER.to_le_bytes();
        let pos = buf
            .windows(4)
            .position(|w| w == marker)
            .expect("some block exists");
        buf[pos + 16 + 40] ^= 0x55;
        let (loaded, report) = read_store_salvage(&mut buf.as_slice()).expect("salvage");
        assert_eq!(report.skipped_blocks(), 1);
        assert_eq!(report.resyncs, 0, "framing intact, no resync needed");
        assert!(!report.truncated);
        assert!(loaded.report_count() < store.report_count());
        assert_eq!(
            loaded.report_count(),
            report.recovered_reports(),
            "rebuilt store holds exactly the recovered reports"
        );
    }

    #[test]
    fn salvage_resyncs_past_destroyed_length_field() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).expect("write");
        let marker = BLOCK_MARKER.to_le_bytes();
        let pos = buf
            .windows(4)
            .position(|w| w == marker)
            .expect("some block exists");
        // Destroy the byte-length field so the frame header itself lies.
        buf[pos + 8..pos + 12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let (loaded, report) = read_store_salvage(&mut buf.as_slice()).expect("salvage");
        assert!(report.resyncs >= 1, "{report:?}");
        assert!(loaded.report_count() > 0, "later blocks recovered");
        assert!(report.skipped_blocks() >= 1);
    }

    #[test]
    fn salvage_v1_recovers_prefix() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store_v1(&store, &mut buf).expect("write v1");
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let (loaded, report) = read_store_salvage(&mut buf.as_slice()).expect("salvage");
        // Either the flip hit a block payload (decode fails there) or a
        // header; either way the prefix survives and the report owns up
        // to the damage.
        assert!(loaded.report_count() < store.report_count());
        assert!(report.truncated || report.skipped_blocks() > 0);
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("vtstore_test_{}.bin", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).expect("create");
            write_store(&store, &mut f).expect("write");
        }
        let mut f = std::fs::File::open(&path).expect("open");
        let loaded = read_store(&mut f).expect("read");
        assert_eq!(loaded.report_count(), store.report_count());
        std::fs::remove_file(&path).ok();
    }
}
