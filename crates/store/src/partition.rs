//! Monthly partitions with raw/compressed accounting.
//!
//! Table 2 of the paper reports, per calendar month of the collection
//! window, the number of reports and their stored size; §4.1 reports a
//! 10.06× compression rate from field pruning + compression. Each
//! [`Partition`] owns the blocks for one month and tracks both the
//! naive row size and the encoded size, so the harness can print the
//! same accounting for simulated data.

use crate::block::{Block, BlockBuilder};
use crate::codec::RAW_REPORT_BYTES;
use vt_model::time::Month;
use vt_model::ScanReport;

/// Location of one report inside a partitioned store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// Partition index (0-based within the store's partition list).
    pub partition: u16,
    /// Block index within the partition (`u32::MAX` = still in the open
    /// builder; resolved at seal time).
    pub block: u32,
    /// Report index within the block.
    pub offset: u32,
}

/// Summary statistics of one partition (one Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// The calendar month (or `None` for the catch-all partition).
    pub month: Option<Month>,
    /// Number of reports stored.
    pub reports: u64,
    /// Naive row-encoding size in bytes.
    pub raw_bytes: u64,
    /// Encoded (stored) size in bytes.
    pub stored_bytes: u64,
}

impl PartitionStats {
    /// Compression ratio (raw / stored); 1.0 for an empty partition.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// One month of reports: sealed blocks plus one open builder.
#[derive(Debug)]
pub struct Partition {
    month: Option<Month>,
    blocks: Vec<Block>,
    open: BlockBuilder,
    reports: u64,
}

impl Partition {
    /// Creates an empty partition for `month` (`None` = catch-all for
    /// reports outside the collection window).
    pub fn new(month: Option<Month>) -> Self {
        Self {
            month,
            blocks: Vec::new(),
            open: BlockBuilder::new(),
            reports: 0,
        }
    }

    /// Appends a report, returning its block/offset coordinates.
    pub fn append(&mut self, report: &ScanReport) -> (u32, u32) {
        if self.open.is_full() {
            let block = self.open.seal();
            self.blocks.push(block);
        }
        let offset = self.open.push(report);
        self.reports += 1;
        (self.blocks.len() as u32, offset)
    }

    /// Seals the open builder (no-op when empty). Call before bulk
    /// reads so every report lives in an immutable block.
    pub fn seal(&mut self) {
        if !self.open.is_empty() {
            let block = self.open.seal();
            self.blocks.push(block);
        }
    }

    /// The sealed blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The partition's month (`None` = catch-all).
    pub fn month(&self) -> Option<Month> {
        self.month
    }

    /// Rebuilds a sealed partition from persisted blocks.
    pub fn from_blocks(month: Option<Month>, blocks: Vec<Block>) -> Self {
        let reports = blocks.iter().map(|b| b.len() as u64).sum();
        Self {
            month,
            blocks,
            open: BlockBuilder::new(),
            reports,
        }
    }

    /// Accounting for this partition.
    pub fn stats(&self) -> PartitionStats {
        let stored: u64 = self.blocks.iter().map(|b| b.byte_len() as u64).sum::<u64>()
            + self.open.byte_len() as u64;
        PartitionStats {
            month: self.month,
            reports: self.reports,
            raw_bytes: self.reports * RAW_REPORT_BYTES,
            stored_bytes: stored,
        }
    }

    /// Number of reports stored (sealed + open).
    pub fn len(&self) -> u64 {
        self.reports
    }

    /// True if no report has been appended.
    pub fn is_empty(&self) -> bool {
        self.reports == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_CAPACITY;
    use vt_model::{FileType, ReportKind, SampleHash, Timestamp, VerdictVec};

    fn report(i: u64) -> ScanReport {
        ScanReport {
            sample: SampleHash::from_ordinal(i),
            file_type: FileType::Pdf,
            analysis_date: Timestamp(i as i64),
            last_submission_date: Timestamp(i as i64),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts: VerdictVec::new(70),
        }
    }

    #[test]
    fn append_rolls_blocks_at_capacity() {
        let mut p = Partition::new(None);
        for i in 0..(BLOCK_CAPACITY as u64 * 2 + 10) {
            let (block, offset) = p.append(&report(i));
            assert_eq!(block as u64, i / BLOCK_CAPACITY as u64);
            assert_eq!(offset as u64, i % BLOCK_CAPACITY as u64);
        }
        p.seal();
        assert_eq!(p.blocks().len(), 3);
        assert_eq!(p.len(), BLOCK_CAPACITY as u64 * 2 + 10);
    }

    #[test]
    fn stats_account_for_open_builder() {
        let mut p = Partition::new(Some(Month {
            year: 2021,
            month: 5,
        }));
        p.append(&report(1));
        let before_seal = p.stats();
        assert_eq!(before_seal.reports, 1);
        assert!(before_seal.stored_bytes > 0);
        assert_eq!(before_seal.raw_bytes, RAW_REPORT_BYTES);
        p.seal();
        let after_seal = p.stats();
        assert_eq!(after_seal.stored_bytes, before_seal.stored_bytes);
        assert!(after_seal.compression_ratio() > 1.0);
    }

    #[test]
    fn empty_partition_stats() {
        let p = Partition::new(None);
        let s = p.stats();
        assert!(p.is_empty());
        assert_eq!(s.reports, 0);
        assert_eq!(s.compression_ratio(), 1.0);
    }

    #[test]
    fn seal_is_idempotent() {
        let mut p = Partition::new(None);
        p.append(&report(1));
        p.seal();
        p.seal();
        assert_eq!(p.blocks().len(), 1);
    }
}
