//! The report store: append path, per-sample index, iteration.
//!
//! Reports append into their analysis-month's partition; a per-sample
//! index records every report's location so per-sample trajectories can
//! be gathered later (the unit every analysis consumes). The paper's
//! pipeline does the same thing with MongoDB collections keyed by
//! sample hash.

use crate::block::Block;
use crate::partition::{Loc, Partition, PartitionStats};
use parking_lot::RwLock;
use std::collections::HashMap;
use vt_model::time::Month;
use vt_model::{SampleHash, ScanReport};

/// An in-process, compressed, month-partitioned report store.
#[derive(Debug)]
pub struct ReportStore {
    inner: RwLock<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Partition 0..14 = the collection window months; last = catch-all.
    partitions: Vec<Partition>,
    index: HashMap<SampleHash, Vec<Loc>>,
    sealed: bool,
}

impl Default for ReportStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReportStore {
    /// Creates an empty store with one partition per collection-window
    /// month plus a catch-all for out-of-window reports.
    pub fn new() -> Self {
        let mut partitions: Vec<Partition> = Month::collection_window()
            .map(|m| Partition::new(Some(m)))
            .collect();
        partitions.push(Partition::new(None));
        Self {
            inner: RwLock::new(Inner {
                partitions,
                index: HashMap::new(),
                sealed: false,
            }),
        }
    }

    fn partition_for(month_index: Option<usize>, n: usize) -> usize {
        month_index.unwrap_or(n - 1)
    }

    /// Appends one report.
    ///
    /// # Panics
    /// Panics if the store was already sealed.
    pub fn append(&self, report: &ScanReport) {
        let mut inner = self.inner.write();
        assert!(!inner.sealed, "append after seal");
        let n = inner.partitions.len();
        let pi = Self::partition_for(report.analysis_date.month().collection_index(), n);
        let (block, offset) = inner.partitions[pi].append(report);
        inner.index.entry(report.sample).or_default().push(Loc {
            partition: pi as u16,
            block,
            offset,
        });
    }

    /// Appends a batch (one lock acquisition).
    pub fn append_batch(&self, reports: &[ScanReport]) {
        let mut inner = self.inner.write();
        assert!(!inner.sealed, "append after seal");
        let n = inner.partitions.len();
        for report in reports {
            let pi = Self::partition_for(report.analysis_date.month().collection_index(), n);
            let (block, offset) = inner.partitions[pi].append(report);
            inner.index.entry(report.sample).or_default().push(Loc {
                partition: pi as u16,
                block,
                offset,
            });
        }
    }

    /// Seals every partition. Must be called before reads; afterwards
    /// appends panic.
    pub fn seal(&self) {
        let mut inner = self.inner.write();
        for p in &mut inner.partitions {
            p.seal();
        }
        inner.sealed = true;
    }

    /// Total number of reports stored.
    pub fn report_count(&self) -> u64 {
        self.inner.read().partitions.iter().map(|p| p.len()).sum()
    }

    /// Number of distinct samples.
    pub fn sample_count(&self) -> u64 {
        self.inner.read().index.len() as u64
    }

    /// Per-partition statistics, in window order (catch-all last).
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        self.inner
            .read()
            .partitions
            .iter()
            .map(|p| p.stats())
            .collect()
    }

    /// Gathers one sample's reports, sorted by analysis date.
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn sample_reports(&self, hash: SampleHash) -> Vec<ScanReport> {
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before reading");
        let Some(locs) = inner.index.get(&hash) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(locs.len());
        // Decode each needed block once. Blocks reachable here were
        // either built by this store or integrity-checked at load time,
        // so a decode failure is a program error, not an input error.
        let mut cache: HashMap<(u16, u32), Vec<ScanReport>> = HashMap::new();
        for loc in locs {
            let block_reports = cache.entry((loc.partition, loc.block)).or_insert_with(|| {
                inner.partitions[loc.partition as usize].blocks()[loc.block as usize]
                    .decode_all()
                    .expect("sealed in-store block decodes")
            });
            out.push(block_reports[loc.offset as usize]);
        }
        out.sort_by_key(|r| r.analysis_date);
        out
    }

    /// Iterates all reports grouped by sample, each group sorted by
    /// analysis date. Materializes the grouping (bulk-analysis path).
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn group_by_sample(&self) -> Vec<(SampleHash, Vec<ScanReport>)> {
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before reading");
        let mut groups: HashMap<SampleHash, Vec<ScanReport>> =
            HashMap::with_capacity(inner.index.len());
        for p in &inner.partitions {
            for block in p.blocks() {
                for r in block.decode_all().expect("sealed in-store block decodes") {
                    groups.entry(r.sample).or_default().push(r);
                }
            }
        }
        let mut out: Vec<(SampleHash, Vec<ScanReport>)> = groups.into_iter().collect();
        for (_, reports) in &mut out {
            reports.sort_by_key(|r| r.analysis_date);
        }
        // Deterministic order for reproducible analyses.
        out.sort_by_key(|(h, _)| *h);
        out
    }

    /// Snapshot of the sealed partitions for persistence:
    /// `(month, blocks)` per partition.
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn partitions_for_persist(&self) -> Vec<(Option<Month>, Vec<Block>)> {
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before persisting");
        inner
            .partitions
            .iter()
            .map(|p| (p.month(), p.blocks().to_vec()))
            .collect()
    }

    /// Rebuilds a sealed store from persisted partitions, re-deriving
    /// the per-sample index by decoding each block once. Returns an
    /// error message if the partition layout is not the expected
    /// 14-months-plus-catch-all shape.
    pub fn from_persisted(parts: Vec<(Option<Month>, Vec<Block>)>) -> Result<Self, &'static str> {
        let expected: Vec<Option<Month>> = Month::collection_window()
            .map(Some)
            .chain(std::iter::once(None))
            .collect();
        if parts.len() != expected.len() {
            return Err("unexpected partition count");
        }
        let mut partitions = Vec::with_capacity(parts.len());
        let mut index: HashMap<SampleHash, Vec<Loc>> = HashMap::new();
        for (pi, ((month, blocks), want)) in parts.into_iter().zip(expected).enumerate() {
            if month != want {
                return Err("unexpected partition month order");
            }
            for (bi, block) in blocks.iter().enumerate() {
                let reports = block.decode_all().map_err(|_| "block failed to decode")?;
                for (off, report) in reports.into_iter().enumerate() {
                    index.entry(report.sample).or_default().push(Loc {
                        partition: pi as u16,
                        block: bi as u32,
                        offset: off as u32,
                    });
                }
            }
            partitions.push(Partition::from_blocks(month, blocks));
        }
        Ok(Self {
            inner: RwLock::new(Inner {
                partitions,
                index,
                sealed: true,
            }),
        })
    }

    /// Visits every stored report (unordered across samples).
    pub fn for_each_report(&self, mut f: impl FnMut(&ScanReport)) {
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before reading");
        for p in &inner.partitions {
            for block in p.blocks() {
                for r in block.decode_all().expect("sealed in-store block decodes") {
                    f(&r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{FileType, ReportKind, VerdictVec};

    fn report(sample: u64, date: Date, minute: i64) -> ScanReport {
        ScanReport {
            sample: SampleHash::from_ordinal(sample),
            file_type: FileType::Pdf,
            analysis_date: Timestamp::from_date_time(date, minute),
            last_submission_date: Timestamp::from_date(date),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts: VerdictVec::new(70),
        }
    }

    #[test]
    fn append_and_gather() {
        let store = ReportStore::new();
        store.append(&report(1, Date::new(2021, 6, 3), 10));
        store.append(&report(2, Date::new(2021, 6, 4), 10));
        store.append(&report(1, Date::new(2022, 1, 9), 10));
        store.append(&report(1, Date::new(2021, 5, 2), 10));
        store.seal();

        assert_eq!(store.report_count(), 4);
        assert_eq!(store.sample_count(), 2);
        let r1 = store.sample_reports(SampleHash::from_ordinal(1));
        assert_eq!(r1.len(), 3);
        // Sorted by time even though appended out of order.
        assert!(r1[0].analysis_date < r1[1].analysis_date);
        assert!(r1[1].analysis_date < r1[2].analysis_date);
        assert!(store
            .sample_reports(SampleHash::from_ordinal(99))
            .is_empty());
    }

    #[test]
    fn reports_land_in_their_month() {
        let store = ReportStore::new();
        store.append(&report(1, Date::new(2021, 5, 15), 0)); // month 0
        store.append(&report(2, Date::new(2022, 6, 15), 0)); // month 13
        store.append(&report(3, Date::new(2020, 1, 1), 0)); // catch-all
        store.seal();
        let stats = store.partition_stats();
        assert_eq!(stats.len(), 15);
        assert_eq!(stats[0].reports, 1);
        assert_eq!(stats[13].reports, 1);
        assert_eq!(stats[14].reports, 1);
        assert_eq!(stats[14].month, None);
        assert_eq!(stats[1].reports, 0);
    }

    #[test]
    fn group_by_sample_covers_everything() {
        let store = ReportStore::new();
        for i in 0..500u64 {
            store.append(&report(
                i % 50,
                Date::new(2021, 8, 1 + (i % 20) as u8),
                i as i64 % 1440,
            ));
        }
        store.seal();
        let groups = store.group_by_sample();
        assert_eq!(groups.len(), 50);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 500);
        for (hash, reports) in &groups {
            for w in reports.windows(2) {
                assert!(w[0].analysis_date <= w[1].analysis_date);
            }
            for r in reports {
                assert_eq!(r.sample, *hash);
            }
        }
        // Deterministic ordering.
        let again = store.group_by_sample();
        assert_eq!(groups.len(), again.len());
        assert!(groups.iter().zip(&again).all(|(a, b)| a.0 == b.0));
    }

    #[test]
    #[should_panic(expected = "append after seal")]
    fn append_after_seal_panics() {
        let store = ReportStore::new();
        store.seal();
        store.append(&report(1, Date::new(2021, 6, 1), 0));
    }

    #[test]
    #[should_panic(expected = "seal the store")]
    fn read_before_seal_panics() {
        let store = ReportStore::new();
        store.append(&report(1, Date::new(2021, 6, 1), 0));
        store.sample_reports(SampleHash::from_ordinal(1));
    }

    #[test]
    fn for_each_report_counts() {
        let store = ReportStore::new();
        for i in 0..37 {
            store.append(&report(i, Date::new(2021, 9, 9), i as i64));
        }
        store.seal();
        let mut n = 0;
        store.for_each_report(|_| n += 1);
        assert_eq!(n, 37);
    }
}
