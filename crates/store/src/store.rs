//! The report store: append path, per-sample index, iteration.
//!
//! Reports append into their analysis-month's partition; a per-sample
//! index records every report's location so per-sample trajectories can
//! be gathered later (the unit every analysis consumes). The paper's
//! pipeline does the same thing with MongoDB collections keyed by
//! sample hash.

use crate::block::{Block, ReportSink, SinkFn};
use crate::codec::ReportRow;
use crate::partition::{Loc, Partition, PartitionStats};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::Instant;
use vt_model::time::Month;
use vt_model::{SampleHash, ScanReport};
use vt_obs::{saturating_ns, Counter, Gauge, Histogram, Obs};

/// Why [`ReportStore::from_persisted`] rejected a partition layout.
///
/// These are *semantic* (layout-level) failures, distinct from the
/// byte-level corruption [`crate::persist::CorruptKind`] covers: the
/// container parsed, but its content is not a store this build can
/// host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The file holds a different partition count than the expected
    /// 14-months-plus-catch-all shape.
    PartitionCount {
        /// Partitions this build expects.
        expected: usize,
        /// Partitions the file declared.
        got: usize,
    },
    /// A partition's month label does not match the collection-window
    /// order (catch-all last).
    PartitionMonthOrder {
        /// Index of the offending partition.
        partition: usize,
    },
    /// A block failed to decode while re-deriving the per-sample index.
    BlockDecode {
        /// Partition holding the block.
        partition: usize,
        /// Block index within the partition.
        block: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::PartitionCount { expected, got } => {
                write!(
                    f,
                    "unexpected partition count: expected {expected}, got {got}"
                )
            }
            StoreError::PartitionMonthOrder { partition } => {
                write!(f, "partition {partition} is out of month order")
            }
            StoreError::BlockDecode { partition, block } => {
                write!(f, "block {block} of partition {partition} failed to decode")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Pre-registered [`vt_obs`] handles the store records into.
///
/// Handles are resolved once at attach time (the only time the obs
/// registry mutex is taken); every recording afterwards is a relaxed
/// atomic. A `Default` instance (or one attached from a disabled
/// [`Obs`]) never reads the clock and records nothing, so an
/// uninstrumented store pays only a branch per batch, not per report.
///
/// Metric names: `store/encode_ns` + `store/encoded_reports` on the
/// append path, `store/decode_ns` + `store/decoded_reports` on the
/// gather/iterate paths, and `store/sealed_bytes` / `store/sealed_blocks`
/// gauges set once at [`ReportStore::seal`].
#[derive(Debug, Clone, Default)]
pub struct StoreObs {
    enabled: bool,
    encode_ns: Histogram,
    encoded_reports: Counter,
    decode_ns: Histogram,
    decoded_reports: Counter,
    sealed_bytes: Gauge,
    sealed_blocks: Gauge,
}

impl StoreObs {
    /// Resolves the store's metric handles against `obs`. With a
    /// disabled registry this is `Default` — all handles no-ops.
    pub fn new(obs: &Obs) -> Self {
        if !obs.is_enabled() {
            return Self::default();
        }
        Self {
            enabled: true,
            encode_ns: obs.histogram("store/encode_ns"),
            encoded_reports: obs.counter("store/encoded_reports"),
            decode_ns: obs.histogram("store/decode_ns"),
            decoded_reports: obs.counter("store/decoded_reports"),
            sealed_bytes: obs.gauge("store/sealed_bytes"),
            sealed_blocks: obs.gauge("store/sealed_blocks"),
        }
    }

    /// Starts a timing measurement — `None` (no clock read) when
    /// disabled.
    #[inline]
    fn timer(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    #[inline]
    fn record_encode(&self, start: Option<Instant>, reports: u64) {
        if let Some(t) = start {
            self.encode_ns.observe(saturating_ns(t.elapsed()));
            self.encoded_reports.add(reports);
        }
    }

    #[inline]
    fn record_decode(&self, start: Option<Instant>, reports: u64) {
        if let Some(t) = start {
            self.decode_ns.observe(saturating_ns(t.elapsed()));
            self.decoded_reports.add(reports);
        }
    }
}

/// An in-process, compressed, month-partitioned report store.
#[derive(Debug)]
pub struct ReportStore {
    inner: RwLock<Inner>,
    obs: StoreObs,
}

#[derive(Debug)]
struct Inner {
    /// Partition 0..14 = the collection window months; last = catch-all.
    partitions: Vec<Partition>,
    index: HashMap<SampleHash, Vec<Loc>>,
    sealed: bool,
}

impl Default for ReportStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ReportStore {
    /// Creates an empty store with one partition per collection-window
    /// month plus a catch-all for out-of-window reports.
    pub fn new() -> Self {
        let mut partitions: Vec<Partition> = Month::collection_window()
            .map(|m| Partition::new(Some(m)))
            .collect();
        partitions.push(Partition::new(None));
        Self {
            inner: RwLock::new(Inner {
                partitions,
                index: HashMap::new(),
                sealed: false,
            }),
            obs: StoreObs::default(),
        }
    }

    /// [`new`](Self::new), with encode/decode instrumentation recorded
    /// into `obs` (see [`StoreObs`] for the metric names). Contents are
    /// identical to an uninstrumented store — the observability is
    /// write-only.
    pub fn with_obs(obs: &Obs) -> Self {
        let mut store = Self::new();
        store.obs = StoreObs::new(obs);
        store
    }

    /// Attaches (or replaces) the store's instrumentation after
    /// construction — the hook for stores built by
    /// [`from_persisted`](Self::from_persisted) / the persist readers,
    /// which have no `Obs` in scope.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = StoreObs::new(obs);
    }

    fn partition_for(month_index: Option<usize>, n: usize) -> usize {
        month_index.unwrap_or(n - 1)
    }

    /// Appends one report.
    ///
    /// # Panics
    /// Panics if the store was already sealed.
    pub fn append(&self, report: &ScanReport) {
        let start = self.obs.timer();
        let mut inner = self.inner.write();
        assert!(!inner.sealed, "append after seal");
        let n = inner.partitions.len();
        let pi = Self::partition_for(report.analysis_date.month().collection_index(), n);
        let (block, offset) = inner.partitions[pi].append(report);
        inner.index.entry(report.sample).or_default().push(Loc {
            partition: pi as u16,
            block,
            offset,
        });
        drop(inner);
        self.obs.record_encode(start, 1);
    }

    /// Appends a batch (one lock acquisition).
    pub fn append_batch(&self, reports: &[ScanReport]) {
        let start = self.obs.timer();
        let mut inner = self.inner.write();
        assert!(!inner.sealed, "append after seal");
        let n = inner.partitions.len();
        for report in reports {
            let pi = Self::partition_for(report.analysis_date.month().collection_index(), n);
            let (block, offset) = inner.partitions[pi].append(report);
            inner.index.entry(report.sample).or_default().push(Loc {
                partition: pi as u16,
                block,
                offset,
            });
        }
        drop(inner);
        self.obs.record_encode(start, reports.len() as u64);
    }

    /// Seals every partition. Must be called before reads; afterwards
    /// appends panic.
    pub fn seal(&self) {
        let mut inner = self.inner.write();
        for p in &mut inner.partitions {
            p.seal();
        }
        inner.sealed = true;
        if self.obs.enabled {
            let mut bytes = 0u64;
            let mut blocks = 0u64;
            for p in &inner.partitions {
                bytes += p.stats().stored_bytes;
                blocks += p.blocks().len() as u64;
            }
            self.obs.sealed_bytes.set_max(bytes);
            self.obs.sealed_blocks.set_max(blocks);
        }
    }

    /// Total number of reports stored.
    pub fn report_count(&self) -> u64 {
        self.inner.read().partitions.iter().map(|p| p.len()).sum()
    }

    /// Number of distinct samples.
    pub fn sample_count(&self) -> u64 {
        self.inner.read().index.len() as u64
    }

    /// Every distinct sample hash in the store, sorted ascending.
    ///
    /// Reads the per-sample index only — no block is decoded — so this
    /// is how a recovering daemon cheaply learns which samples a sealed
    /// segment already covers.
    pub fn sample_hashes(&self) -> Vec<SampleHash> {
        let mut hashes: Vec<SampleHash> = self.inner.read().index.keys().copied().collect();
        hashes.sort_unstable();
        hashes
    }

    /// Per-partition statistics, in window order (catch-all last).
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        self.inner
            .read()
            .partitions
            .iter()
            .map(|p| p.stats())
            .collect()
    }

    /// Gathers one sample's reports, sorted by analysis date.
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn sample_reports(&self, hash: SampleHash) -> Vec<ScanReport> {
        let start = self.obs.timer();
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before reading");
        let Some(locs) = inner.index.get(&hash) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(locs.len());
        let mut decoded = 0u64;
        // Decode each needed block once. Blocks reachable here were
        // either built by this store or integrity-checked at load time,
        // so a decode failure is a program error, not an input error.
        let mut cache: HashMap<(u16, u32), Vec<ScanReport>> = HashMap::new();
        for loc in locs {
            let block_reports = cache.entry((loc.partition, loc.block)).or_insert_with(|| {
                let reports = inner.partitions[loc.partition as usize].blocks()[loc.block as usize]
                    .decode_all()
                    .expect("sealed in-store block decodes");
                decoded += reports.len() as u64;
                reports
            });
            out.push(block_reports[loc.offset as usize]);
        }
        out.sort_by_key(|r| r.analysis_date);
        self.obs.record_decode(start, decoded);
        out
    }

    /// Iterates all reports grouped by sample, each group sorted by
    /// analysis date. Materializes the grouping (bulk-analysis path).
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn group_by_sample(&self) -> Vec<(SampleHash, Vec<ScanReport>)> {
        let start = self.obs.timer();
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before reading");
        let mut groups: HashMap<SampleHash, Vec<ScanReport>> =
            HashMap::with_capacity(inner.index.len());
        let mut decoded = 0u64;
        for p in &inner.partitions {
            for block in p.blocks() {
                block
                    .decode_into(&mut SinkFn(|row: &ReportRow| {
                        decoded += 1;
                        groups.entry(row.sample).or_default().push(row.to_report());
                    }))
                    .expect("sealed in-store block decodes");
            }
        }
        self.obs.record_decode(start, decoded);
        let mut out: Vec<(SampleHash, Vec<ScanReport>)> = groups.into_iter().collect();
        for (_, reports) in &mut out {
            reports.sort_by_key(|r| r.analysis_date);
        }
        // Deterministic order for reproducible analyses.
        out.sort_by_key(|(h, _)| *h);
        out
    }

    /// Snapshot of the sealed partitions for persistence:
    /// `(month, blocks)` per partition.
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn partitions_for_persist(&self) -> Vec<(Option<Month>, Vec<Block>)> {
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before persisting");
        inner
            .partitions
            .iter()
            .map(|p| (p.month(), p.blocks().to_vec()))
            .collect()
    }

    /// Rebuilds a sealed store from persisted partitions, re-deriving
    /// the per-sample index by decoding each block once. Returns a
    /// typed [`StoreError`] if the partition layout is not the expected
    /// 14-months-plus-catch-all shape.
    pub fn from_persisted(parts: Vec<(Option<Month>, Vec<Block>)>) -> Result<Self, StoreError> {
        let expected: Vec<Option<Month>> = Month::collection_window()
            .map(Some)
            .chain(std::iter::once(None))
            .collect();
        if parts.len() != expected.len() {
            return Err(StoreError::PartitionCount {
                expected: expected.len(),
                got: parts.len(),
            });
        }
        let mut partitions = Vec::with_capacity(parts.len());
        let mut index: HashMap<SampleHash, Vec<Loc>> = HashMap::new();
        for (pi, ((month, blocks), want)) in parts.into_iter().zip(expected).enumerate() {
            if month != want {
                return Err(StoreError::PartitionMonthOrder { partition: pi });
            }
            for (bi, block) in blocks.iter().enumerate() {
                // Only the sample hash is needed to rebuild the index —
                // stream the rows instead of materializing the reports.
                let mut off = 0u32;
                block
                    .decode_into(&mut SinkFn(|row: &ReportRow| {
                        index.entry(row.sample).or_default().push(Loc {
                            partition: pi as u16,
                            block: bi as u32,
                            offset: off,
                        });
                        off += 1;
                    }))
                    .map_err(|_| StoreError::BlockDecode {
                        partition: pi,
                        block: bi,
                    })?;
            }
            partitions.push(Partition::from_blocks(month, blocks));
        }
        Ok(Self {
            inner: RwLock::new(Inner {
                partitions,
                index,
                sealed: true,
            }),
            obs: StoreObs::default(),
        })
    }

    /// Visits every stored report (unordered across samples).
    ///
    /// Materializing adapter over [`for_each_row`](Self::for_each_row):
    /// one stack-local [`ScanReport`] per row, never a `Vec`.
    pub fn for_each_report(&self, mut f: impl FnMut(&ScanReport)) {
        self.for_each_row(&mut SinkFn(|row: &ReportRow| f(&row.to_report())));
    }

    /// Streams every stored row into `sink` in physical order —
    /// partitions in window order (catch-all last), blocks in append
    /// order, offsets ascending — without materializing [`ScanReport`]s.
    /// This is the zero-copy bulk-decode entry the columnar table build
    /// consumes; the ordering is part of the contract (arrival order is
    /// the tie-break key for equal-date reports).
    ///
    /// # Panics
    /// Panics if the store is not sealed.
    pub fn for_each_row(&self, sink: &mut impl ReportSink) {
        let start = self.obs.timer();
        let inner = self.inner.read();
        assert!(inner.sealed, "seal the store before reading");
        let mut decoded = 0u64;
        for p in &inner.partitions {
            for block in p.blocks() {
                decoded += block
                    .decode_into(sink)
                    .expect("sealed in-store block decodes") as u64;
            }
        }
        self.obs.record_decode(start, decoded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{FileType, ReportKind, VerdictVec};

    fn report(sample: u64, date: Date, minute: i64) -> ScanReport {
        ScanReport {
            sample: SampleHash::from_ordinal(sample),
            file_type: FileType::Pdf,
            analysis_date: Timestamp::from_date_time(date, minute),
            last_submission_date: Timestamp::from_date(date),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts: VerdictVec::new(70),
        }
    }

    #[test]
    fn append_and_gather() {
        let store = ReportStore::new();
        store.append(&report(1, Date::new(2021, 6, 3), 10));
        store.append(&report(2, Date::new(2021, 6, 4), 10));
        store.append(&report(1, Date::new(2022, 1, 9), 10));
        store.append(&report(1, Date::new(2021, 5, 2), 10));
        store.seal();

        assert_eq!(store.report_count(), 4);
        assert_eq!(store.sample_count(), 2);
        let r1 = store.sample_reports(SampleHash::from_ordinal(1));
        assert_eq!(r1.len(), 3);
        // Sorted by time even though appended out of order.
        assert!(r1[0].analysis_date < r1[1].analysis_date);
        assert!(r1[1].analysis_date < r1[2].analysis_date);
        assert!(store
            .sample_reports(SampleHash::from_ordinal(99))
            .is_empty());
    }

    #[test]
    fn reports_land_in_their_month() {
        let store = ReportStore::new();
        store.append(&report(1, Date::new(2021, 5, 15), 0)); // month 0
        store.append(&report(2, Date::new(2022, 6, 15), 0)); // month 13
        store.append(&report(3, Date::new(2020, 1, 1), 0)); // catch-all
        store.seal();
        let stats = store.partition_stats();
        assert_eq!(stats.len(), 15);
        assert_eq!(stats[0].reports, 1);
        assert_eq!(stats[13].reports, 1);
        assert_eq!(stats[14].reports, 1);
        assert_eq!(stats[14].month, None);
        assert_eq!(stats[1].reports, 0);
    }

    #[test]
    fn group_by_sample_covers_everything() {
        let store = ReportStore::new();
        for i in 0..500u64 {
            store.append(&report(
                i % 50,
                Date::new(2021, 8, 1 + (i % 20) as u8),
                i as i64 % 1440,
            ));
        }
        store.seal();
        let groups = store.group_by_sample();
        assert_eq!(groups.len(), 50);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 500);
        for (hash, reports) in &groups {
            for w in reports.windows(2) {
                assert!(w[0].analysis_date <= w[1].analysis_date);
            }
            for r in reports {
                assert_eq!(r.sample, *hash);
            }
        }
        // Deterministic ordering.
        let again = store.group_by_sample();
        assert_eq!(groups.len(), again.len());
        assert!(groups.iter().zip(&again).all(|(a, b)| a.0 == b.0));
    }

    #[test]
    #[should_panic(expected = "append after seal")]
    fn append_after_seal_panics() {
        let store = ReportStore::new();
        store.seal();
        store.append(&report(1, Date::new(2021, 6, 1), 0));
    }

    #[test]
    #[should_panic(expected = "seal the store")]
    fn read_before_seal_panics() {
        let store = ReportStore::new();
        store.append(&report(1, Date::new(2021, 6, 1), 0));
        store.sample_reports(SampleHash::from_ordinal(1));
    }

    #[test]
    fn obs_records_encode_and_decode_without_changing_content() {
        let obs = Obs::new();
        let store = ReportStore::with_obs(&obs);
        let plain = ReportStore::new();
        for i in 0..40u64 {
            let r = report(i % 8, Date::new(2021, 7, 1 + (i % 20) as u8), i as i64);
            store.append(&r);
            plain.append(&r);
        }
        store.seal();
        plain.seal();
        // Instrumentation is write-only: contents are identical.
        assert_eq!(store.group_by_sample(), plain.group_by_sample());
        let m = obs.snapshot();
        assert_eq!(m.counter("store/encoded_reports"), Some(40));
        assert_eq!(m.counter("store/decoded_reports"), Some(40));
        assert_eq!(m.histogram("store/encode_ns").map(|h| h.count), Some(40));
        assert_eq!(m.histogram("store/decode_ns").map(|h| h.count), Some(1));
        assert!(m.gauge("store/sealed_bytes").unwrap_or(0) > 0);
        assert!(m.gauge("store/sealed_blocks").unwrap_or(0) >= 1);
        // A disabled registry records nothing.
        let off = Obs::disabled();
        let silent = ReportStore::with_obs(&off);
        silent.append(&report(1, Date::new(2021, 6, 3), 10));
        silent.seal();
        assert!(off.snapshot().counters.is_empty());
    }

    #[test]
    fn from_persisted_rejects_a_wrong_partition_count() {
        let err = ReportStore::from_persisted(vec![(None, Vec::new())]).unwrap_err();
        assert_eq!(
            err,
            StoreError::PartitionCount {
                expected: 15,
                got: 1
            }
        );
        assert!(err.to_string().contains("partition count"));
    }

    #[test]
    fn for_each_report_counts() {
        let store = ReportStore::new();
        for i in 0..37 {
            store.append(&report(i, Date::new(2021, 9, 9), i as i64));
        }
        store.seal();
        let mut n = 0;
        store.for_each_report(|_| n += 1);
        assert_eq!(n, 37);
    }
}
