//! Dataset-overview statistics (§4.2): the inputs behind Table 2,
//! Table 3 and Fig. 1.
//!
//! [`DatasetStats`] accumulates, in one pass over (sample, reports)
//! pairs, everything the overview needs: per-file-type sample and
//! report counts, the reports-per-sample distribution, freshness, and
//! per-month volumes. It merges across threads.

use crate::partition::PartitionStats;
use vt_model::filetype::TOTAL_TYPE_COUNT;
use vt_model::time::Timestamp;
use vt_model::{FileType, SampleMeta, ScanReport};

/// One-pass dataset overview accumulator.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Samples per dense type index.
    samples_per_type: Vec<u64>,
    /// Reports per dense type index.
    reports_per_type: Vec<u64>,
    /// Histogram of reports-per-sample (bounded; overflow beyond).
    reports_per_sample: vt_stats::Histogram,
    /// Count of fresh samples (first submitted in the window).
    fresh_samples: u64,
    /// Total samples seen.
    total_samples: u64,
    /// Total reports seen.
    total_reports: u64,
    /// Largest report count observed for a single sample.
    max_reports_one_sample: u64,
    /// Window start used for freshness.
    window_start: Timestamp,
}

impl DatasetStats {
    /// Creates an empty accumulator; `window_start` anchors freshness.
    pub fn new(window_start: Timestamp) -> Self {
        Self {
            samples_per_type: vec![0; TOTAL_TYPE_COUNT],
            reports_per_type: vec![0; TOTAL_TYPE_COUNT],
            reports_per_sample: vt_stats::Histogram::new(64),
            fresh_samples: 0,
            total_samples: 0,
            total_reports: 0,
            max_reports_one_sample: 0,
            window_start,
        }
    }

    /// Accumulates one sample and its reports.
    pub fn record(&mut self, meta: &SampleMeta, reports: &[ScanReport]) {
        self.record_columns(
            meta.file_type.dense_index(),
            reports.len() as u64,
            meta.is_fresh(self.window_start),
        );
    }

    /// Accumulates one sample already reduced to its columnar facts —
    /// the dense file-type index, report count and freshness flag — so
    /// columnar passes feed the same accumulator without materializing
    /// `SampleMeta`/`ScanReport` values.
    pub fn record_columns(&mut self, dense_idx: usize, reports: u64, fresh: bool) {
        self.samples_per_type[dense_idx] += 1;
        self.reports_per_type[dense_idx] += reports;
        self.reports_per_sample.record(reports);
        if fresh {
            self.fresh_samples += 1;
        }
        self.total_samples += 1;
        self.total_reports += reports;
        self.max_reports_one_sample = self.max_reports_one_sample.max(reports);
    }

    /// Merges a partition of the dataset computed on another thread.
    pub fn merge(&mut self, other: &DatasetStats) {
        assert_eq!(self.window_start, other.window_start);
        for (a, b) in self
            .samples_per_type
            .iter_mut()
            .zip(&other.samples_per_type)
        {
            *a += b;
        }
        for (a, b) in self
            .reports_per_type
            .iter_mut()
            .zip(&other.reports_per_type)
        {
            *a += b;
        }
        self.reports_per_sample.merge(&other.reports_per_sample);
        self.fresh_samples += other.fresh_samples;
        self.total_samples += other.total_samples;
        self.total_reports += other.total_reports;
        self.max_reports_one_sample = self
            .max_reports_one_sample
            .max(other.max_reports_one_sample);
    }

    /// Total samples.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Total reports.
    pub fn total_reports(&self) -> u64 {
        self.total_reports
    }

    /// Fraction of fresh samples (paper: 91.76%).
    pub fn fresh_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.fresh_samples as f64 / self.total_samples as f64
        }
    }

    /// Sample count for one file type.
    pub fn samples_of(&self, ft: FileType) -> u64 {
        self.samples_per_type[ft.dense_index()]
    }

    /// Report count for one file type.
    pub fn reports_of(&self, ft: FileType) -> u64 {
        self.reports_per_type[ft.dense_index()]
    }

    /// Table 3 rows: `(type, samples, sample %, reports, report %)` for
    /// the top-20 named types plus NULL plus an aggregate Others row,
    /// ordered by descending sample count within the top-20.
    pub fn table3(&self) -> Vec<(String, u64, f64, u64, f64)> {
        let s_tot = self.total_samples.max(1) as f64;
        let r_tot = self.total_reports.max(1) as f64;
        let mut named: Vec<(String, u64, u64)> = FileType::TOP20
            .iter()
            .map(|&ft| (ft.name(), self.samples_of(ft), self.reports_of(ft)))
            .collect();
        named.sort_by_key(|&(_, s, _)| std::cmp::Reverse(s));
        let mut rows: Vec<(String, u64, f64, u64, f64)> = named
            .into_iter()
            .map(|(name, s, r)| {
                (
                    name,
                    s,
                    s as f64 / s_tot * 100.0,
                    r,
                    r as f64 / r_tot * 100.0,
                )
            })
            .collect();
        let null_s = self.samples_of(FileType::Null);
        let null_r = self.reports_of(FileType::Null);
        rows.push((
            "NULL".into(),
            null_s,
            null_s as f64 / s_tot * 100.0,
            null_r,
            null_r as f64 / r_tot * 100.0,
        ));
        let named_s: u64 = FileType::TOP20
            .iter()
            .map(|&ft| self.samples_of(ft))
            .sum::<u64>()
            + null_s;
        let named_r: u64 = FileType::TOP20
            .iter()
            .map(|&ft| self.reports_of(ft))
            .sum::<u64>()
            + null_r;
        let other_s = self.total_samples - named_s;
        let other_r = self.total_reports - named_r;
        rows.push((
            "Others".into(),
            other_s,
            other_s as f64 / s_tot * 100.0,
            other_r,
            other_r as f64 / r_tot * 100.0,
        ));
        rows
    }

    /// Fig. 1's CDF: fraction of samples with `<= n` reports.
    pub fn reports_per_sample_cdf(&self, n: u64) -> f64 {
        self.reports_per_sample.fraction_le(n)
    }

    /// The reports-per-sample histogram (for plotting).
    pub fn reports_per_sample_hist(&self) -> &vt_stats::Histogram {
        &self.reports_per_sample
    }

    /// Number of samples with more than one report (the paper's
    /// measurable subset: 63,999,984 of 571 M).
    pub fn multi_report_samples(&self) -> u64 {
        self.total_samples - self.reports_per_sample.count(1)
    }

    /// Largest report count observed for one sample.
    pub fn max_reports_one_sample(&self) -> u64 {
        self.max_reports_one_sample
    }
}

/// Renders Table 2 rows from partition stats: `(label, reports,
/// stored bytes, compression ratio)`, skipping empty partitions.
pub fn table2(stats: &[PartitionStats]) -> Vec<(String, u64, u64, f64)> {
    stats
        .iter()
        .filter(|p| p.reports > 0)
        .map(|p| {
            let label = match p.month {
                Some(m) => format!("{m} Reports"),
                None => "Out-of-window Reports".to_string(),
            };
            (label, p.reports, p.stored_bytes, p.compression_ratio())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Duration};
    use vt_model::{GroundTruth, ReportKind, SampleHash, VerdictVec};

    fn meta(i: u64, ft: FileType, fresh: bool) -> SampleMeta {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = if fresh {
            window + Duration::days(10)
        } else {
            window - Duration::days(10)
        };
        SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: ft,
            origin: first - Duration::days(2),
            first_submission: first,
            truth: GroundTruth::Benign,
        }
    }

    fn reports(meta: &SampleMeta, n: usize) -> Vec<ScanReport> {
        (0..n)
            .map(|k| ScanReport {
                sample: meta.hash,
                file_type: FileType::Pdf,
                analysis_date: meta.first_submission + Duration::days(k as i64),
                last_submission_date: meta.first_submission,
                times_submitted: 1,
                kind: ReportKind::Upload,
                verdicts: VerdictVec::new(70),
            })
            .collect()
    }

    #[test]
    fn record_and_query() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let mut d = DatasetStats::new(window);
        let m1 = meta(1, FileType::Win32Exe, true);
        d.record(&m1, &reports(&m1, 3));
        let m2 = meta(2, FileType::Pdf, false);
        d.record(&m2, &reports(&m2, 1));
        assert_eq!(d.total_samples(), 2);
        assert_eq!(d.total_reports(), 4);
        assert_eq!(d.fresh_fraction(), 0.5);
        assert_eq!(d.samples_of(FileType::Win32Exe), 1);
        assert_eq!(d.reports_of(FileType::Win32Exe), 3);
        assert_eq!(d.multi_report_samples(), 1);
        assert_eq!(d.max_reports_one_sample(), 3);
        assert_eq!(d.reports_per_sample_cdf(1), 0.5);
        assert_eq!(d.reports_per_sample_cdf(3), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let mut all = DatasetStats::new(window);
        let mut a = DatasetStats::new(window);
        let mut b = DatasetStats::new(window);
        for i in 0..20 {
            let m = meta(
                i,
                if i % 2 == 0 {
                    FileType::Zip
                } else {
                    FileType::Txt
                },
                i % 3 != 0,
            );
            let rs = reports(&m, 1 + (i % 4) as usize);
            all.record(&m, &rs);
            if i < 10 {
                a.record(&m, &rs);
            } else {
                b.record(&m, &rs);
            }
        }
        a.merge(&b);
        assert_eq!(a.total_samples(), all.total_samples());
        assert_eq!(a.total_reports(), all.total_reports());
        assert_eq!(a.fresh_fraction(), all.fresh_fraction());
        assert_eq!(a.samples_of(FileType::Zip), all.samples_of(FileType::Zip));
    }

    #[test]
    fn table3_rows_are_complete() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let mut d = DatasetStats::new(window);
        for i in 0..50 {
            let ft = match i % 4 {
                0 => FileType::Win32Exe,
                1 => FileType::Null,
                2 => FileType::Other(3),
                _ => FileType::Jpeg,
            };
            let m = meta(i, ft, true);
            d.record(&m, &reports(&m, 1));
        }
        let rows = d.table3();
        // 20 named + NULL + Others.
        assert_eq!(rows.len(), 22);
        let total_samples: u64 = rows.iter().map(|r| r.1).sum();
        assert_eq!(total_samples, 50);
        let total_pct: f64 = rows.iter().map(|r| r.2).sum();
        assert!((total_pct - 100.0).abs() < 1e-9);
        // Sorted descending among the top-20 block.
        for w in rows[..20].windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
