//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) for block checksums.
//!
//! The `VTSTORE2` container stores one CRC per block so a reader can
//! detect payload corruption *before* attempting to decode, and a
//! salvage pass can distinguish "this block is damaged" from "this block
//! is fine but a neighbour's length field lied". Implemented locally
//! (table-driven, one table built in a `const` context) so the store
//! carries no new dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor-out — the standard
/// zlib convention, so values can be cross-checked with any crc32 tool).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
