//! Report blocks: the unit of compression and decoding.
//!
//! Reports append into a [`BlockBuilder`]; when it reaches
//! [`BLOCK_CAPACITY`] reports (or the partition is sealed) it freezes
//! into an immutable [`Block`] of contiguous encoded bytes. Decoding is
//! sequential within a block (the delta chain requires it), which is the
//! access pattern every analysis uses.

use crate::codec::{decode_report_raw, encode_report, ReportRow};
use bytes::{Buf, Bytes, BytesMut};
use vt_model::ScanReport;

/// Streaming consumer of decoded reports.
///
/// [`Block::decode_into`] drives a sink instead of materializing a
/// `Vec<ScanReport>`, so bulk consumers (the columnar table build, the
/// persistence index rebuild) copy out only the columns they keep.
///
/// # Contract
///
/// * **Ordering** — rows arrive in block offset order (the physical
///   append order), exactly once each, with offsets `0..block.len()`.
///   Within one block, analysis dates are whatever the writer appended;
///   no sorting is applied.
/// * **Errors** — on a corrupt block the sink has already observed every
///   row *before* the corrupt one; the decoder stops at the first bad
///   report and returns [`BlockDecodeError`]. Callers that need
///   all-or-nothing semantics must buffer (as [`Block::decode_all`]
///   does, discarding its partial `Vec` on error) or pre-[`Block::verify`].
/// * **Borrowing** — the `&ReportRow` is only valid for the duration of
///   the call; sinks copy out what they keep.
pub trait ReportSink {
    /// Accepts the next decoded row.
    fn report(&mut self, row: &ReportRow);
}

/// Adapter that lets a closure act as a [`ReportSink`].
///
/// (A blanket `impl<F: FnMut(&ReportRow)> ReportSink for F` would
/// conflict with the `Vec<ScanReport>` impl under coherence rules, so
/// closures wrap in this named struct instead.)
pub struct SinkFn<F>(pub F);

impl<F: FnMut(&ReportRow)> ReportSink for SinkFn<F> {
    fn report(&mut self, row: &ReportRow) {
        (self.0)(row);
    }
}

/// The materializing sink: collects rows as [`ScanReport`]s.
impl ReportSink for Vec<ScanReport> {
    fn report(&mut self, row: &ReportRow) {
        self.push(row.to_report());
    }
}

/// A block's bytes failed to decode — either a report is corrupt or the
/// byte stream does not end exactly at the last report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDecodeError {
    /// Index of the report whose decode failed (== the block's report
    /// count when the failure is trailing garbage after a clean decode).
    pub report_index: u32,
    /// Reports claimed by the block header.
    pub report_count: u32,
}

impl std::fmt::Display for BlockDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.report_index == self.report_count {
            write!(f, "trailing bytes after {} reports", self.report_count)
        } else {
            write!(
                f,
                "corrupt block at report {}/{}",
                self.report_index, self.report_count
            )
        }
    }
}

impl std::error::Error for BlockDecodeError {}

/// Reports per block. Big enough to amortize per-block overhead, small
/// enough that decoding a block to reach one report stays cheap.
pub const BLOCK_CAPACITY: usize = 1024;

/// An immutable, encoded run of reports.
#[derive(Debug, Clone)]
pub struct Block {
    data: Bytes,
    len: u32,
}

impl Block {
    /// Number of reports in the block.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the block holds no reports.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Reconstructs a block from its raw parts (the persistence path).
    /// Call [`Block::verify`] before trusting untrusted bytes.
    pub fn from_parts(data: Bytes, len: u32) -> Self {
        Self { data, len }
    }

    /// The encoded bytes (for persistence).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Streams every report in the block into `sink`, in offset order,
    /// without materializing [`ScanReport`]s. Returns the number of rows
    /// delivered. Fails (instead of panicking) when the bytes are corrupt
    /// or do not end exactly at the last report; on failure the sink has
    /// already seen every row before the corrupt one (see [`ReportSink`]).
    pub fn decode_into(&self, sink: &mut impl ReportSink) -> Result<u32, BlockDecodeError> {
        let mut cur = &self.data[..];
        let mut prev = 0i64;
        for i in 0..self.len {
            let (row, p) = decode_report_raw(&mut cur, prev).ok_or(BlockDecodeError {
                report_index: i,
                report_count: self.len,
            })?;
            sink.report(&row);
            prev = p;
        }
        if cur.has_remaining() {
            return Err(BlockDecodeError {
                report_index: self.len,
                report_count: self.len,
            });
        }
        Ok(self.len)
    }

    /// Checked decode: true iff the bytes decode to exactly `len`
    /// reports with nothing left over.
    pub fn verify(&self) -> bool {
        self.decode_into(&mut SinkFn(|_: &ReportRow| {})).is_ok()
    }

    /// Decodes every report in the block, materialized. Thin adapter over
    /// [`Block::decode_into`] with a `Vec<ScanReport>` sink; the partial
    /// `Vec` is discarded on error, giving all-or-nothing semantics.
    pub fn decode_all(&self) -> Result<Vec<ScanReport>, BlockDecodeError> {
        // Cap the pre-allocation by what the bytes could possibly hold:
        // a corrupt header may claim billions of reports.
        let plausible =
            (self.data.len() as u64 / crate::codec::MIN_ENCODED_REPORT_BYTES.max(1)) as usize;
        let mut out = Vec::with_capacity((self.len as usize).min(plausible + 1));
        self.decode_into(&mut out)?;
        Ok(out)
    }
}

/// An open block accepting appends.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: BytesMut,
    len: u32,
    prev_analysis: i64,
}

impl BlockBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of reports appended so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// True when the block has reached capacity and should be sealed.
    pub fn is_full(&self) -> bool {
        self.len as usize >= BLOCK_CAPACITY
    }

    /// Appends one report. Returns the offset (report index within the
    /// block) it was stored at.
    pub fn push(&mut self, report: &ScanReport) -> u32 {
        let offset = self.len;
        encode_report(&mut self.buf, report, self.prev_analysis);
        self.prev_analysis = report.analysis_date.0;
        self.len += 1;
        offset
    }

    /// Freezes into an immutable [`Block`], resetting the builder.
    pub fn seal(&mut self) -> Block {
        let data = std::mem::take(&mut self.buf).freeze();
        let len = self.len;
        self.len = 0;
        self.prev_analysis = 0;
        Block { data, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::{FileType, ReportKind, SampleHash, Timestamp, VerdictVec};

    fn report(i: u64) -> ScanReport {
        ScanReport {
            sample: SampleHash::from_ordinal(i),
            file_type: FileType::Pdf,
            analysis_date: Timestamp(1_000 + i as i64 * 7),
            last_submission_date: Timestamp(1_000 + i as i64 * 7),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts: VerdictVec::new(70),
        }
    }

    #[test]
    fn build_seal_decode() {
        let mut b = BlockBuilder::new();
        assert!(b.is_empty());
        for i in 0..10 {
            assert_eq!(b.push(&report(i)), i as u32);
        }
        assert_eq!(b.len(), 10);
        let block = b.seal();
        assert!(b.is_empty(), "builder resets after seal");
        assert_eq!(block.len(), 10);
        let decoded = block.decode_all().expect("clean block decodes");
        for (i, r) in decoded.iter().enumerate() {
            assert_eq!(r, &report(i as u64));
        }
    }

    #[test]
    fn seal_resets_delta_chain() {
        let mut b = BlockBuilder::new();
        b.push(&report(5));
        let first = b.seal();
        b.push(&report(6));
        let second = b.seal();
        assert_eq!(first.decode_all().unwrap()[0], report(5));
        assert_eq!(second.decode_all().unwrap()[0], report(6));
    }

    #[test]
    fn capacity_flag() {
        let mut b = BlockBuilder::new();
        for i in 0..BLOCK_CAPACITY as u64 {
            assert!(!b.is_full());
            b.push(&report(i));
        }
        assert!(b.is_full());
    }

    #[test]
    fn empty_block() {
        let mut b = BlockBuilder::new();
        let block = b.seal();
        assert!(block.is_empty());
        assert!(block.decode_all().unwrap().is_empty());
    }

    #[test]
    fn corrupt_block_decode_is_an_error() {
        let mut b = BlockBuilder::new();
        for i in 0..4 {
            b.push(&report(i));
        }
        let block = b.seal();
        // Truncated payload with the original report count.
        let bytes = Bytes::copy_from_slice(&block.raw_bytes()[..block.byte_len() - 3]);
        let bad = Block::from_parts(bytes, block.len() as u32);
        assert!(!bad.verify());
        let err = bad.decode_all().unwrap_err();
        assert!(err.report_index <= err.report_count);
        // Trailing garbage after a clean decode is also an error.
        let mut extended = block.raw_bytes().to_vec();
        extended.extend_from_slice(&[0xAB; 5]);
        let trailing = Block::from_parts(extended.into(), block.len() as u32);
        assert!(trailing.decode_all().is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The streaming sink sees exactly the rows `decode_all`
            /// materializes, in offset order, and every `ReportRow`
            /// accessor agrees with its materialized `ScanReport`.
            #[test]
            fn sink_rows_match_materialized_reports(
                ordinals in proptest::collection::vec(0u64..5_000, 1..60),
            ) {
                let reports: Vec<ScanReport> = ordinals.iter().map(|&i| report(i)).collect();
                let mut b = BlockBuilder::new();
                for r in &reports {
                    b.push(r);
                }
                let block = b.seal();
                let mut rows: Vec<(SampleHash, u32, i64)> = Vec::new();
                let n = block
                    .decode_into(&mut SinkFn(|row: &ReportRow| {
                        rows.push((row.sample, row.positives(), row.analysis));
                    }))
                    .expect("clean block decodes");
                prop_assert_eq!(n as usize, reports.len());
                let all = block.decode_all().expect("clean block decodes");
                prop_assert_eq!(all.len(), rows.len());
                for (r, (hash, positives, analysis)) in all.iter().zip(&rows) {
                    prop_assert_eq!(r.sample, *hash);
                    prop_assert_eq!(r.positives(), *positives);
                    prop_assert_eq!(r.analysis_date.0, *analysis);
                }
                prop_assert_eq!(&all, &reports);
            }

            /// Arbitrary single-byte corruption and truncation never
            /// panic the decoder: it returns Ok (the flip happened to
            /// stay decodable) or a structured error after delivering
            /// exactly the rows before the failure point.
            #[test]
            fn corrupt_bytes_never_panic(
                ordinals in proptest::collection::vec(0u64..5_000, 1..40),
                site in any::<u16>(),
                flip in 1u8..=255,
                cut in any::<u16>(),
            ) {
                let mut b = BlockBuilder::new();
                for &i in &ordinals {
                    b.push(&report(i));
                }
                let block = b.seal();
                let mut bytes = block.raw_bytes().to_vec();
                let site = site as usize % bytes.len();
                bytes[site] ^= flip;
                let cut_len = cut as usize % (bytes.len() + 1);
                for data in [
                    Bytes::copy_from_slice(&bytes),
                    Bytes::copy_from_slice(&bytes[..cut_len]),
                ] {
                    let bad = Block::from_parts(data, ordinals.len() as u32);
                    let mut seen = 0u32;
                    let res = bad.decode_into(&mut SinkFn(|_: &ReportRow| seen += 1));
                    match res {
                        Ok(n) => prop_assert_eq!(n, ordinals.len() as u32),
                        Err(e) => {
                            prop_assert!(e.report_index <= e.report_count);
                            prop_assert_eq!(seen, e.report_index);
                        }
                    }
                }
            }
        }
    }
}
