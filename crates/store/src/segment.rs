//! Sealed, append-ordered store *segments* — the unit the incremental
//! pipeline folds.
//!
//! A long-running collector cannot keep one monolithic dataset open: an
//! analysis snapshot would have to re-read everything ingested so far.
//! Instead the feed is cut into segments: a [`SegmentWriter`] appends
//! whole-sample report batches to an open [`ReportStore`] and seals a
//! [`Segment`] every `threshold` reports — always on a **sample
//! boundary**, never mid-trajectory, because the analysis fold algebra
//! (`vt-dynamics`' `Analysis::merge`) is only exact when segments
//! partition samples.
//!
//! Segments are append-ordered: each carries a monotonically increasing
//! sequence number assigned at seal time, and downstream folds must
//! consume them in that order (some stage partials are order-sensitive).
//!
//! On disk a segment reuses the whole `VTSTORE2` machinery — per-block
//! CRCs, salvage markers and all — behind an 8-byte segment magic and
//! the sequence number:
//!
//! ```text
//! magic "VTSEG001"
//! u64   sequence number (little-endian)
//! <VTSTORE2 container — see crate::persist>
//! ```
//!
//! [`read_segment`] is strict; [`read_segment_salvage`] recovers what a
//! damaged segment file still holds, exactly like
//! [`read_store_salvage`] does for monolithic stores.

use crate::persist::{
    read_store, read_store_salvage, write_store, CorruptKind, PersistError, RecoveryReport,
};
use crate::store::ReportStore;
use std::io::{self, Read, Write};
use vt_model::ScanReport;

const SEGMENT_MAGIC: &[u8; 8] = b"VTSEG001";

/// One sealed segment of the report stream: a read-only
/// [`ReportStore`] over a contiguous run of whole samples, plus its
/// position in the stream.
#[derive(Debug)]
pub struct Segment {
    seq: u64,
    store: ReportStore,
}

impl Segment {
    /// The segment's position in the stream (0-based, assigned in seal
    /// order by the writer).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The sealed store holding the segment's reports.
    pub fn store(&self) -> &ReportStore {
        &self.store
    }

    /// Consumes the segment, yielding its sealed store.
    pub fn into_store(self) -> ReportStore {
        self.store
    }

    /// Hashes of every whole sample sealed in this segment (sorted).
    /// What recovery replay walks to rebuild the sealed-sample set and
    /// the per-hash query index without touching report payloads.
    pub fn sample_hashes(&self) -> Vec<vt_model::SampleHash> {
        self.store.sample_hashes()
    }

    /// Reports sealed in this segment.
    pub fn report_count(&self) -> u64 {
        self.store.report_count()
    }
}

/// Cuts an append-ordered report stream into sealed [`Segment`]s of
/// roughly `threshold` reports each, never splitting a sample.
///
/// ```
/// use vt_store::SegmentWriter;
///
/// let mut writer = SegmentWriter::new(100);
/// // ... writer.push_sample(&reports) per sample, in stream order ...
/// let tail = writer.finish();
/// assert!(tail.is_none(), "nothing was pushed");
/// ```
#[derive(Debug)]
pub struct SegmentWriter {
    threshold: u64,
    next_seq: u64,
    open: ReportStore,
}

impl SegmentWriter {
    /// A writer sealing every `threshold` reports (≥ 1; a sample whose
    /// batch crosses the threshold stays whole in the current segment).
    pub fn new(threshold: u64) -> Self {
        Self::resuming(threshold, 0)
    }

    /// A writer whose first sealed segment carries sequence number
    /// `next_seq` — the restart path: a recovering daemon replays its
    /// sealed segments and resumes the stream right after them, keeping
    /// the per-stream sequence numbering gapless across the crash.
    pub fn resuming(threshold: u64, next_seq: u64) -> Self {
        assert!(threshold >= 1, "segment threshold must be at least 1");
        Self {
            threshold,
            next_seq,
            open: ReportStore::new(),
        }
    }

    /// Reports appended to the currently open (unsealed) segment.
    pub fn open_reports(&self) -> u64 {
        self.open.report_count()
    }

    /// Segments sealed so far.
    pub fn sealed_segments(&self) -> u64 {
        self.next_seq
    }

    /// Appends one sample's full report batch to the open segment,
    /// sealing and returning it once it holds at least `threshold`
    /// reports. All of a sample's reports must arrive in one call —
    /// that is what keeps every sealed segment a union of whole
    /// trajectories.
    pub fn push_sample(&mut self, reports: &[ScanReport]) -> Option<Segment> {
        self.open.append_batch(reports);
        if self.open.report_count() >= self.threshold {
            return Some(self.seal());
        }
        None
    }

    /// Seals whatever the open segment holds, if anything — the stream
    /// tail that never reached the threshold.
    pub fn finish(mut self) -> Option<Segment> {
        if self.open.report_count() == 0 {
            return None;
        }
        Some(self.seal())
    }

    fn seal(&mut self) -> Segment {
        let store = std::mem::take(&mut self.open);
        store.seal();
        let seq = self.next_seq;
        self.next_seq += 1;
        Segment { seq, store }
    }
}

/// Serializes a sealed segment: segment magic, sequence number, then
/// the standard `VTSTORE2` container.
///
/// # Panics
/// Panics if the segment's store is not sealed (writers only produce
/// sealed segments; this guards hand-built ones).
pub fn write_segment(segment: &Segment, w: &mut impl Write) -> io::Result<()> {
    w.write_all(SEGMENT_MAGIC)?;
    w.write_all(&segment.seq.to_le_bytes())?;
    write_store(&segment.store, w)
}

fn read_segment_header(r: &mut impl Read) -> Result<u64, PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != SEGMENT_MAGIC {
        return Err(PersistError::Corrupt(CorruptKind::BadMagic));
    }
    let mut seq = [0u8; 8];
    r.read_exact(&mut seq)?;
    Ok(u64::from_le_bytes(seq))
}

/// Loads a segment file strictly: bad magic, bad markers, CRC
/// mismatches or undecodable blocks abort the load (see
/// [`read_store`]).
pub fn read_segment(r: &mut impl Read) -> Result<Segment, PersistError> {
    let seq = read_segment_header(r)?;
    let store = read_store(r)?;
    Ok(Segment { seq, store })
}

/// Loads as much of a (possibly damaged) segment file as possible,
/// reusing the `VTSTORE2` salvage reader: damaged blocks are skipped,
/// framing is re-synchronized on the next marker, and the
/// [`RecoveryReport`] says what was lost. Errors only when the segment
/// header itself is unreadable.
pub fn read_segment_salvage(r: &mut impl Read) -> Result<(Segment, RecoveryReport), PersistError> {
    let seq = read_segment_header(r)?;
    let (store, report) = read_store_salvage(r)?;
    Ok((Segment { seq, store }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{FileType, ReportKind, SampleHash, VerdictVec};

    fn sample_batch(sample: u64, reports: usize) -> Vec<ScanReport> {
        (0..reports)
            .map(|i| ScanReport {
                sample: SampleHash::from_ordinal(sample),
                file_type: FileType::Pdf,
                analysis_date: Timestamp::from_date(Date::new(2021, 7, 1 + (i % 28) as u8)),
                last_submission_date: Timestamp::from_date(Date::new(2021, 7, 1)),
                times_submitted: 1,
                kind: ReportKind::Upload,
                verdicts: VerdictVec::new(70),
            })
            .collect()
    }

    #[test]
    fn seals_on_sample_boundaries_with_ordered_seqs() {
        let mut writer = SegmentWriter::new(10);
        let mut sealed = Vec::new();
        for sample in 0..20u64 {
            // 3 reports per sample: seals land mid-threshold but never
            // mid-sample.
            if let Some(seg) = writer.push_sample(&sample_batch(sample, 3)) {
                sealed.push(seg);
            }
        }
        if let Some(tail) = writer.finish() {
            sealed.push(tail);
        }
        assert!(sealed.len() > 1, "threshold must have cut the stream");
        let total: u64 = sealed.iter().map(|s| s.store().report_count()).sum();
        assert_eq!(total, 60);
        for (i, seg) in sealed.iter().enumerate() {
            assert_eq!(seg.seq(), i as u64);
            // Whole samples only: every sample's 3 reports live in one
            // segment.
            for (_, reports) in seg.store().group_by_sample() {
                assert_eq!(reports.len(), 3);
            }
            assert!(
                seg.store().report_count() >= 10 || i == sealed.len() - 1,
                "only the tail may be under threshold"
            );
        }
    }

    #[test]
    fn empty_writer_finishes_to_nothing() {
        assert!(SegmentWriter::new(5).finish().is_none());
        let mut writer = SegmentWriter::new(5);
        assert_eq!(writer.open_reports(), 0);
        assert_eq!(writer.sealed_segments(), 0);
        let seg = writer
            .push_sample(&sample_batch(0, 7))
            .expect("over threshold");
        assert_eq!(seg.seq(), 0);
        assert_eq!(writer.sealed_segments(), 1);
        assert!(writer.finish().is_none(), "nothing left after the seal");
    }

    #[test]
    fn segment_roundtrips_through_disk_format() {
        let mut writer = SegmentWriter::new(50);
        for sample in 0..30u64 {
            let _ = writer.push_sample(&sample_batch(sample, 2));
        }
        let seg = writer.finish().expect("tail segment");
        let mut buf = Vec::new();
        write_segment(&seg, &mut buf).expect("write");
        assert_eq!(&buf[..8], SEGMENT_MAGIC);

        let loaded = read_segment(&mut buf.as_slice()).expect("read");
        assert_eq!(loaded.seq(), seg.seq());
        assert_eq!(loaded.store().report_count(), seg.store().report_count());
        for sample in 0..30u64 {
            let hash = SampleHash::from_ordinal(sample);
            assert_eq!(
                loaded.store().sample_reports(hash),
                seg.store().sample_reports(hash)
            );
        }

        let (salvaged, report) = read_segment_salvage(&mut buf.as_slice()).expect("salvage");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(salvaged.seq(), seg.seq());
        assert_eq!(salvaged.store().report_count(), seg.store().report_count());
    }

    #[test]
    fn corrupt_segment_salvages_with_loss_reported() {
        let mut writer = SegmentWriter::new(1_000_000);
        for sample in 0..400u64 {
            let _ = writer.push_sample(&sample_batch(sample, 6));
        }
        let seg = writer.finish().expect("tail segment");
        let mut buf = Vec::new();
        write_segment(&seg, &mut buf).expect("write");
        // Flip a payload byte well past the headers.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(read_segment(&mut buf.as_slice()).is_err(), "strict rejects");
        let (salvaged, report) = read_segment_salvage(&mut buf.as_slice()).expect("salvage");
        assert_eq!(salvaged.seq(), seg.seq());
        assert!(!report.is_clean());
        assert!(salvaged.store().report_count() < seg.store().report_count());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_segment(&mut &b"VTSTORE2abcdefgh"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(CorruptKind::BadMagic)),
            "{err}"
        );
        let err = read_segment_salvage(&mut &b"NOTASEG!aaaaaaaa"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(CorruptKind::BadMagic)),
            "{err}"
        );
    }
}
