//! Column codecs: LEB128 varints, zigzag deltas, and the packed report
//! encoding.
//!
//! A [`vt_model::ScanReport`] serialized naively costs
//! [`RAW_REPORT_BYTES`] bytes (16-byte hash, three timestamps/counters,
//! kind, and one byte per engine verdict — the shape a row-per-engine
//! document store pays). The packed encoding exploits the structure the
//! paper's own pipeline exploited: timestamps are near each other
//! (delta + zigzag + varint), `times_submitted` is small (varint), and
//! the verdict vector is two 70-bit bitmaps where *active* is nearly
//! all-ones (stored inverted) and *detected* is sparse for benign
//! samples.

use bytes::{Buf, BufMut, BytesMut};
use vt_model::filetype::TOTAL_TYPE_COUNT;
use vt_model::{FileType, ReportKind, SampleHash, ScanReport, Timestamp, VerdictVec};

/// Logical size of one report in the naive row encoding: 16 (hash)
/// + 2 (file type) + 8 (analysis date) + 8 (submission date)
/// + 4 (times submitted) + 1 (kind) + 70 (one byte per engine verdict).
pub const RAW_REPORT_BYTES: u64 = 16 + 2 + 8 + 8 + 4 + 1 + 70;

/// Smallest possible encoded report: 16 (hash) + 1 (type) + 1 (analysis
/// delta) + 1 (submission offset) + 1 (times submitted) + 1 (kind)
/// + 1 (engine count) + 4 (four bitmap varints).
///
/// Persistence readers use this to reject block headers whose claimed
/// report count cannot fit in the claimed byte length before allocating
/// anything.
pub const MIN_ENCODED_REPORT_BYTES: u64 = 16 + 1 + 1 + 1 + 1 + 1 + 1 + 4;

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint. Returns `None` on truncated input or overlong
/// encodings past 64 bits.
pub fn get_varint(buf: &mut impl Buf) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag encoding of a signed value (small magnitudes → small varints).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes one report, delta-compressing the analysis date against
/// `prev_analysis` (the previous report in the block; pass 0 for the
/// first).
pub fn encode_report(buf: &mut BytesMut, r: &ScanReport, prev_analysis: i64) {
    buf.put_u128(r.sample.0);
    put_varint(buf, r.file_type.dense_index() as u64);
    put_varint(buf, zigzag(r.analysis_date.0 - prev_analysis));
    // Submission date is at or before the analysis date, usually equal
    // (upload) or recent: store the non-negative backward offset.
    put_varint(buf, zigzag(r.analysis_date.0 - r.last_submission_date.0));
    put_varint(buf, r.times_submitted as u64);
    buf.put_u8(match r.kind {
        ReportKind::Upload => 0,
        ReportKind::Rescan => 1,
        ReportKind::Report => 2,
    });
    let (active, detected) = r.verdicts.raw();
    buf.put_u8(r.verdicts.engine_count() as u8);
    // Active is nearly all-ones: store the inverted mask (sparse).
    let ec = r.verdicts.engine_count();
    let full = full_mask(ec);
    put_varint(buf, !active[0] & full.0);
    put_varint(buf, !active[1] & full.1);
    put_varint(buf, detected[0]);
    put_varint(buf, detected[1]);
}

/// One decoded report as plain column values — no `VerdictVec`, no heap.
///
/// This is what the wire format actually carries; [`ScanReport`] is a
/// materialized view over it. Streaming consumers ([`crate::ReportSink`])
/// receive rows by reference and copy out only the columns they keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportRow {
    /// The sample this report describes.
    pub sample: SampleHash,
    /// Dense file-type index, `< TOTAL_TYPE_COUNT` (validated on decode).
    pub type_idx: u16,
    /// Analysis date in raw timestamp minutes.
    pub analysis: i64,
    /// Last submission date in raw timestamp minutes.
    pub submission: i64,
    /// Times the sample was submitted as of this report.
    pub times_submitted: u32,
    /// How the report was produced.
    pub kind: ReportKind,
    /// Engines in the fleet at scan time, `<= MAX_ENGINES`.
    pub engine_count: u8,
    /// Bitmap of engines that returned a verdict (bit e = engine e).
    pub active: [u64; 2],
    /// Bitmap of engines that detected; always a subset of `active`
    /// (validated on decode).
    pub detected: [u64; 2],
}

impl ReportRow {
    /// AV-Rank: number of detecting engines.
    pub fn positives(&self) -> u32 {
        self.detected[0].count_ones() + self.detected[1].count_ones()
    }

    /// Materializes the row-struct view.
    pub fn to_report(&self) -> ScanReport {
        ScanReport {
            sample: self.sample,
            file_type: FileType::from_dense_index(self.type_idx as usize),
            analysis_date: Timestamp(self.analysis),
            last_submission_date: Timestamp(self.submission),
            times_submitted: self.times_submitted,
            kind: self.kind,
            verdicts: VerdictVec::from_raw(self.active, self.detected, self.engine_count as usize),
        }
    }
}

/// Decodes one report into plain column values (inverse of
/// [`encode_report`], minus the [`ScanReport`] materialization). Returns
/// the row and its analysis-date for use as the next delta base.
pub fn decode_report_raw(buf: &mut impl Buf, prev_analysis: i64) -> Option<(ReportRow, i64)> {
    if buf.remaining() < 16 {
        return None;
    }
    let sample = SampleHash(buf.get_u128());
    let type_idx = get_varint(buf)? as usize;
    if type_idx >= TOTAL_TYPE_COUNT {
        return None;
    }
    // Checked arithmetic: adversarial bytes can encode deltas that
    // overflow i64, which must surface as a decode failure, not a
    // debug-mode panic.
    let analysis = prev_analysis.checked_add(unzigzag(get_varint(buf)?))?;
    let submission = analysis.checked_sub(unzigzag(get_varint(buf)?))?;
    let times_submitted = u32::try_from(get_varint(buf)?).ok()?;
    if !buf.has_remaining() {
        return None;
    }
    let kind = match buf.get_u8() {
        0 => ReportKind::Upload,
        1 => ReportKind::Rescan,
        2 => ReportKind::Report,
        _ => return None,
    };
    if !buf.has_remaining() {
        return None;
    }
    let engine_count = buf.get_u8();
    if engine_count as usize > vt_model::engine::MAX_ENGINES {
        return None;
    }
    let full = full_mask(engine_count as usize);
    let inactive0 = get_varint(buf)?;
    let inactive1 = get_varint(buf)?;
    let detected0 = get_varint(buf)?;
    let detected1 = get_varint(buf)?;
    let active = [!inactive0 & full.0, !inactive1 & full.1];
    // Defensive: reject corrupt detected-without-active encodings.
    if detected0 & !active[0] != 0 || detected1 & !active[1] != 0 {
        return None;
    }
    let row = ReportRow {
        sample,
        type_idx: type_idx as u16,
        analysis,
        submission,
        times_submitted,
        kind,
        engine_count,
        active,
        detected: [detected0, detected1],
    };
    Some((row, analysis))
}

/// Decodes one report (inverse of [`encode_report`]). Returns the report
/// and its analysis-date for use as the next delta base.
///
/// Thin adapter over [`decode_report_raw`] that materializes the
/// [`ScanReport`]; streaming decoders use the raw form directly.
pub fn decode_report(buf: &mut impl Buf, prev_analysis: i64) -> Option<(ScanReport, i64)> {
    let (row, analysis) = decode_report_raw(buf, prev_analysis)?;
    Some((row.to_report(), analysis))
}

fn full_mask(engine_count: usize) -> (u64, u64) {
    let lo = if engine_count >= 64 {
        u64::MAX
    } else {
        (1u64 << engine_count) - 1
    };
    let hi = if engine_count <= 64 {
        0
    } else if engine_count >= 128 {
        u64::MAX
    } else {
        (1u64 << (engine_count - 64)) - 1
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vt_model::{EngineId, Verdict};

    #[test]
    fn varint_roundtrip_known() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut cur = buf.freeze();
            assert_eq!(get_varint(&mut cur), Some(v));
            assert!(!cur.has_remaining());
        }
    }

    #[test]
    fn varint_truncation_is_detected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1_000_000);
        let frozen = buf.freeze();
        let mut cut = frozen.slice(0..frozen.len() - 1);
        assert_eq!(get_varint(&mut cut), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert!(zigzag(-3) < 8);
    }

    fn sample_report(ordinal: u64) -> ScanReport {
        let mut verdicts = VerdictVec::new(70);
        for i in 0..70u8 {
            let v = match (ordinal + i as u64) % 5 {
                0 => Verdict::Malicious,
                4 => Verdict::Undetected,
                _ => Verdict::Benign,
            };
            verdicts.set(EngineId(i), v);
        }
        ScanReport {
            sample: SampleHash::from_ordinal(ordinal),
            file_type: FileType::from_dense_index(ordinal as usize % TOTAL_TYPE_COUNT),
            analysis_date: Timestamp(200_000 + ordinal as i64 * 37),
            last_submission_date: Timestamp(200_000 + ordinal as i64 * 37 - 1_440),
            times_submitted: (ordinal % 7) as u32 + 1,
            kind: match ordinal % 3 {
                0 => ReportKind::Upload,
                1 => ReportKind::Rescan,
                _ => ReportKind::Report,
            },
            verdicts,
        }
    }

    #[test]
    fn report_roundtrip_chain() {
        let reports: Vec<ScanReport> = (0..50).map(sample_report).collect();
        let mut buf = BytesMut::new();
        let mut prev = 0i64;
        for r in &reports {
            encode_report(&mut buf, r, prev);
            prev = r.analysis_date.0;
        }
        let mut cur = buf.freeze();
        let mut prev = 0i64;
        for expected in &reports {
            let (got, p) = decode_report(&mut cur, prev).expect("decode");
            assert_eq!(&got, expected);
            prev = p;
        }
        assert!(!cur.has_remaining());
    }

    #[test]
    fn packed_encoding_beats_raw() {
        let reports: Vec<ScanReport> = (0..1000).map(sample_report).collect();
        let mut buf = BytesMut::new();
        let mut prev = 0i64;
        for r in &reports {
            encode_report(&mut buf, r, prev);
            prev = r.analysis_date.0;
        }
        let packed = buf.len() as u64;
        let raw = RAW_REPORT_BYTES * reports.len() as u64;
        assert!(
            packed * 2 < raw,
            "packed {packed} should be well under half of raw {raw}"
        );
    }

    proptest! {
        #[test]
        fn varint_roundtrip(v in any::<u64>()) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut cur = buf.freeze();
            prop_assert_eq!(get_varint(&mut cur), Some(v));
        }

        #[test]
        fn zigzag_roundtrip_prop(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        #[test]
        fn report_roundtrip_prop(
            ordinal in 0u64..1_000_000,
            prev in 0i64..100_000_000,
            delta in -1_000_000i64..1_000_000,
            back in 0i64..1_000_000,
            ts in 1u32..100_000,
            pattern in proptest::collection::vec(0u8..3, 70..=70),
            type_idx in 0usize..TOTAL_TYPE_COUNT,
        ) {
            let verdicts: Vec<Verdict> = pattern.iter().map(|&p| match p {
                0 => Verdict::Benign,
                1 => Verdict::Malicious,
                _ => Verdict::Undetected,
            }).collect();
            let r = ScanReport {
                sample: SampleHash::from_ordinal(ordinal),
                file_type: FileType::from_dense_index(type_idx),
                analysis_date: Timestamp(prev + delta),
                last_submission_date: Timestamp(prev + delta - back),
                times_submitted: ts,
                kind: ReportKind::Rescan,
                verdicts: VerdictVec::from_verdicts(&verdicts),
            };
            let mut buf = BytesMut::new();
            encode_report(&mut buf, &r, prev);
            let mut cur = buf.freeze();
            let (got, next_prev) = decode_report(&mut cur, prev).expect("decode");
            prop_assert_eq!(got, r);
            prop_assert_eq!(next_prev, prev + delta);
            prop_assert!(!cur.has_remaining());
        }
    }
}
