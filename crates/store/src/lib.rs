//! Compressed, month-partitioned scan-report store.
//!
//! The paper's data engineering (§4.1) stores 847 M reports in MongoDB,
//! splitting sample info from scan results, keeping only relevant
//! fields, and compressing — reaching a 10.06× compression rate and the
//! per-month accounting of Table 2. This crate is that substrate as a
//! real, in-process storage engine:
//!
//! * [`codec`] — varint / zigzag-delta / packed-bitmap encoding of
//!   report columns.
//! * [`block`] — append → seal lifecycle of compressed report blocks.
//! * [`partition`] — one partition per calendar month of the collection
//!   window, with raw-vs-compressed byte accounting (Table 2's rows).
//! * [`store`] — [`store::ReportStore`]: the append path, the
//!   per-sample index, bulk iteration, and per-sample gather.
//! * [`dataset`] — dataset-overview statistics: file-type distribution
//!   (Table 3), reports-per-sample CDF (Fig. 1), monthly volumes
//!   (Table 2).
//! * [`persist`] / [`crc32`] — the on-disk `VTSTORE2` container:
//!   checksummed, marker-framed blocks, a strict reader for both format
//!   versions, and a salvage reader that recovers what a damaged file
//!   still holds.
//! * [`segment`] — sealed, append-ordered segments of the report
//!   stream: [`SegmentWriter`] cuts ingestion into whole-sample
//!   [`Segment`]s every N reports, each persistable through the same
//!   checksummed container, so the incremental pipeline folds O(segment)
//!   work per seal instead of recomputing the monolith.
//! * [`segdir`] — the serve tier's write-ahead log: a directory of
//!   durably persisted segments ([`DurableWriter`] fsyncs file and
//!   directory before a seal is visible) with a crash-recovery scan
//!   ([`SegmentDir::replay`]) that keeps each slot's clean prefix and
//!   quarantines what salvage cannot fully recover.
//!
//! The store is synchronous and single-writer / multi-reader
//! (`parking_lot` guards the append path), in line with the project's
//! threads-over-async design for CPU-bound batch work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod codec;
pub mod crc32;
pub mod dataset;
pub mod partition;
pub mod persist;
pub mod segdir;
pub mod segment;
pub mod store;

pub use block::{Block, BlockDecodeError, ReportSink, SinkFn};
pub use codec::ReportRow;
pub use dataset::DatasetStats;
pub use partition::PartitionStats;
pub use persist::{
    read_store, read_store_salvage, write_store, write_store_v1, CorruptKind, PartitionRecovery,
    PersistError, RecoveryReport, SalvageLabel,
};
pub use segdir::{DurableWriter, Replay, SegmentDir, SegmentFile};
pub use segment::{read_segment, read_segment_salvage, write_segment, Segment, SegmentWriter};
pub use store::{ReportStore, StoreError, StoreObs};
