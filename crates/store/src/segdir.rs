//! Directory-backed segment persistence — the serve tier's write-ahead
//! log.
//!
//! A long-running daemon cannot treat sealed segments as in-memory
//! ephemera: a crash mid-ingest would lose the whole epoch. This module
//! turns a directory into a crash-recoverable segment log:
//!
//! * [`SegmentDir`] owns the directory. [`SegmentDir::persist`] writes a
//!   sealed [`Segment`] to a temporary file, fsyncs the file, renames it
//!   into place, and fsyncs the directory — only then is the segment
//!   *durable*, and only durable segments may be published. The
//!   seal → fsync → publish ordering is the recovery protocol's one
//!   load-bearing invariant (DESIGN.md §11).
//! * [`DurableWriter`] couples a [`SegmentWriter`] to a `SegmentDir` so
//!   that a segment is on disk (file and directory both synced) before
//!   `push_sample` ever hands it back — a seal can never precede
//!   durability.
//! * [`SegmentDir::replay`] is the restart path: scan the directory,
//!   read every segment with the salvage reader, keep each slot's
//!   longest clean prefix (contiguous sequence numbers from 0, fully
//!   recovered payloads), and move everything after the first damaged or
//!   missing segment into a `quarantine/` subdirectory. The daemon
//!   serves from the clean prefix and re-ingests the rest instead of
//!   refusing to start.
//!
//! Segments are keyed by `(slot, seq)`: `slot` is the fixed hash
//! partition the serve tier routes samples through, `seq` the per-slot
//! seal order. File names are `seg-SSS-NNNNNNNNNN.vtseg`. A small
//! manifest records the slot count so a directory can never be replayed
//! under a different partitioning than it was written with (that would
//! silently break the clean-prefix property).

use crate::segment::{read_segment_salvage, write_segment, Segment, SegmentWriter};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use vt_model::ScanReport;

/// Manifest file name inside a segment directory.
const MANIFEST: &str = "segdir.manifest";
/// Manifest format tag.
const MANIFEST_TAG: &str = "VTSEGDIR1";
/// Quarantine subdirectory for segments replay could not fully recover.
const QUARANTINE: &str = "quarantine";

/// A directory of durable sealed segments, partitioned into a fixed
/// number of slots. See the module docs for the lifecycle.
#[derive(Debug, Clone)]
pub struct SegmentDir {
    root: PathBuf,
    slots: u32,
}

/// One segment file found by [`SegmentDir::scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFile {
    /// Hash-partition slot parsed from the file name.
    pub slot: u32,
    /// Per-slot sequence number parsed from the file name.
    pub seq: u64,
    /// Absolute path of the segment file.
    pub path: PathBuf,
}

/// The outcome of [`SegmentDir::replay`]: each slot's recovered clean
/// prefix, plus what had to be set aside.
#[derive(Debug)]
pub struct Replay {
    /// Per-slot clean prefixes, `slots.len()` == the directory's slot
    /// count, each inner vec in ascending contiguous `seq` order.
    pub slots: Vec<Vec<Segment>>,
    /// Segments recovered into the clean prefixes.
    pub recovered_segments: u64,
    /// Segment files moved into `quarantine/` (damaged, mis-numbered,
    /// or orphaned behind a gap).
    pub quarantined_segments: u64,
}

impl SegmentDir {
    /// Opens (creating if needed) a segment directory for `slots` hash
    /// partitions. Writes the manifest on first use; on reuse, a slot
    /// count that disagrees with the manifest is an
    /// [`io::ErrorKind::InvalidData`] error — replaying under a
    /// different partitioning would corrupt the recovery semantics.
    pub fn open(root: impl Into<PathBuf>, slots: u32) -> io::Result<SegmentDir> {
        assert!(slots >= 1, "a segment directory needs at least one slot");
        let root = root.into();
        fs::create_dir_all(&root)?;
        let manifest = root.join(MANIFEST);
        match fs::read_to_string(&manifest) {
            Ok(text) => {
                let expected = format!("{MANIFEST_TAG} slots={slots}\n");
                if text != expected {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "segment dir manifest mismatch: found {:?}, expected {:?}",
                            text.trim(),
                            expected.trim()
                        ),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::write(&manifest, format!("{MANIFEST_TAG} slots={slots}\n"))?;
                sync_dir(&root)?;
            }
            Err(e) => return Err(e),
        }
        Ok(SegmentDir { root, slots })
    }

    /// The directory this log lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fixed slot count recorded in the manifest.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Whether the directory holds any segment files (quarantined ones
    /// do not count).
    pub fn has_segments(&self) -> io::Result<bool> {
        Ok(!self.scan()?.is_empty())
    }

    /// Durably persists one sealed segment: write to `*.tmp`, fsync the
    /// file, rename into place, fsync the directory. Returns the final
    /// path. After this returns, a crash at any point leaves either the
    /// whole segment or (for an interrupted call) an ignorable `*.tmp`.
    pub fn persist(&self, slot: u32, segment: &Segment) -> io::Result<PathBuf> {
        assert!(slot < self.slots, "slot {slot} out of range");
        let final_path = self.root.join(segment_file_name(slot, segment.seq()));
        let tmp_path = final_path.with_extension("vtseg.tmp");
        let mut file = File::create(&tmp_path)?;
        let mut buf = Vec::new();
        write_segment(segment, &mut buf)?;
        file.write_all(&buf)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.root)?;
        Ok(final_path)
    }

    /// Lists the segment files present, sorted by `(slot, seq)`.
    /// Ignores the manifest, `*.tmp` leftovers, the quarantine
    /// subdirectory and anything else that does not parse as a segment
    /// file name.
    pub fn scan(&self) -> io::Result<Vec<SegmentFile>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let Some((slot, seq)) = parse_segment_file_name(&name.to_string_lossy()) else {
                continue;
            };
            out.push(SegmentFile {
                slot,
                seq,
                path: entry.path(),
            });
        }
        out.sort_by_key(|f| (f.slot, f.seq));
        Ok(out)
    }

    /// Recovers each slot's clean segment prefix and quarantines the
    /// rest. See the module docs for the policy; the short version:
    ///
    /// * a segment joins the clean prefix iff its sequence number is the
    ///   next expected one for its slot, its header agrees with its file
    ///   name, and the salvage reader recovers it **fully** (clean
    ///   [`crate::RecoveryReport`]);
    /// * the first violation in a slot quarantines that file and every
    ///   later file of the same slot (they are orphaned behind the gap —
    ///   folding across a hole would break the stream-prefix invariant
    ///   recovery correctness rests on);
    /// * slots whose files parse to a slot ≥ the manifest's count are
    ///   quarantined wholesale.
    ///
    /// Quarantined files are moved (not deleted) into `quarantine/`,
    /// preserving their names, so an operator can inspect them.
    pub fn replay(&self) -> io::Result<Replay> {
        let files = self.scan()?;
        let mut slots: Vec<Vec<Segment>> = (0..self.slots).map(|_| Vec::new()).collect();
        let mut recovered = 0u64;
        let mut quarantined = 0u64;
        // Per-slot: whether the clean prefix has already ended
        // (everything later in that slot quarantines).
        let mut broken = vec![false; self.slots as usize];
        for file in files {
            let slot = file.slot as usize;
            if file.slot >= self.slots || broken[slot] {
                self.quarantine_file(&file.path)?;
                quarantined += 1;
                continue;
            }
            let expected_seq = slots[slot].len() as u64;
            match load_fully_recovered(&file) {
                Some(segment) if file.seq == expected_seq && segment.seq() == expected_seq => {
                    slots[slot].push(segment);
                    recovered += 1;
                }
                _ => {
                    broken[slot] = true;
                    self.quarantine_file(&file.path)?;
                    quarantined += 1;
                }
            }
        }
        Ok(Replay {
            slots,
            recovered_segments: recovered,
            quarantined_segments: quarantined,
        })
    }

    fn quarantine_file(&self, path: &Path) -> io::Result<()> {
        let qdir = self.root.join(QUARANTINE);
        fs::create_dir_all(&qdir)?;
        let name = path.file_name().expect("scanned files have names");
        fs::rename(path, qdir.join(name))?;
        sync_dir(&self.root)?;
        Ok(())
    }
}

/// Reads one segment file with the salvage reader, accepting it only if
/// salvage recovered it fully (clean report). Any I/O or format error,
/// and any partial recovery, yields `None` — the caller quarantines.
fn load_fully_recovered(file: &SegmentFile) -> Option<Segment> {
    let mut reader = io::BufReader::new(File::open(&file.path).ok()?);
    let (segment, report) = read_segment_salvage(&mut reader).ok()?;
    report.is_clean().then_some(segment)
}

/// A [`SegmentWriter`] whose seals are durable: every segment returned
/// by [`DurableWriter::push_sample`] or [`DurableWriter::finish`] has
/// already been written, fsynced and directory-fsynced via
/// [`SegmentDir::persist`]. A publish can therefore never precede
/// durability — the caller only ever sees segments a restart would
/// recover.
#[derive(Debug)]
pub struct DurableWriter {
    dir: SegmentDir,
    slot: u32,
    inner: SegmentWriter,
}

impl DurableWriter {
    /// A durable writer for one slot of `dir`, sealing every
    /// `threshold` reports, with its first seal numbered `next_seq`
    /// (0 for a fresh stream; the clean-prefix length when resuming
    /// after [`SegmentDir::replay`]).
    pub fn new(dir: SegmentDir, slot: u32, threshold: u64, next_seq: u64) -> Self {
        assert!(slot < dir.slots(), "slot {slot} out of range");
        Self {
            dir,
            slot,
            inner: SegmentWriter::resuming(threshold, next_seq),
        }
    }

    /// Reports appended to the currently open (unsealed) segment.
    pub fn open_reports(&self) -> u64 {
        self.inner.open_reports()
    }

    /// Appends one sample's full report batch; if that seals a segment,
    /// persists it durably before returning it. An `Err` means the
    /// segment is **not** durable and must not be folded or published.
    pub fn push_sample(&mut self, reports: &[ScanReport]) -> io::Result<Option<Segment>> {
        match self.inner.push_sample(reports) {
            Some(segment) => {
                self.dir.persist(self.slot, &segment)?;
                Ok(Some(segment))
            }
            None => Ok(None),
        }
    }

    /// Seals, persists and returns the stream tail, if any reports are
    /// open.
    pub fn finish(self) -> io::Result<Option<Segment>> {
        match self.inner.finish() {
            Some(segment) => {
                self.dir.persist(self.slot, &segment)?;
                Ok(Some(segment))
            }
            None => Ok(None),
        }
    }
}

/// Fsyncs a directory so a just-renamed entry survives a crash.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn segment_file_name(slot: u32, seq: u64) -> String {
    format!("seg-{slot:03}-{seq:010}.vtseg")
}

fn parse_segment_file_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".vtseg")?;
    let (slot, seq) = rest.split_once('-')?;
    if slot.len() != 3 || seq.len() != 10 {
        return None;
    }
    Some((slot.parse().ok()?, seq.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{FileType, ReportKind, SampleHash, VerdictVec};

    fn sample_batch(sample: u64, reports: usize) -> Vec<ScanReport> {
        (0..reports)
            .map(|i| ScanReport {
                sample: SampleHash::from_ordinal(sample),
                file_type: FileType::Pdf,
                analysis_date: Timestamp::from_date(Date::new(2021, 7, 1 + (i % 28) as u8)),
                last_submission_date: Timestamp::from_date(Date::new(2021, 7, 1)),
                times_submitted: 1,
                kind: ReportKind::Upload,
                verdicts: VerdictVec::new(70),
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vt-segdir-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Seals `n` segments into slot `slot`, 4 samples × 3 reports each.
    fn fill_slot(dir: &SegmentDir, slot: u32, n: u64) {
        let mut writer = DurableWriter::new(dir.clone(), slot, 12, 0);
        let mut sealed = 0;
        let mut sample = u64::from(slot) * 10_000;
        while sealed < n {
            if writer
                .push_sample(&sample_batch(sample, 3))
                .expect("durable push")
                .is_some()
            {
                sealed += 1;
            }
            sample += 1;
        }
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(3, 17), "seg-003-0000000017.vtseg");
        assert_eq!(
            parse_segment_file_name("seg-003-0000000017.vtseg"),
            Some((3, 17))
        );
        for bogus in [
            "seg-3-17.vtseg",
            "seg-003-0000000017.vtseg.tmp",
            "segdir.manifest",
            "seg-003-0000000017.vtstore",
        ] {
            assert_eq!(parse_segment_file_name(bogus), None, "{bogus}");
        }
    }

    #[test]
    fn durable_writer_persists_before_returning_and_replay_recovers() {
        let root = temp_dir("durable");
        let dir = SegmentDir::open(&root, 2).expect("open");
        let mut writer = DurableWriter::new(dir.clone(), 0, 6, 0);
        let mut segs = Vec::new();
        for sample in 0..8u64 {
            if let Some(seg) = writer.push_sample(&sample_batch(sample, 3)).expect("push") {
                // The moment a seal is visible, its file is on disk.
                let path = root.join(segment_file_name(0, seg.seq()));
                assert!(path.is_file(), "{} missing at seal time", path.display());
                segs.push(seg);
            }
        }
        let tail = writer.finish().expect("finish");
        assert!(dir.has_segments().expect("scan"));

        let replay = dir.replay().expect("replay");
        assert_eq!(replay.quarantined_segments, 0);
        assert_eq!(
            replay.recovered_segments,
            segs.len() as u64 + u64::from(tail.is_some())
        );
        assert!(replay.slots[1].is_empty());
        for (i, seg) in replay.slots[0].iter().enumerate() {
            assert_eq!(seg.seq(), i as u64);
        }
        let total: u64 = replay.slots[0]
            .iter()
            .map(|s| s.store().report_count())
            .sum();
        assert_eq!(total, 24);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn replay_quarantines_damaged_segment_and_orphaned_suffix() {
        let root = temp_dir("quarantine");
        let dir = SegmentDir::open(&root, 2).expect("open");
        fill_slot(&dir, 0, 4);
        fill_slot(&dir, 1, 2);
        // Stray tmp files from an interrupted persist are ignored.
        fs::write(root.join("seg-000-0000000099.vtseg.tmp"), b"junk").expect("tmp");

        // Damage slot 0's seq 1 mid-payload: salvage recovers partially,
        // which is not good enough for the clean prefix.
        let victim = root.join(segment_file_name(0, 1));
        let mut bytes = fs::read(&victim).expect("read victim");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&victim, bytes).expect("rewrite victim");

        let replay = dir.replay().expect("replay");
        // Slot 0: seq 0 survives; seq 1 (damaged) and seqs 2..3
        // (orphaned behind the gap) quarantine. Slot 1 untouched.
        assert_eq!(replay.slots[0].len(), 1);
        assert_eq!(replay.slots[1].len(), 2);
        assert_eq!(replay.recovered_segments, 3);
        assert_eq!(replay.quarantined_segments, 3);
        for seq in [1u64, 2, 3] {
            let q = root.join(QUARANTINE).join(segment_file_name(0, seq));
            assert!(q.is_file(), "expected {} in quarantine", q.display());
        }
        // Quarantined files are out of the way: a second replay sees a
        // clean directory with the same prefix.
        let again = dir.replay().expect("second replay");
        assert_eq!(again.recovered_segments, 3);
        assert_eq!(again.quarantined_segments, 0);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn manifest_slot_count_is_enforced() {
        let root = temp_dir("manifest");
        let dir = SegmentDir::open(&root, 8).expect("open");
        assert_eq!(dir.slots(), 8);
        drop(dir);
        let reopened = SegmentDir::open(&root, 8).expect("same slot count reopens");
        assert_eq!(reopened.slots(), 8);
        let err = SegmentDir::open(&root, 4).expect_err("slot mismatch must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn replay_quarantines_out_of_range_slots_and_header_mismatches() {
        let root = temp_dir("misc");
        let dir = SegmentDir::open(&root, 1).expect("open");
        fill_slot(&dir, 0, 2);
        // A file claiming slot 7 in a 1-slot directory.
        fs::copy(
            root.join(segment_file_name(0, 0)),
            root.join("seg-007-0000000000.vtseg"),
        )
        .expect("copy");
        // A file whose name seq disagrees with its header seq.
        fs::copy(
            root.join(segment_file_name(0, 1)),
            root.join("seg-000-0000000005.vtseg"),
        )
        .expect("copy");
        let replay = dir.replay().expect("replay");
        assert_eq!(replay.slots[0].len(), 2);
        assert_eq!(replay.quarantined_segments, 2);
        fs::remove_dir_all(&root).expect("cleanup");
    }
}
