//! Bench-drift smoke gate for the zero-copy `table_build` kernel.
//!
//! Re-times the table build over the committed 500k-sample fixture and
//! fails (exit 1) if the zero-copy arena path regresses more than the
//! tolerated fraction against the `table_build_arena` baseline recorded
//! in `BENCH_pipeline.json`. A few timed iterations, minimum taken —
//! this is a smoke test against order-of-magnitude regressions
//! (an accidental clone, a lost reserve, a quadratic sort), not a
//! replacement for the full criterion run.
//!
//! Usage: `cargo run --release -p vt-bench --bin bench_drift [-- path]`
//!
//! * `path` — baseline JSON (default `BENCH_pipeline.json` in the
//!   working directory).
//! * `BENCH_DRIFT_TOLERANCE` — allowed regression fraction (default
//!   `0.25`). CI machines differ from the recording machine; raise the
//!   tolerance rather than skipping the gate.

use std::process::ExitCode;
use std::time::Instant;
use vt_bench::correlation_study;
use vt_dynamics::{DecodeArena, TrajectoryTable};
use vt_obs::{json, Obs};

const DEFAULT_BASELINE: &str = "BENCH_pipeline.json";
const ITERATIONS: u32 = 5;

fn baseline_ns(path: &str) -> Result<u64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    v.get("table_build_arena")
        .and_then(|t| t.get("1"))
        .and_then(|n| n.as_u64())
        .ok_or_else(|| format!("{path} has no table_build_arena.\"1\" member"))
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_BASELINE.to_string());
    let tolerance: f64 = std::env::var("BENCH_DRIFT_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.25);
    let baseline = match baseline_ns(&path) {
        Ok(ns) => ns,
        Err(e) => {
            eprintln!("bench_drift: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("bench_drift: generating the 500k-sample fixture...");
    let st = correlation_study();
    let ws = st.sim().config().window_start();
    let store = st.build_store();
    let mut arena = DecodeArena::new();

    // Warm-up (fills the arena to steady-state capacity), then the
    // timed minimum over a handful of iterations.
    arena.clear();
    store.for_each_row(&mut arena);
    let warm = TrajectoryTable::build_from_arena(&arena, ws, 1, Obs::noop());
    let samples = warm.len();
    drop(warm);

    let mut best = u64::MAX;
    for _ in 0..ITERATIONS {
        let t = Instant::now();
        arena.clear();
        store.for_each_row(&mut arena);
        let table = TrajectoryTable::build_from_arena(&arena, ws, 1, Obs::noop());
        let ns = t.elapsed().as_nanos() as u64;
        assert_eq!(table.len(), samples, "fixture changed mid-run");
        best = best.min(ns);
    }

    let limit = (baseline as f64 * (1.0 + tolerance)) as u64;
    eprintln!(
        "bench_drift: table_build_arena best-of-{ITERATIONS} = {:.1}ms, \
         baseline {:.1}ms, limit {:.1}ms (tolerance {:.0}%)",
        best as f64 / 1e6,
        baseline as f64 / 1e6,
        limit as f64 / 1e6,
        tolerance * 100.0,
    );
    if best > limit {
        eprintln!("bench_drift: FAIL — table build regressed past the tolerance");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_drift: OK");
    ExitCode::SUCCESS
}
