//! Bench-drift smoke gate for the hot serve-path kernels.
//!
//! Re-times two committed-baseline arms and fails (exit 1) if either
//! regresses more than the tolerated fraction against
//! `BENCH_pipeline.json`:
//!
//! * `table_build_arena` — the zero-copy table build over the
//!   500k-sample fixture (guards against an accidental clone, a lost
//!   reserve, a quadratic sort).
//! * `segment_fold.publish_last_segment` — the O(changed-slot) epoch
//!   publish over the 60k-sample fixture: one dirty-slot update of a
//!   warm [`vt_dynamics::SlotMergeTree`] plus finishing the cached root
//!   (guards against per-publish work creeping back to O(history) —
//!   a reintroduced partial clone, an O(rows) plane walk, a per-publish
//!   index merge).
//!
//! A third arm is self-relative rather than baseline-gated:
//! `alert_overhead` folds the 60k fixture with and without the
//! streaming drift detectors ([`vt_dynamics::AlertConfig`]) in the same
//! process and fails if detectors-on exceeds detectors-off by more than
//! `ALERT_OVERHEAD_TOLERANCE` (default `0.25`, the same smoke posture
//! as the baseline arms). This measures the detectors' cost on the
//! *bare fold* — four extra table passes against a fold whose own ten
//! stages are fused — so it is a regression canary, not the acceptance
//! bar: the ≤5% detectors-on ingest-throughput criterion is measured
//! where ingest actually runs, in `benches/serve_load.rs`
//! (`alert_overhead.overhead_ratio` in `BENCH_serve.json`).
//!
//! A few timed iterations, minimum taken — this is a smoke test against
//! order-of-magnitude regressions, not a replacement for the full
//! criterion run.
//!
//! Usage: `cargo run --release -p vt-bench --bin bench_drift [-- path]`
//!
//! * `path` — baseline JSON (default `BENCH_pipeline.json` in the
//!   working directory).
//! * `BENCH_DRIFT_TOLERANCE` — allowed regression fraction (default
//!   `0.25`). CI machines differ from the recording machine; raise the
//!   tolerance rather than skipping the gate.

use std::process::ExitCode;
use std::time::Instant;
use vt_bench::{correlation_study, study};
use vt_dynamics::{AlertConfig, DecodeArena, IncrementalStudy, SlotMergeTree, TrajectoryTable};
use vt_obs::{json, Obs};

const DEFAULT_BASELINE: &str = "BENCH_pipeline.json";
const ITERATIONS: u32 = 5;

fn lookup_ns(v: &json::Value, path: &str, keys: &[&str]) -> Result<u64, String> {
    let mut node = v;
    for k in keys {
        node = node
            .get(k)
            .ok_or_else(|| format!("{path} has no {} member", keys.join(".")))?;
    }
    node.as_u64()
        .ok_or_else(|| format!("{path}: {} is not an integer", keys.join(".")))
}

/// One gated arm: best-of-[`ITERATIONS`] against its baseline.
fn gate(name: &str, baseline: u64, tolerance: f64, mut iteration: impl FnMut() -> u64) -> bool {
    let mut best = u64::MAX;
    for _ in 0..ITERATIONS {
        best = best.min(iteration());
    }
    let limit = (baseline as f64 * (1.0 + tolerance)) as u64;
    eprintln!(
        "bench_drift: {name} best-of-{ITERATIONS} = {:.1}ms, \
         baseline {:.1}ms, limit {:.1}ms (tolerance {:.0}%)",
        best as f64 / 1e6,
        baseline as f64 / 1e6,
        limit as f64 / 1e6,
        tolerance * 100.0,
    );
    if best > limit {
        eprintln!("bench_drift: FAIL — {name} regressed past the tolerance");
        return false;
    }
    true
}

fn table_build_ok(baseline: u64, tolerance: f64) -> bool {
    eprintln!("bench_drift: generating the 500k-sample fixture...");
    let st = correlation_study();
    let ws = st.sim().config().window_start();
    let store = st.build_store();
    let mut arena = DecodeArena::new();

    // Warm-up (fills the arena to steady-state capacity), then the
    // timed minimum over a handful of iterations.
    arena.clear();
    store.for_each_row(&mut arena);
    let warm = TrajectoryTable::build_from_arena(&arena, ws, 1, Obs::noop());
    let samples = warm.len();
    drop(warm);

    gate("table_build_arena", baseline, tolerance, || {
        let t = Instant::now();
        arena.clear();
        store.for_each_row(&mut arena);
        let table = TrajectoryTable::build_from_arena(&arena, ws, 1, Obs::noop());
        let ns = t.elapsed().as_nanos() as u64;
        assert_eq!(table.len(), samples, "fixture changed mid-run");
        ns
    })
}

fn publish_ok(baseline: u64, tolerance: f64) -> bool {
    eprintln!("bench_drift: slot-routing the 60k-sample fixture...");
    const SLOTS: usize = 8;
    const SEGMENT_SAMPLES: usize = 5_000;
    let st = study();
    let ws = st.sim().config().window_start();
    // Route records to slots exactly as `vtld serve` shards them, fold
    // each slot's stream, and warm the merge tree with every leaf.
    let mut slot_records = vec![Vec::new(); SLOTS];
    for r in st.records() {
        slot_records[(r.meta.hash.0 % SLOTS as u128) as usize].push(r.clone());
    }
    let parts = st.build_store().partition_stats();
    let partials: Vec<_> = slot_records
        .iter()
        .map(|recs| {
            let mut inc = IncrementalStudy::new(st.sim().fleet(), ws).with_workers(4);
            for seg in recs.chunks(SEGMENT_SAMPLES) {
                inc.fold_segment(seg, Obs::noop());
            }
            inc.partials().cloned()
        })
        .collect();
    let mut tree = SlotMergeTree::new(SLOTS);
    for (slot, p) in partials.iter().enumerate() {
        let slot_parts = if slot == 0 { parts.clone() } else { Vec::new() };
        tree.update_slot(slot, p.clone(), slot_parts);
    }
    let samples = tree.root().map_or(0, |r| r.s_samples());

    gate("publish_last_segment", baseline, tolerance, || {
        let t = Instant::now();
        tree.update_slot(0, partials[0].clone(), parts.clone());
        let root = tree.root().expect("warm tree has a root");
        let results = root.finish(tree.root_partitions().to_vec(), Obs::noop());
        let ns = t.elapsed().as_nanos() as u64;
        assert_eq!(root.s_samples(), samples, "fixture changed mid-run");
        std::hint::black_box(results);
        ns
    })
}

/// Self-relative gate: the streaming drift detectors must cost no more
/// than `tolerance` extra on the segment-fold path. Both sides run in
/// this process on the same fixture, so no stored baseline (and no
/// machine drift) is involved.
fn alert_overhead_ok(tolerance: f64) -> bool {
    const SEGMENT_SAMPLES: usize = 5_000;
    eprintln!("bench_drift: folding the 60k-sample fixture with and without detectors...");
    let st = study();
    let ws = st.sim().config().window_start();
    let time_fold = |alerts: bool| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..ITERATIONS {
            let t = Instant::now();
            let mut inc = IncrementalStudy::new(st.sim().fleet(), ws).with_workers(4);
            if alerts {
                inc = inc.with_alerts(AlertConfig::default());
            }
            for seg in st.records().chunks(SEGMENT_SAMPLES) {
                inc.fold_segment(seg, Obs::noop());
            }
            std::hint::black_box(inc.take_alerts());
            best = best.min(t.elapsed().as_nanos() as u64);
        }
        best
    };
    let off = time_fold(false);
    let on = time_fold(true);
    let ratio = on as f64 / off as f64;
    eprintln!(
        "bench_drift: alert_overhead best-of-{ITERATIONS}: off {:.1}ms, on {:.1}ms \
         (×{ratio:.3}, tolerance ×{:.3})",
        off as f64 / 1e6,
        on as f64 / 1e6,
        1.0 + tolerance,
    );
    if ratio > 1.0 + tolerance {
        eprintln!("bench_drift: FAIL — drift detectors exceed the fold-overhead budget");
        return false;
    }
    true
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_BASELINE.to_string());
    let tolerance: f64 = std::env::var("BENCH_DRIFT_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.25);
    let baselines = (|| -> Result<(u64, u64), String> {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        let v = json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
        Ok((
            lookup_ns(&v, &path, &["table_build_arena", "1"])?,
            lookup_ns(&v, &path, &["segment_fold", "publish_last_segment"])?,
        ))
    })();
    let (table_baseline, publish_baseline) = match baselines {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_drift: {e}");
            return ExitCode::FAILURE;
        }
    };

    let alert_tolerance: f64 = std::env::var("ALERT_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.25);

    let mut ok = table_build_ok(table_baseline, tolerance);
    ok &= publish_ok(publish_baseline, tolerance);
    ok &= alert_overhead_ok(alert_tolerance);
    if !ok {
        return ExitCode::FAILURE;
    }
    eprintln!("bench_drift: OK");
    ExitCode::SUCCESS
}
