//! Shared fixtures for the benchmark suite.
//!
//! Every bench target regenerates one of the paper's tables or figures
//! over the same seeded study, so criterion timings compare the cost of
//! the analyses themselves, not dataset variance. [`study`] memoizes the
//! generated dataset per process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;
use vt_dynamics::freshdyn::{self, FreshDynamic};
use vt_dynamics::AnalysisCtx;
use vt_dynamics::Study;
use vt_dynamics::TrajectoryTable;
use vt_sim::SimConfig;

/// Samples in the benchmark dataset. Large enough that the analyses are
/// out of the noise floor, small enough for quick `cargo bench` runs.
pub const BENCH_SAMPLES: u64 = 60_000;

/// Benchmark seed.
pub const BENCH_SEED: u64 = 0xBE5C;

/// The memoized benchmark study.
pub fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(SimConfig::new(BENCH_SEED, BENCH_SAMPLES)))
}

/// The memoized fresh dynamic set *S* for the benchmark study.
pub fn fresh_dynamic() -> &'static FreshDynamic {
    static S: OnceLock<FreshDynamic> = OnceLock::new();
    S.get_or_init(|| {
        let st = study();
        freshdyn::build(st.records(), st.sim().config().window_start())
    })
}

/// The memoized columnar [`TrajectoryTable`] for the benchmark study.
pub fn table() -> &'static TrajectoryTable {
    static TABLE: OnceLock<TrajectoryTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let st = study();
        TrajectoryTable::build(st.records(), st.sim().config().window_start())
    })
}

/// Samples in the correlation-kernel benchmark dataset: sized so the
/// global correlation scope holds ≥ 100k scan rows (*S* retains ~0.22
/// reports per generated sample at this seed), which is the scale the
/// fused-kernel speedup claim is demonstrated at.
pub const CORR_BENCH_SAMPLES: u64 = 500_000;

/// The memoized large study for the fused correlation kernel bench.
/// Separate from [`study`] so the other bench targets keep their quick
/// fixture.
pub fn correlation_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(SimConfig::new(BENCH_SEED, CORR_BENCH_SAMPLES)))
}

/// The memoized fresh dynamic set *S* for [`correlation_study`].
pub fn correlation_fresh_dynamic() -> &'static FreshDynamic {
    static S: OnceLock<FreshDynamic> = OnceLock::new();
    S.get_or_init(|| {
        let st = correlation_study();
        freshdyn::build(st.records(), st.sim().config().window_start())
    })
}

/// The memoized columnar [`TrajectoryTable`] for [`correlation_study`].
pub fn correlation_table() -> &'static TrajectoryTable {
    static TABLE: OnceLock<TrajectoryTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let st = correlation_study();
        TrajectoryTable::build(st.records(), st.sim().config().window_start())
    })
}

/// An [`AnalysisCtx`] over the memoized benchmark [`study`], for bench
/// targets that exercise the unified [`vt_dynamics::Analysis`] stages.
pub fn bench_ctx() -> AnalysisCtx<'static> {
    let st = study();
    AnalysisCtx::new(
        st.records(),
        table(),
        fresh_dynamic(),
        st.sim().fleet(),
        st.sim().config().window_start(),
    )
}

/// An [`AnalysisCtx`] over the large [`correlation_study`].
pub fn correlation_ctx() -> AnalysisCtx<'static> {
    let st = correlation_study();
    AnalysisCtx::new(
        st.records(),
        correlation_table(),
        correlation_fresh_dynamic(),
        st.sim().fleet(),
        st.sim().config().window_start(),
    )
}
