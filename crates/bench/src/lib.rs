//! Shared fixtures for the benchmark suite.
//!
//! Every bench target regenerates one of the paper's tables or figures
//! over the same seeded study, so criterion timings compare the cost of
//! the analyses themselves, not dataset variance. [`study`] memoizes the
//! generated dataset per process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;
use vt_dynamics::freshdyn::{self, FreshDynamic};
use vt_dynamics::Study;
use vt_sim::SimConfig;

/// Samples in the benchmark dataset. Large enough that the analyses are
/// out of the noise floor, small enough for quick `cargo bench` runs.
pub const BENCH_SAMPLES: u64 = 60_000;

/// Benchmark seed.
pub const BENCH_SEED: u64 = 0xBE5C;

/// The memoized benchmark study.
pub fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(SimConfig::new(BENCH_SEED, BENCH_SAMPLES)))
}

/// The memoized fresh dynamic set *S* for the benchmark study.
pub fn fresh_dynamic() -> &'static FreshDynamic {
    static S: OnceLock<FreshDynamic> = OnceLock::new();
    S.get_or_init(|| {
        let st = study();
        freshdyn::build(st.records(), st.sim().config().window_start())
    })
}
