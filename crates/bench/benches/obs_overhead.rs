//! Observability overhead: the acceptance bar for the `vt-obs` layer is
//! that a fully instrumented analysis pass stays within 5% of the
//! uninstrumented one, and that a *disabled* `Obs` costs nothing
//! measurable (every handle is a no-op branch on an `Option`).
//!
//! Three arms over the same [`vt_bench::study`] fixture:
//!
//! * `obs_noop` — the default path, `Obs::noop()` threaded through.
//! * `obs_disabled_handles` — a freshly constructed disabled `Obs`,
//!   exercising the handle-resolution path without a live sink.
//! * `obs_enabled` — a live `Obs` recording every span, counter, and
//!   per-worker busy-time histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::{fresh_dynamic, study};
use vt_dynamics::par;
use vt_dynamics::pipeline::analyze_records_obs;
use vt_obs::Obs;

fn run_pass(partitions: &[vt_store::PartitionStats], obs: &Obs) {
    let study = study();
    black_box(analyze_records_obs(
        study.records(),
        partitions.to_vec(),
        study.sim().fleet(),
        study.sim().config().window_start(),
        par::default_workers(),
        obs,
    ));
}

fn obs_overhead(c: &mut Criterion) {
    // Warm the memoized fixtures and build the store once, outside the
    // timed region — the bench times the analysis pass, not storage.
    let _ = fresh_dynamic();
    let partitions = study().build_store().partition_stats();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("obs_noop", |b| {
        b.iter(|| run_pass(&partitions, Obs::noop()))
    });
    group.bench_function("obs_disabled_handles", |b| {
        let obs = Obs::disabled();
        b.iter(|| run_pass(&partitions, &obs))
    });
    group.bench_function("obs_enabled", |b| {
        let obs = Obs::new();
        b.iter(|| run_pass(&partitions, &obs))
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
