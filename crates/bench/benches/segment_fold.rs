//! Segment-fold cost: the incremental engine's O(segment) claim.
//!
//! The tentpole contract of [`vt_dynamics::IncrementalStudy`] is that
//! incorporating one sealed segment costs O(segment) — table + fold the
//! new records, merge fixed-size partials — while re-running the batch
//! pipeline costs O(everything seen so far). Four arms demonstrate it
//! over the memoized 60k-sample study cut into 5k-sample segments:
//!
//! * `fold_first_segment` — fold one segment into an empty study.
//! * `fold_last_segment` — fold the same-sized segment into a study
//!   that has already absorbed the other eleven. O(segment) means this
//!   arm matches `fold_first_segment`, not the amount of history.
//! * `full_recompute` — the batch pipeline over all twelve segments,
//!   which is what a naive daemon would re-run per seal (~12× the fold).
//! * `publish_results` — clone-and-finish of the cached partials, the
//!   per-seal cost of snapshotting [`StudyResults`] in `vtld serve`.
//!
//! Headline numbers land in `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::study;
use vt_dynamics::{analyze_records_obs, DecodeArena, IncrementalStudy, SampleRecord};
use vt_obs::Obs;
use vt_store::PartitionStats;

const SEGMENT_SAMPLES: usize = 5_000;
const WORKERS: usize = 4;

fn segments() -> Vec<&'static [SampleRecord]> {
    study().records().chunks(SEGMENT_SAMPLES).collect()
}

fn partitions() -> Vec<PartitionStats> {
    study().build_store().partition_stats()
}

fn fresh_study() -> IncrementalStudy<'static> {
    let st = study();
    IncrementalStudy::new(st.sim().fleet(), st.sim().config().window_start()).with_workers(WORKERS)
}

fn segment_fold(c: &mut Criterion) {
    let segs = segments();
    let mut group = c.benchmark_group("segment_fold");
    group.sample_size(20);

    group.bench_function("fold_first_segment", |b| {
        b.iter(|| {
            let mut inc = fresh_study();
            inc.fold_segment(black_box(segs[0]), Obs::noop());
            black_box(inc.segments())
        })
    });

    // All history but the last segment, folded once up front; each
    // iteration pays only the clone of the cached partials plus the
    // fold of the final segment.
    let mut warm = fresh_study();
    for seg in &segs[..segs.len() - 1] {
        warm.fold_segment(seg, Obs::noop());
    }
    let last = *segs.last().expect("bench study is non-empty");
    group.bench_function("fold_last_segment", |b| {
        b.iter(|| {
            let mut inc = warm.clone();
            inc.fold_segment(black_box(last), Obs::noop());
            black_box(inc.segments())
        })
    });

    // The zero-copy serve-ingest path: the same first segment as a
    // sealed store, folded through the reusable decode arena
    // (`fold_store`) — no `Vec<ScanReport>`, no `SampleRecord`.
    let seg_store = {
        let store = vt_store::ReportStore::new();
        for r in segs[0] {
            store.append_batch(&r.reports);
        }
        store.seal();
        store
    };
    let mut arena = DecodeArena::new();
    group.bench_function("fold_first_segment_store", |b| {
        b.iter(|| {
            let mut inc = fresh_study();
            inc.fold_store(black_box(&seg_store), &mut arena, Obs::noop());
            black_box(inc.segments())
        })
    });

    let parts = partitions();
    group.bench_function("full_recompute", |b| {
        let st = study();
        b.iter(|| {
            black_box(analyze_records_obs(
                black_box(st.records()),
                parts.clone(),
                st.sim().fleet(),
                st.sim().config().window_start(),
                WORKERS,
                Obs::noop(),
            ))
        })
    });

    let mut full = warm.clone();
    full.fold_segment(last, Obs::noop());
    group.bench_function("publish_results", |b| {
        b.iter(|| black_box(full.results(parts.clone(), Obs::noop())))
    });

    group.finish();
}

criterion_group!(benches, segment_fold);
criterion_main!(benches);
