//! Segment-fold cost: the incremental engine's O(segment) claim.
//!
//! The tentpole contract of [`vt_dynamics::IncrementalStudy`] is that
//! incorporating one sealed segment costs O(segment) — table + fold the
//! new records, merge fixed-size partials — while re-running the batch
//! pipeline costs O(everything seen so far). Four arms demonstrate it
//! over the memoized 60k-sample study cut into 5k-sample segments:
//!
//! * `fold_first_segment` — fold one segment into an empty study.
//! * `fold_last_segment` — fold the same-sized segment into a study
//!   that has already absorbed the other eleven. O(segment) means this
//!   arm matches `fold_first_segment`, not the amount of history.
//! * `full_recompute` — the batch pipeline over all twelve segments,
//!   which is what a naive daemon would re-run per seal (~12× the fold).
//! * `publish_results` — clone-and-finish of the cached partials, the
//!   per-seal cost of snapshotting [`StudyResults`] in `vtld serve`
//!   before the merge tree (kept as the flat-publish baseline).
//! * `publish_first_segment` / `publish_last_segment` — the
//!   O(changed-slot) epoch publish: update one leaf of the serve
//!   merger's [`vt_dynamics::SlotMergeTree`] and finish the cached
//!   root. The `first` arm publishes epoch 1 (one slot, one segment);
//!   the `last` arm re-publishes a dirty slot with the other eleven
//!   segments of history already merged behind the cached internal
//!   nodes. History-independence means the two arms match — the
//!   per-epoch cost is the dirty slot's log₂(8) root path plus a
//!   finish whose dominant term (Spearman over engine pairs) does not
//!   grow with samples.
//!
//! Headline numbers land in `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::study;
use vt_dynamics::{
    analyze_records_obs, DecodeArena, IncrementalStudy, SampleRecord, SlotMergeTree,
};
use vt_obs::Obs;
use vt_store::PartitionStats;

const SEGMENT_SAMPLES: usize = 5_000;
const WORKERS: usize = 4;

fn segments() -> Vec<&'static [SampleRecord]> {
    study().records().chunks(SEGMENT_SAMPLES).collect()
}

fn partitions() -> Vec<PartitionStats> {
    study().build_store().partition_stats()
}

fn fresh_study() -> IncrementalStudy<'static> {
    let st = study();
    IncrementalStudy::new(st.sim().fleet(), st.sim().config().window_start()).with_workers(WORKERS)
}

fn segment_fold(c: &mut Criterion) {
    let segs = segments();
    let mut group = c.benchmark_group("segment_fold");
    group.sample_size(20);

    group.bench_function("fold_first_segment", |b| {
        b.iter(|| {
            let mut inc = fresh_study();
            inc.fold_segment(black_box(segs[0]), Obs::noop());
            black_box(inc.segments())
        })
    });

    // All history but the last segment, folded once up front; each
    // iteration pays only the clone of the cached partials plus the
    // fold of the final segment.
    let mut warm = fresh_study();
    for seg in &segs[..segs.len() - 1] {
        warm.fold_segment(seg, Obs::noop());
    }
    let last = *segs.last().expect("bench study is non-empty");
    group.bench_function("fold_last_segment", |b| {
        b.iter(|| {
            let mut inc = warm.clone();
            inc.fold_segment(black_box(last), Obs::noop());
            black_box(inc.segments())
        })
    });

    // The zero-copy serve-ingest path: the same first segment as a
    // sealed store, folded through the reusable decode arena
    // (`fold_store`) — no `Vec<ScanReport>`, no `SampleRecord`.
    let seg_store = {
        let store = vt_store::ReportStore::new();
        for r in segs[0] {
            store.append_batch(&r.reports);
        }
        store.seal();
        store
    };
    let mut arena = DecodeArena::new();
    group.bench_function("fold_first_segment_store", |b| {
        b.iter(|| {
            let mut inc = fresh_study();
            inc.fold_store(black_box(&seg_store), &mut arena, Obs::noop());
            black_box(inc.segments())
        })
    });

    let parts = partitions();
    group.bench_function("full_recompute", |b| {
        let st = study();
        b.iter(|| {
            black_box(analyze_records_obs(
                black_box(st.records()),
                parts.clone(),
                st.sim().fleet(),
                st.sim().config().window_start(),
                WORKERS,
                Obs::noop(),
            ))
        })
    });

    let mut full = warm.clone();
    full.fold_segment(last, Obs::noop());
    group.bench_function("publish_results", |b| {
        b.iter(|| black_box(full.results(parts.clone(), Obs::noop())))
    });

    // ---- incremental epoch publishing (the serve merge tree) ---------
    // Slot-route the study as `vtld serve` does: per-slot studies fold
    // their own streams; a publish is one leaf update plus finishing
    // the cached root.
    const SLOTS: usize = 8;
    let st = study();
    let mut slot_records: Vec<Vec<SampleRecord>> = vec![Vec::new(); SLOTS];
    for r in st.records() {
        slot_records[(r.meta.hash.0 % SLOTS as u128) as usize].push(r.clone());
    }

    // Epoch 1: only one slot has folded anything — its first segment.
    let first_seg = &slot_records[0][..slot_records[0].len().min(SEGMENT_SAMPLES)];
    let first_partial = {
        let mut inc = fresh_study();
        inc.fold_segment(first_seg, Obs::noop());
        inc.partials().cloned()
    };
    let mut first_tree = SlotMergeTree::new(SLOTS);
    first_tree.update_slot(0, first_partial.clone(), parts.clone());
    group.bench_function("publish_first_segment", |b| {
        b.iter(|| {
            first_tree.update_slot(0, black_box(first_partial.clone()), parts.clone());
            let root = first_tree.root().expect("leaf 0 is set");
            black_box(root.finish(first_tree.root_partitions().to_vec(), Obs::noop()))
        })
    });

    // Epoch N: every slot fully folded; one slot republishes against
    // eleven segments of history cached in the internal nodes.
    let full_partials: Vec<_> = slot_records
        .iter()
        .map(|recs| {
            let mut inc = fresh_study();
            for seg in recs.chunks(SEGMENT_SAMPLES) {
                inc.fold_segment(seg, Obs::noop());
            }
            inc.partials().cloned()
        })
        .collect();
    let mut last_tree = SlotMergeTree::new(SLOTS);
    for (slot, partials) in full_partials.iter().enumerate() {
        let slot_parts = if slot == 0 { parts.clone() } else { Vec::new() };
        last_tree.update_slot(slot, partials.clone(), slot_parts);
    }
    group.bench_function("publish_last_segment", |b| {
        b.iter(|| {
            last_tree.update_slot(0, black_box(full_partials[0].clone()), parts.clone());
            let root = last_tree.root().expect("warm tree");
            black_box(root.finish(last_tree.root_partitions().to_vec(), Obs::noop()))
        })
    });

    group.finish();
}

criterion_group!(benches, segment_fold);
criterion_main!(benches);
