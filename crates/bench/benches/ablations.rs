//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_store_codec` — packed column codec vs a naive fixed-size
//!   row encoding (bytes written and encode/decode throughput).
//! * `ablation_parallelism` — dataset generation with 1/2/4/8 workers.
//! * `ablation_alias_sampling` — alias-method categorical sampling vs a
//!   linear CDF scan over the 351-way file-type distribution.
//! * `ablation_scale` — full pipeline runtime vs population size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use vt_bench::study;
use vt_dynamics::Study;
use vt_model::filetype::{FileType, TOTAL_TYPE_COUNT};
use vt_sim::{AliasTable, SimConfig};
use vt_store::codec::{decode_report, encode_report, RAW_REPORT_BYTES};

fn ablation_store_codec(c: &mut Criterion) {
    let study = study();
    let reports: Vec<_> = study
        .records()
        .iter()
        .flat_map(|r| r.reports.iter().copied())
        .take(50_000)
        .collect();
    let mut group = c.benchmark_group("ablation_store_codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(reports.len() as u64));
    group.bench_function("encode_packed", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(reports.len() * 40);
            let mut prev = 0i64;
            for r in &reports {
                encode_report(&mut buf, r, prev);
                prev = r.analysis_date.0;
            }
            black_box(buf.len())
        })
    });
    group.bench_function("decode_packed", |b| {
        let mut buf = bytes::BytesMut::new();
        let mut prev = 0i64;
        for r in &reports {
            encode_report(&mut buf, r, prev);
            prev = r.analysis_date.0;
        }
        let frozen = buf.freeze();
        b.iter(|| {
            let mut cur = frozen.clone();
            let mut prev = 0i64;
            let mut count = 0u64;
            while let Some((r, p)) = decode_report(&mut cur, prev) {
                black_box(r);
                prev = p;
                count += 1;
            }
            assert_eq!(count as usize, reports.len());
        })
    });
    // Report the compression win as a bench "measurement" via eprintln
    // once (criterion has no direct artifact channel for this).
    let mut buf = bytes::BytesMut::new();
    let mut prev = 0i64;
    for r in &reports {
        encode_report(&mut buf, r, prev);
        prev = r.analysis_date.0;
    }
    eprintln!(
        "[ablation_store_codec] packed {} bytes vs naive {} bytes ({:.2}x)",
        buf.len(),
        RAW_REPORT_BYTES * reports.len() as u64,
        RAW_REPORT_BYTES as f64 * reports.len() as f64 / buf.len() as f64
    );
    group.finish();
}

fn ablation_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallelism");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("generate_20k", workers),
            &workers,
            |b, &w| {
                b.iter(|| black_box(Study::generate_with_workers(SimConfig::new(9, 20_000), w)))
            },
        );
    }
    group.finish();
}

fn ablation_alias_sampling(c: &mut Criterion) {
    // The 351-way file-type distribution, as the population generator
    // builds it.
    let weights: Vec<f64> = (0..TOTAL_TYPE_COUNT)
        .map(|idx| FileType::from_dense_index(idx).sample_share_ppm().max(1) as f64)
        .collect();
    let table = AliasTable::new(&weights);
    let total: f64 = weights.iter().sum();
    let mut group = c.benchmark_group("ablation_alias_sampling");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("alias_method", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(table.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    group.bench_function("linear_cdf_scan", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                let target = rng.gen::<f64>() * total;
                let mut cum = 0.0;
                let mut idx = weights.len() - 1;
                for (i, &w) in weights.iter().enumerate() {
                    cum += w;
                    if cum >= target {
                        idx = i;
                        break;
                    }
                }
                acc = acc.wrapping_add(idx);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn ablation_correlation_estimators(c: &mut Criterion) {
    // Three ways to compute the §7.2 engine correlation on real verdict
    // columns: the exact contingency-table Spearman shortcut (what the
    // pipeline uses), the general rank-based Spearman, and Kendall τ-b.
    let study = study();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let avast = study.sim().fleet().engine_by_name("Avast");
    let avg = study.sim().fleet().engine_by_name("AVG");
    for rec in study.records().iter().take(20_000) {
        for rep in &rec.reports {
            cols[0].push(rep.verdicts.get(avast).r_value() as f64);
            cols[1].push(rep.verdicts.get(avg).r_value() as f64);
        }
    }
    let mut group = c.benchmark_group("ablation_correlation_estimators");
    group.throughput(Throughput::Elements(cols[0].len() as u64));
    group.bench_function("contingency_spearman", |b| {
        b.iter(|| {
            let mut counts = [[0u64; 3]; 3];
            for (&x, &y) in cols[0].iter().zip(&cols[1]) {
                counts[(x as i8 + 1) as usize][(y as i8 + 1) as usize] += 1;
            }
            black_box(vt_dynamics::correlation::spearman_from_contingency(&counts))
        })
    });
    group.bench_function("general_spearman", |b| {
        b.iter(|| black_box(vt_stats::spearman(&cols[0], &cols[1])))
    });
    group.bench_function("kendall_tau_b", |b| {
        b.iter(|| black_box(vt_stats::kendall_tau(&cols[0], &cols[1])))
    });
    group.finish();
}

fn ablation_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scale");
    group.sample_size(10);
    for samples in [5_000u64, 20_000, 60_000] {
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", samples),
            &samples,
            |b, &n| {
                b.iter(|| {
                    let study = Study::generate(SimConfig::new(4, n));
                    black_box(study.run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_store_codec,
    ablation_parallelism,
    ablation_alias_sampling,
    ablation_correlation_estimators,
    ablation_scale
);
criterion_main!(benches);
