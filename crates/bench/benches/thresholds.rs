//! §5.4 + §6 benches: Fig. 8 (white/black/gray sweeps), Obs. 8
//! (AV-Rank stabilization), Fig. 9 (label stabilization).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::{fresh_dynamic, study};
use vt_dynamics::{categorize, stabilization};

fn fig8_categorization(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let mut group = c.benchmark_group("categorize");
    group.sample_size(20);
    group.bench_function("fig8a_gray_overall", |b| {
        b.iter(|| black_box(categorize::sweep(study.records(), s, false)))
    });
    group.bench_function("fig8b_gray_pe", |b| {
        b.iter(|| black_box(categorize::sweep(study.records(), s, true)))
    });
    group.finish();
}

fn obs8_rank_stabilization(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let mut group = c.benchmark_group("stabilization");
    group.sample_size(20);
    group.bench_function("obs8_avrank_stability", |b| {
        b.iter(|| black_box(stabilization::rank_stabilization(study.records(), s)))
    });
    group.bench_function("fig9a_label_stability_all", |b| {
        b.iter(|| {
            black_box(stabilization::label_stabilization(
                study.records(),
                s,
                false,
            ))
        })
    });
    group.bench_function("fig9b_label_stability_multi", |b| {
        b.iter(|| black_box(stabilization::label_stabilization(study.records(), s, true)))
    });
    group.finish();
}

criterion_group!(benches, fig8_categorization, obs8_rank_stabilization);
criterion_main!(benches);
