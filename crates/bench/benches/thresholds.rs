//! §5.4 + §6 benches: Fig. 8 (white/black/gray sweeps), Obs. 8
//! (AV-Rank stabilization), Fig. 9 (label stabilization).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::bench_ctx;
use vt_dynamics::categorize::Categorize;
use vt_dynamics::stabilization::Stabilization;
use vt_dynamics::Analysis;

fn fig8_categorization(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("categorize");
    group.sample_size(20);
    group.bench_function("fig8a_gray_overall", |b| {
        b.iter(|| black_box(Categorize::ALL.run(&ctx)))
    });
    group.bench_function("fig8b_gray_pe", |b| {
        b.iter(|| black_box(Categorize::PE.run(&ctx)))
    });
    group.finish();
}

/// Obs. 8 + Fig. 9 — the [`Stabilization`] stage computes the AV-Rank
/// curve and both label-stabilization curves (all / multi-report) in one
/// run, matching what the pipeline pays per study.
fn obs8_fig9_stabilization(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("stabilization");
    group.sample_size(20);
    group.bench_function("obs8_avrank_and_fig9_labels", |b| {
        b.iter(|| black_box(Stabilization.run(&ctx)))
    });
    group.finish();
}

criterion_group!(benches, fig8_categorization, obs8_fig9_stabilization);
criterion_main!(benches);
