//! §5 benches: Fig. 2 (stable/dynamic split), Figs. 3–4 (stable-sample
//! characterization), Fig. 5 (δ/Δ CDFs), Fig. 6 (per-type boxes),
//! Fig. 7 (interval correlation), plus the §8.1 window sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::{fresh_dynamic, study};
use vt_dynamics::{intervals, metrics, stability};
use vt_model::time::Duration;

/// Figs. 2–4 — the §5.1–5.2 stability pass (one pass computes the
/// split, the stable-rank CDF, and the span boxes).
fn fig2_fig4_stability(c: &mut Criterion) {
    let study = study();
    let mut group = c.benchmark_group("stability");
    group.sample_size(20);
    group.bench_function("fig2_stable_dynamic_and_fig3_fig4", |b| {
        b.iter(|| black_box(stability::analyze(study.records())))
    });
    group.finish();
}

/// Figs. 5–6 — δ/Δ metrics over *S*.
fn fig5_fig6_metrics(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    group.bench_function("fig5_delta_cdf_and_fig6_per_type", |b| {
        b.iter(|| black_box(metrics::analyze(study.records(), s)))
    });
    group.bench_function("sec81_window_sweep", |b| {
        b.iter(|| {
            black_box(metrics::window_growth_fraction(
                study.records(),
                s,
                Duration::days(30),
                Duration::days(90),
            ))
        })
    });
    group.finish();
}

/// Fig. 7 — pairwise interval analysis + Spearman.
fn fig7_intervals(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let mut group = c.benchmark_group("intervals");
    group.sample_size(10);
    group.bench_function("fig7_interval_corr", |b| {
        b.iter(|| black_box(intervals::analyze(study.records(), s, 430)))
    });
    group.finish();
}

criterion_group!(
    benches,
    fig2_fig4_stability,
    fig5_fig6_metrics,
    fig7_intervals
);
criterion_main!(benches);
