//! §5 benches: Fig. 2 (stable/dynamic split), Figs. 3–4 (stable-sample
//! characterization), Fig. 5 (δ/Δ CDFs), Fig. 6 (per-type boxes),
//! Fig. 7 (interval correlation), plus the §8.1 window sweep.
//!
//! All benches drive the unified [`Analysis`] stages through a shared
//! [`vt_bench::bench_ctx`], the same entry point the pipeline uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::bench_ctx;
use vt_dynamics::intervals::Intervals;
use vt_dynamics::metrics::{Metrics, WindowGrowth};
use vt_dynamics::stability::Stability;
use vt_dynamics::Analysis;

/// Figs. 2–4 — the §5.1–5.2 stability pass (one pass computes the
/// split, the stable-rank CDF, and the span boxes).
fn fig2_fig4_stability(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("stability");
    group.sample_size(20);
    group.bench_function("fig2_stable_dynamic_and_fig3_fig4", |b| {
        b.iter(|| black_box(Stability.run(&ctx)))
    });
    group.finish();
}

/// Figs. 5–6 — δ/Δ metrics over *S*.
fn fig5_fig6_metrics(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    group.bench_function("fig5_delta_cdf_and_fig6_per_type", |b| {
        b.iter(|| black_box(Metrics.run(&ctx)))
    });
    group.bench_function("sec81_window_sweep", |b| {
        b.iter(|| black_box(WindowGrowth::default().run(&ctx)))
    });
    group.finish();
}

/// Fig. 7 — pairwise interval analysis + Spearman.
fn fig7_intervals(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("intervals");
    group.sample_size(10);
    group.bench_function("fig7_interval_corr", |b| {
        b.iter(|| black_box(Intervals { max_days: 430 }.run(&ctx)))
    });
    group.finish();
}

criterion_group!(
    benches,
    fig2_fig4_stability,
    fig5_fig6_metrics,
    fig7_intervals
);
criterion_main!(benches);
