//! §3–§4 benches: Table 1 (API semantics), Table 2 (store accounting),
//! Table 3 (file-type distribution), Fig. 1 (reports-per-sample CDF).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::{bench_ctx, study};
use vt_dynamics::landscape::{self, Landscape};
use vt_dynamics::Analysis;
use vt_engines::EngineFleet;
use vt_model::time::{Date, Duration, Timestamp};
use vt_model::{FileType, GroundTruth, SampleHash, SampleMeta};
use vt_sim::SampleSession;
use vt_store::ReportStore;

/// Table 1 — one full upload/rescan/report API cycle.
fn table1_api_semantics(c: &mut Criterion) {
    let fleet = EngineFleet::with_seed(1);
    let origin = Timestamp::from_date(Date::new(2021, 6, 1));
    let meta = SampleMeta {
        hash: SampleHash::from_ordinal(7),
        file_type: FileType::Win32Exe,
        origin,
        first_submission: origin + Duration::days(3),
        truth: GroundTruth::Malicious { detectability: 0.6 },
    };
    c.bench_function("table1_api_semantics", |b| {
        b.iter(|| {
            let t0 = meta.first_submission;
            let (mut session, first) = SampleSession::open(&fleet, meta, t0);
            let rescan = session.rescan(t0 + Duration::days(2));
            let upload = session.upload(t0 + Duration::days(5));
            let report = session.report();
            black_box((first, rescan, upload, report))
        })
    });
}

/// Table 2 — load the full benchmark feed into the compressed,
/// month-partitioned store and account per month.
fn table2_monthly_volume(c: &mut Criterion) {
    let study = study();
    let mut group = c.benchmark_group("table2_monthly_volume");
    group.sample_size(10);
    group.bench_function("store_and_account", |b| {
        b.iter(|| {
            let store = ReportStore::new();
            for rec in study.records() {
                store.append_batch(&rec.reports);
            }
            store.seal();
            black_box(store.partition_stats())
        })
    });
    group.finish();
}

/// Table 3 + Fig. 1 — one pass dataset overview.
fn table3_and_fig1(c: &mut Criterion) {
    let ctx = bench_ctx();
    c.bench_function("table3_filetypes", |b| {
        b.iter(|| {
            let (stats, _) = Landscape.run(&ctx);
            black_box(stats.table3())
        })
    });
    c.bench_function("fig1_reports_per_sample", |b| {
        let (stats, _) = Landscape.run(&ctx);
        b.iter(|| black_box(landscape::fig1_points(&stats)))
    });
}

criterion_group!(
    benches,
    table1_api_semantics,
    table2_monthly_volume,
    table3_and_fig1
);
criterion_main!(benches);
