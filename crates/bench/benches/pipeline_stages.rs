//! Tentpole bench for the columnar pipeline: the
//! [`TrajectoryTable`]-backed parallel stages with a per-stage worker
//! ablation (1/2/4/8) and the full `analyze_records` wall clock. The
//! worker-1 arm stands in for the retired serial reference path (whose
//! historical `serial_total` numbers are kept in `BENCH_pipeline.json`).
//!
//! All timings run over the memoized ≥200k-sample seeded study
//! ([`vt_bench::correlation_study`], 500k samples), so the speedup
//! claim in `BENCH_pipeline.json` is demonstrated at the scale the
//! paper's dataset demands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vt_bench::{correlation_ctx, correlation_fresh_dynamic, correlation_study, correlation_table};
use vt_dynamics::categorize::Categorize;
use vt_dynamics::causes::Causes;
use vt_dynamics::flips::Flips;
use vt_dynamics::intervals::Intervals;
use vt_dynamics::landscape::Landscape;
use vt_dynamics::metrics::{Metrics, WindowGrowth};
use vt_dynamics::stability::Stability;
use vt_dynamics::stabilization::Stabilization;
use vt_dynamics::{pipeline, Analysis, AnalysisCtx, DecodeArena, TrajectoryTable};
use vt_obs::Obs;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The ten formerly-serial stages (everything except correlation, which
/// kept its own fused kernel), run back to back through the registry's
/// `Analysis` entry points.
fn run_stages(ctx: &AnalysisCtx) {
    black_box(Landscape.run(ctx));
    black_box(Stability.run(ctx));
    black_box(Metrics.run(ctx));
    black_box(WindowGrowth::default().run(ctx));
    black_box(Intervals::default().run(ctx));
    black_box(Categorize::ALL.run(ctx));
    black_box(Categorize::PE.run(ctx));
    black_box(Causes.run(ctx));
    black_box(Stabilization.run(ctx));
    black_box(Flips.run(ctx));
}

/// Columnar stage total at each worker count. The worker-1 arm is the
/// single-threaded baseline; the historical serial reference
/// implementations were deleted with the deprecated shims.
fn stage_totals(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_stages");
    for &workers in &WORKER_SWEEP {
        let ctx = correlation_ctx().with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("parallel_total", workers),
            &workers,
            |b, _| b.iter(|| run_stages(&ctx)),
        );
    }
    group.finish();
}

/// Per-stage worker ablation over the shared table.
fn stage_ablation(c: &mut Criterion) {
    type StageFn = Box<dyn Fn(&AnalysisCtx)>;
    let stages: Vec<(&str, StageFn)> = vec![
        (
            "landscape",
            Box::new(|ctx| drop(black_box(Landscape.run(ctx)))),
        ),
        (
            "stability",
            Box::new(|ctx| drop(black_box(Stability.run(ctx)))),
        ),
        ("metrics", Box::new(|ctx| drop(black_box(Metrics.run(ctx))))),
        (
            "window_growth",
            Box::new(|ctx| {
                black_box(WindowGrowth::default().run(ctx));
            }),
        ),
        (
            "intervals",
            Box::new(|ctx| drop(black_box(Intervals::default().run(ctx)))),
        ),
        (
            "categorize_all",
            Box::new(|ctx| drop(black_box(Categorize::ALL.run(ctx)))),
        ),
        (
            "categorize_pe",
            Box::new(|ctx| drop(black_box(Categorize::PE.run(ctx)))),
        ),
        (
            "causes",
            Box::new(|ctx| {
                black_box(Causes.run(ctx));
            }),
        ),
        (
            "stabilization",
            Box::new(|ctx| drop(black_box(Stabilization.run(ctx)))),
        ),
        ("flips", Box::new(|ctx| drop(black_box(Flips.run(ctx))))),
    ];
    let mut group = c.benchmark_group("stage");
    for (name, run) in &stages {
        for &workers in &WORKER_SWEEP {
            let ctx = correlation_ctx().with_workers(workers);
            group.bench_with_input(BenchmarkId::new(*name, workers), &workers, |b, _| {
                b.iter(|| run(&ctx))
            });
        }
    }
    group.finish();
}

/// The shared one-pass table build (kernel `table_build`): the
/// row-struct path (`build`, from materialized `SampleRecord`s) next to
/// the zero-copy segment-fold path (`build_arena`, streaming the sealed
/// store's blocks into a reused [`DecodeArena`] and building the
/// columns straight from it — the route `vtld serve` folds through).
fn table_build(c: &mut Criterion) {
    let st = correlation_study();
    let ws = st.sim().config().window_start();
    let mut group = c.benchmark_group("table");
    group.sample_size(10);
    for &workers in &WORKER_SWEEP {
        group.bench_with_input(BenchmarkId::new("build", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(TrajectoryTable::build_with(
                    st.records(),
                    ws,
                    w,
                    Obs::noop(),
                ))
            })
        });
    }
    let store = st.build_store();
    let mut arena = DecodeArena::new();
    // Untimed first-touch warmup: the first arena fill + build faults
    // in ~50MB of fresh pages, and the 3-iteration harness would
    // charge that one-off artifact to the first arm's mean.
    arena.clear();
    store.for_each_row(&mut arena);
    black_box(TrajectoryTable::build_from_arena(
        &arena,
        ws,
        1,
        Obs::noop(),
    ));
    for &workers in &WORKER_SWEEP {
        group.bench_with_input(
            BenchmarkId::new("build_arena", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    arena.clear();
                    store.for_each_row(&mut arena);
                    black_box(TrajectoryTable::build_from_arena(
                        &arena,
                        ws,
                        w,
                        Obs::noop(),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Full `analyze_records` (all eleven registry stages, table and *S*
/// construction included) at the default worker count.
fn full_pipeline(c: &mut Criterion) {
    let st = correlation_study();
    // Warm the memoized fixtures so the first iteration isn't charged
    // for them.
    let _ = correlation_table();
    let _ = correlation_fresh_dynamic();
    let mut group = c.benchmark_group("pipeline_full");
    group.bench_function("analyze_records", |b| {
        b.iter(|| {
            black_box(pipeline::analyze_records(
                st.records(),
                Vec::new(),
                st.sim().fleet(),
                st.sim().config().window_start(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    stage_totals,
    stage_ablation,
    table_build,
    full_pipeline
);
criterion_main!(benches);
