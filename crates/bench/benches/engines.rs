//! §5.5 + §7 benches: Obs. 7 (flip-cause attribution), Fig. 10
//! (per-engine flip matrix), Fig. 11 (global correlation), Fig. 12 +
//! Tables 4–8 (per-type correlation), plus the fused-kernel
//! before/after comparison and its worker-count ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::{bench_ctx, correlation_fresh_dynamic, correlation_study};
use vt_dynamics::causes::Causes;
use vt_dynamics::flips::Flips;
use vt_dynamics::pipeline::{CORRELATION_MAX_ROWS, CORRELATION_SCOPES};
use vt_dynamics::{correlation, par, Analysis};
use vt_model::FileType;

fn obs7_flip_causes(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("causes");
    group.sample_size(10);
    group.bench_function("obs7_flip_causes", |b| {
        b.iter(|| black_box(Causes.run(&ctx)))
    });
    group.finish();
}

fn fig10_flip_matrix(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("flips");
    group.sample_size(10);
    group.bench_function("sec71_flip_counts_and_fig10_heatmap", |b| {
        b.iter(|| black_box(Flips.run(&ctx)))
    });
    group.finish();
}

fn fig11_fig12_correlation(c: &mut Criterion) {
    let ctx = bench_ctx();
    let engines = ctx.engine_count();
    let records = ctx.records;
    let s = ctx.s;
    let workers = par::default_workers();
    let mut group = c.benchmark_group("correlation");
    group.sample_size(10);
    group.bench_function("fig11_global_graph", |b| {
        b.iter(|| {
            black_box(correlation::analyze_fused(
                records,
                s,
                engines,
                &[None],
                400_000,
                workers,
            ))
        })
    });
    group.bench_function("fig12_win32exe_graph", |b| {
        b.iter(|| {
            black_box(correlation::analyze_fused(
                records,
                s,
                engines,
                &[Some(FileType::Win32Exe)],
                400_000,
                workers,
            ))
        })
    });
    group.bench_function("tables4_8_groups", |b| {
        b.iter(|| {
            black_box(correlation::analyze_fused(
                records,
                s,
                engines,
                &[
                    Some(FileType::Txt),
                    Some(FileType::Html),
                    Some(FileType::Zip),
                    Some(FileType::Pdf),
                ],
                400_000,
                workers,
            ))
        })
    });
    group.finish();
}

/// The §7.2 hot path on a feed-scale slice (≥ 100k global rows): the
/// fused single-pass kernel over all 8 scopes, plus a worker-count
/// ablation. (The pre-fusion serial scope-scan arm was retired along
/// with the deprecated `correlation::analyze` shim; its historical
/// numbers live in git history.)
fn fused_correlation_kernel(c: &mut Criterion) {
    let study = correlation_study();
    let s = correlation_fresh_dynamic();
    let engines = study.sim().fleet().engine_count();
    assert!(
        s.reports >= 100_000,
        "fused-kernel bench needs ≥ 100k global rows, got {}",
        s.reports
    );
    let mut scopes: Vec<Option<FileType>> = vec![None];
    scopes.extend(CORRELATION_SCOPES.iter().map(|&ft| Some(ft)));

    let mut group = c.benchmark_group("fused_correlation_kernel");
    group.sample_size(10);
    group.bench_function("after_fused_single_pass", |b| {
        b.iter(|| {
            black_box(correlation::analyze_fused(
                study.records(),
                s,
                engines,
                &scopes,
                CORRELATION_MAX_ROWS,
                par::default_workers(),
            ))
        })
    });
    for workers in [1usize, 2, 4, 8, 16] {
        group.bench_function(format!("fused_workers_{workers}"), |b| {
            b.iter(|| {
                black_box(correlation::analyze_fused(
                    study.records(),
                    s,
                    engines,
                    &scopes,
                    CORRELATION_MAX_ROWS,
                    workers,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    obs7_flip_causes,
    fig10_flip_matrix,
    fig11_fig12_correlation,
    fused_correlation_kernel
);
criterion_main!(benches);
