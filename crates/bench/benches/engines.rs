//! §5.5 + §7 benches: Obs. 7 (flip-cause attribution), Fig. 10
//! (per-engine flip matrix), Fig. 11 (global correlation), Fig. 12 +
//! Tables 4–8 (per-type correlation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_bench::{fresh_dynamic, study};
use vt_dynamics::{causes, correlation, flips};
use vt_model::FileType;

fn obs7_flip_causes(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let mut group = c.benchmark_group("causes");
    group.sample_size(10);
    group.bench_function("obs7_flip_causes", |b| {
        b.iter(|| black_box(causes::analyze(study.records(), s, study.sim().fleet())))
    });
    group.finish();
}

fn fig10_flip_matrix(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let engines = study.sim().fleet().engine_count();
    let mut group = c.benchmark_group("flips");
    group.sample_size(10);
    group.bench_function("sec71_flip_counts_and_fig10_heatmap", |b| {
        b.iter(|| black_box(flips::analyze(study.records(), s, engines)))
    });
    group.finish();
}

fn fig11_fig12_correlation(c: &mut Criterion) {
    let study = study();
    let s = fresh_dynamic();
    let engines = study.sim().fleet().engine_count();
    let mut group = c.benchmark_group("correlation");
    group.sample_size(10);
    group.bench_function("fig11_global_graph", |b| {
        b.iter(|| {
            black_box(correlation::analyze(
                study.records(),
                s,
                engines,
                None,
                400_000,
            ))
        })
    });
    group.bench_function("fig12_win32exe_graph", |b| {
        b.iter(|| {
            black_box(correlation::analyze(
                study.records(),
                s,
                engines,
                Some(FileType::Win32Exe),
                400_000,
            ))
        })
    });
    group.bench_function("tables4_8_groups", |b| {
        b.iter(|| {
            for ft in [FileType::Txt, FileType::Html, FileType::Zip, FileType::Pdf] {
                black_box(correlation::analyze(
                    study.records(),
                    s,
                    engines,
                    Some(ft),
                    400_000,
                ));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    obs7_flip_causes,
    fig10_flip_matrix,
    fig11_fig12_correlation
);
criterion_main!(benches);
