//! Label aggregation over VirusTotal scan results.
//!
//! §3.1 of the paper surveys how the community turns 70 engine verdicts
//! into one binary label: absolute thresholds (t = 1, 2, 10…),
//! percentage thresholds (e.g. 50% of engines), and trusted-engine
//! subsets. §6.2 models a sample's label history as a `B`/`M` sequence
//! and asks when it stabilizes. This crate implements all of those as a
//! small strategy library:
//!
//! * [`strategy`] — [`strategy::Aggregator`] implementations: absolute
//!   threshold, percentage, trusted subset, weighted vote.
//! * [`reliability`] — a *learned* weighted vote: per-engine log-odds
//!   weights fitted from stabilized reference labels (the §8.1
//!   direction that "engines should not be weighted equally").
//! * [`sequence`] — label sequences and the suffix-stabilization search
//!   used by the Fig. 9 analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reliability;
pub mod sequence;
pub mod strategy;

pub use reliability::ReliabilityModel;
pub use sequence::{stabilization_index, LabelSequence};
pub use strategy::{
    Aggregator, Label, PercentageThreshold, Threshold, TrustedSubset, WeightedVote,
};
