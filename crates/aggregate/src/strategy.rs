//! Aggregation strategies: one binary label from 70 engine verdicts.

use vt_model::{EngineId, ScanReport, VerdictVec};

/// The aggregated binary label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Aggregated "benign" (coded `B` in §6.2).
    Benign,
    /// Aggregated "malicious" (coded `M` in §6.2).
    Malicious,
}

impl Label {
    /// The §6.2 letter coding.
    pub fn code(self) -> char {
        match self {
            Label::Benign => 'B',
            Label::Malicious => 'M',
        }
    }
}

/// An aggregation strategy: verdict vector → binary label.
pub trait Aggregator {
    /// Aggregates one verdict vector.
    fn label(&self, verdicts: &VerdictVec) -> Label;

    /// Convenience: aggregates a report.
    fn label_report(&self, report: &ScanReport) -> Label {
        self.label(&report.verdicts)
    }

    /// Human-readable name for report output.
    fn name(&self) -> String;
}

/// Absolute-threshold voting (the method most papers use, §3.1/§5.4):
/// malicious iff AV-Rank ≥ t.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threshold(pub u32);

impl Aggregator for Threshold {
    fn label(&self, verdicts: &VerdictVec) -> Label {
        if verdicts.positives() >= self.0 {
            Label::Malicious
        } else {
            Label::Benign
        }
    }

    fn name(&self) -> String {
        format!("threshold(t={})", self.0)
    }
}

/// Percentage-threshold voting (e.g. Duan et al., Feng et al.: 50% of
/// engines): malicious iff positives ≥ fraction × active engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentageThreshold(pub f64);

impl Aggregator for PercentageThreshold {
    fn label(&self, verdicts: &VerdictVec) -> Label {
        let active = verdicts.active_count();
        if active == 0 {
            return Label::Benign;
        }
        if verdicts.positives() as f64 >= self.0 * active as f64 {
            Label::Malicious
        } else {
            Label::Benign
        }
    }

    fn name(&self) -> String {
        format!("percentage({:.0}%)", self.0 * 100.0)
    }
}

/// Trusted-subset voting (Drebin-style, §3.1: "select engines with a
/// high reputation and rely solely on \[their\] reports"): malicious iff
/// at least `min_hits` of the trusted engines flag.
#[derive(Debug, Clone)]
pub struct TrustedSubset {
    /// The trusted engines.
    pub engines: Vec<EngineId>,
    /// Votes required among them.
    pub min_hits: u32,
}

impl Aggregator for TrustedSubset {
    fn label(&self, verdicts: &VerdictVec) -> Label {
        let hits = self
            .engines
            .iter()
            .filter(|&&e| verdicts.get(e).is_malicious())
            .count() as u32;
        if hits >= self.min_hits {
            Label::Malicious
        } else {
            Label::Benign
        }
    }

    fn name(&self) -> String {
        format!(
            "trusted({} engines, ≥{})",
            self.engines.len(),
            self.min_hits
        )
    }
}

/// Weighted voting (Kantchelian et al.-style): each engine carries a
/// weight; malicious iff the flagged weight reaches `threshold`.
/// Inactive engines contribute nothing.
#[derive(Debug, Clone)]
pub struct WeightedVote {
    /// Per-engine weights, indexed by engine id.
    pub weights: Vec<f64>,
    /// Flagged-weight threshold.
    pub threshold: f64,
}

impl Aggregator for WeightedVote {
    fn label(&self, verdicts: &VerdictVec) -> Label {
        let mut score = 0.0;
        for (e, v) in verdicts.iter() {
            if v.is_malicious() {
                score += self.weights.get(e.index()).copied().unwrap_or(0.0);
            }
        }
        if score >= self.threshold {
            Label::Malicious
        } else {
            Label::Benign
        }
    }

    fn name(&self) -> String {
        format!("weighted(τ={})", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::Verdict;

    fn verdicts(pattern: &[Verdict]) -> VerdictVec {
        VerdictVec::from_verdicts(pattern)
    }

    #[test]
    fn threshold_boundary() {
        use Verdict::*;
        let v = verdicts(&[Malicious, Malicious, Benign, Benign]);
        assert_eq!(Threshold(2).label(&v), Label::Malicious);
        assert_eq!(Threshold(3).label(&v), Label::Benign);
        assert_eq!(Threshold(0).label(&v), Label::Malicious); // degenerate: everything malicious
        assert_eq!(Threshold(1).name(), "threshold(t=1)");
    }

    #[test]
    fn percentage_uses_active_denominator() {
        use Verdict::*;
        // 2 malicious of 3 active (one undetected): 66% ≥ 50%.
        let v = verdicts(&[Malicious, Malicious, Benign, Undetected]);
        assert_eq!(PercentageThreshold(0.5).label(&v), Label::Malicious);
        assert_eq!(PercentageThreshold(0.7).label(&v), Label::Benign);
        // All undetected → benign, no divide-by-zero.
        let empty = verdicts(&[Undetected, Undetected]);
        assert_eq!(PercentageThreshold(0.5).label(&empty), Label::Benign);
    }

    #[test]
    fn trusted_subset_ignores_others() {
        use Verdict::*;
        // Engines 0 and 1 trusted; only engine 2 flags → benign.
        let v = verdicts(&[Benign, Benign, Malicious]);
        let agg = TrustedSubset {
            engines: vec![EngineId(0), EngineId(1)],
            min_hits: 1,
        };
        assert_eq!(agg.label(&v), Label::Benign);
        let v2 = verdicts(&[Malicious, Benign, Benign]);
        assert_eq!(agg.label(&v2), Label::Malicious);
    }

    #[test]
    fn weighted_vote_sums_weights() {
        use Verdict::*;
        let v = verdicts(&[Malicious, Malicious, Benign]);
        let agg = WeightedVote {
            weights: vec![0.9, 0.2, 5.0],
            threshold: 1.0,
        };
        assert_eq!(agg.label(&v), Label::Malicious); // 1.1 ≥ 1.0
        let tight = WeightedVote {
            weights: vec![0.9, 0.05, 5.0],
            threshold: 1.0,
        };
        assert_eq!(tight.label(&v), Label::Benign); // 0.95 < 1.0
    }

    #[test]
    fn label_codes() {
        assert_eq!(Label::Benign.code(), 'B');
        assert_eq!(Label::Malicious.code(), 'M');
    }
}
