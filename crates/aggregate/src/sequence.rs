//! Label sequences and stabilization search (§6.2).
//!
//! For a sample with reports `r₁…rₙ` and an aggregation strategy, the
//! label history is `C = [c₁…cₙ]`, cᵢ ∈ {B, M}. The paper "searches the
//! label sequence to see if there is a moment from which all the labels
//! no longer change". [`stabilization_index`] implements that search
//! with the convention used throughout this reproduction: the stable
//! suffix must contain **at least two observations** (a single final
//! report is trivially 'unchanged' and says nothing about stability).

use crate::strategy::{Aggregator, Label};
use vt_model::ScanReport;

/// A sample's aggregated label history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSequence {
    labels: Vec<Label>,
}

impl LabelSequence {
    /// Builds the sequence by aggregating each report in order.
    pub fn from_reports<A: Aggregator>(reports: &[ScanReport], agg: &A) -> Self {
        Self {
            labels: reports.iter().map(|r| agg.label_report(r)).collect(),
        }
    }

    /// Builds directly from labels (tests, synthetic sequences).
    pub fn from_labels(labels: Vec<Label>) -> Self {
        Self { labels }
    }

    /// The labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Length of the sequence.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The §6.2 string coding, e.g. `"BBMMM"`.
    pub fn coded(&self) -> String {
        self.labels.iter().map(|l| l.code()).collect()
    }

    /// Number of label changes between consecutive reports.
    pub fn changes(&self) -> usize {
        self.labels.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Finds the stabilization point of a label sequence: the smallest
/// index `i` such that `labels[i..]` is constant **and** contains at
/// least two observations. Returns `None` if the sequence never
/// stabilizes under that rule (including sequences shorter than 2).
///
/// # Examples
///
/// ```
/// use vt_aggregate::{stabilization_index, Label};
/// use Label::{Benign as B, Malicious as M};
/// assert_eq!(stabilization_index(&[B, M, M, M]), Some(1));
/// assert_eq!(stabilization_index(&[B, B, B]), Some(0));
/// assert_eq!(stabilization_index(&[B, M]), None); // final singleton
/// assert_eq!(stabilization_index(&[B]), None);
/// ```
pub fn stabilization_index(labels: &[Label]) -> Option<usize> {
    if labels.len() < 2 {
        return None;
    }
    // Walk backwards over the constant suffix.
    let last = *labels.last().expect("len >= 2");
    let mut start = labels.len() - 1;
    while start > 0 && labels[start - 1] == last {
        start -= 1;
    }
    // Suffix labels[start..] is the maximal constant suffix.
    (labels.len() - start >= 2).then_some(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use Label::{Benign as B, Malicious as M};

    #[test]
    fn constant_sequences_stabilize_at_zero() {
        assert_eq!(stabilization_index(&[B, B]), Some(0));
        assert_eq!(stabilization_index(&[M, M, M, M]), Some(0));
    }

    #[test]
    fn late_stabilization() {
        assert_eq!(stabilization_index(&[B, M, B, M, M, M]), Some(3));
        assert_eq!(stabilization_index(&[M, B, B]), Some(1));
    }

    #[test]
    fn never_stabilizes() {
        assert_eq!(stabilization_index(&[B, M]), None);
        assert_eq!(stabilization_index(&[B, B, M]), None);
        assert_eq!(stabilization_index(&[]), None);
        assert_eq!(stabilization_index(&[B]), None);
    }

    #[test]
    fn coded_string_and_changes() {
        let seq = LabelSequence::from_labels(vec![B, B, M, M, B]);
        assert_eq!(seq.coded(), "BBMMB");
        assert_eq!(seq.changes(), 2);
        assert_eq!(seq.len(), 5);
    }

    proptest! {
        #[test]
        fn suffix_is_constant_and_maximal(bits in proptest::collection::vec(any::<bool>(), 0..40)) {
            let labels: Vec<Label> = bits.iter().map(|&b| if b { M } else { B }).collect();
            match stabilization_index(&labels) {
                Some(i) => {
                    let suffix = &labels[i..];
                    prop_assert!(suffix.len() >= 2);
                    prop_assert!(suffix.iter().all(|&l| l == suffix[0]));
                    // Maximality: extending the suffix breaks constancy.
                    if i > 0 {
                        prop_assert_ne!(labels[i - 1], suffix[0]);
                    }
                }
                None => {
                    // Either too short, or the constant suffix is a singleton.
                    if labels.len() >= 2 {
                        let last = labels[labels.len() - 1];
                        prop_assert_ne!(labels[labels.len() - 2], last);
                    }
                }
            }
        }
    }
}
