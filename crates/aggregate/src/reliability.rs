//! Learned engine-reliability weighting (a Kantchelian-et-al.-style
//! extension the paper points at in §3.1/§8.1: *"engines should not be
//! weighted equally when processing their results"*).
//!
//! [`ReliabilityModel::fit`] estimates each engine's reliability from
//! training pairs `(verdict vector, reference label)` — in practice the
//! reference label is the sample's *final* label once its history has
//! stabilized (§6) — and turns the per-engine true/false positive rates
//! into log-odds votes (a naive-Bayes / weighted-majority scheme with
//! Laplace smoothing):
//!
//! * an engine that flags: adds `ln(TPR / FPR)`;
//! * an engine that clears: adds `ln((1−TPR) / (1−FPR))`;
//! * an inactive engine abstains.
//!
//! The sample is labeled malicious when the total log-odds exceed the
//! decision threshold (default 0: maximum-likelihood with equal
//! priors). The `label_quality` example measures how much this improves
//! first-scan labels over fixed-threshold voting.

use crate::strategy::{Aggregator, Label};
use vt_model::VerdictVec;

/// Per-engine reliability estimates and the resulting vote weights.
#[derive(Debug, Clone)]
pub struct ReliabilityModel {
    /// Per-engine log-weight applied when the engine flags.
    flag_weight: Vec<f64>,
    /// Per-engine log-weight applied when the engine clears.
    clear_weight: Vec<f64>,
    /// Per-engine estimated true-positive rate.
    tpr: Vec<f64>,
    /// Per-engine estimated false-positive rate.
    fpr: Vec<f64>,
    /// Decision threshold on the summed log-odds.
    pub decision_threshold: f64,
}

impl ReliabilityModel {
    /// Fits the model from training pairs. `engine_count` sizes the
    /// tables; verdicts from engines beyond it are ignored.
    ///
    /// Counts are Laplace-smoothed (add-one), so engines with no
    /// training coverage degrade to uninformative weights of 0 rather
    /// than ±∞.
    pub fn fit<'a, I>(engine_count: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'a VerdictVec, Label)>,
    {
        // counts[e] = (flag&mal, active&mal, flag&ben, active&ben)
        let mut flag_mal = vec![1.0f64; engine_count];
        let mut active_mal = vec![2.0f64; engine_count];
        let mut flag_ben = vec![1.0f64; engine_count];
        let mut active_ben = vec![2.0f64; engine_count];
        for (verdicts, label) in pairs {
            for (e, v) in verdicts.iter() {
                if e.index() >= engine_count {
                    continue;
                }
                let Some(bit) = v.binary_label() else {
                    continue;
                };
                match label {
                    Label::Malicious => {
                        active_mal[e.index()] += 1.0;
                        flag_mal[e.index()] += bit as f64;
                    }
                    Label::Benign => {
                        active_ben[e.index()] += 1.0;
                        flag_ben[e.index()] += bit as f64;
                    }
                }
            }
        }
        let mut tpr = Vec::with_capacity(engine_count);
        let mut fpr = Vec::with_capacity(engine_count);
        let mut flag_weight = Vec::with_capacity(engine_count);
        let mut clear_weight = Vec::with_capacity(engine_count);
        for e in 0..engine_count {
            let tp = (flag_mal[e] / active_mal[e]).clamp(1e-4, 1.0 - 1e-4);
            let fp = (flag_ben[e] / active_ben[e]).clamp(1e-4, 1.0 - 1e-4);
            tpr.push(tp);
            fpr.push(fp);
            flag_weight.push((tp / fp).ln());
            clear_weight.push(((1.0 - tp) / (1.0 - fp)).ln());
        }
        Self {
            flag_weight,
            clear_weight,
            tpr,
            fpr,
            decision_threshold: 0.0,
        }
    }

    /// The summed log-odds score of one verdict vector.
    pub fn score(&self, verdicts: &VerdictVec) -> f64 {
        let mut score = 0.0;
        for (e, v) in verdicts.iter() {
            if e.index() >= self.flag_weight.len() {
                continue;
            }
            match v.binary_label() {
                Some(1) => score += self.flag_weight[e.index()],
                Some(_) => score += self.clear_weight[e.index()],
                None => {}
            }
        }
        score
    }

    /// Estimated true-positive rate of one engine.
    pub fn engine_tpr(&self, engine: usize) -> f64 {
        self.tpr[engine]
    }

    /// Estimated false-positive rate of one engine.
    pub fn engine_fpr(&self, engine: usize) -> f64 {
        self.fpr[engine]
    }

    /// Engines ranked by informativeness (|flag weight|), descending.
    pub fn ranked_by_weight(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .flag_weight
            .iter()
            .enumerate()
            .map(|(e, &w)| (e, w))
            .collect();
        v.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        v
    }
}

impl Aggregator for ReliabilityModel {
    fn label(&self, verdicts: &VerdictVec) -> Label {
        if self.score(verdicts) > self.decision_threshold {
            Label::Malicious
        } else {
            Label::Benign
        }
    }

    fn name(&self) -> String {
        format!("reliability(τ={})", self.decision_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::{EngineId, Verdict};

    /// Three engines: #0 is an oracle, #1 flags everything, #2 is
    /// anti-correlated (flags only benign).
    fn training_data() -> Vec<(VerdictVec, Label)> {
        let mut out = Vec::new();
        for i in 0..200u32 {
            let malicious = i % 2 == 0;
            let mut v = VerdictVec::new(3);
            v.set(
                EngineId(0),
                if malicious {
                    Verdict::Malicious
                } else {
                    Verdict::Benign
                },
            );
            v.set(EngineId(1), Verdict::Malicious);
            v.set(
                EngineId(2),
                if malicious {
                    Verdict::Benign
                } else {
                    Verdict::Malicious
                },
            );
            out.push((
                v,
                if malicious {
                    Label::Malicious
                } else {
                    Label::Benign
                },
            ));
        }
        out
    }

    #[test]
    fn learns_oracle_and_ignores_spammer() {
        let data = training_data();
        let model = ReliabilityModel::fit(3, data.iter().map(|(v, l)| (v, *l)));
        // Oracle has high TPR, low FPR → large positive flag weight.
        assert!(model.flag_weight[0] > 2.0, "{}", model.flag_weight[0]);
        // The always-flags engine is uninformative: TPR ≈ FPR ≈ 1.
        assert!(model.flag_weight[1].abs() < 0.2, "{}", model.flag_weight[1]);
        // The anti-correlated engine gets a negative flag weight.
        assert!(model.flag_weight[2] < -2.0, "{}", model.flag_weight[2]);
        // Ranked: oracle and anti-oracle dominate.
        let ranked = model.ranked_by_weight();
        assert!(ranked[0].0 != 1 && ranked[1].0 != 1);
    }

    #[test]
    fn classifies_training_distribution_perfectly() {
        let data = training_data();
        let model = ReliabilityModel::fit(3, data.iter().map(|(v, l)| (v, *l)));
        for (v, expected) in &data {
            assert_eq!(model.label(v), *expected);
        }
    }

    #[test]
    fn inactive_engines_abstain() {
        let data = training_data();
        let model = ReliabilityModel::fit(3, data.iter().map(|(v, l)| (v, *l)));
        // Only the spammer active → score ≈ 0 → benign (≤ threshold).
        let mut v = VerdictVec::new(3);
        v.set(EngineId(1), Verdict::Malicious);
        assert!(model.score(&v).abs() < 0.2);
        let empty = VerdictVec::new(3);
        assert_eq!(model.score(&empty), 0.0);
        assert_eq!(model.label(&empty), Label::Benign);
    }

    #[test]
    fn unseen_engine_degrades_gracefully() {
        // Fit with zero training pairs: all weights 0, everything benign.
        let model = ReliabilityModel::fit(4, std::iter::empty());
        let mut v = VerdictVec::new(4);
        v.set(EngineId(3), Verdict::Malicious);
        assert_eq!(model.score(&v), 0.0);
        assert_eq!(model.label(&v), Label::Benign);
        assert_eq!(model.engine_tpr(3), 0.5);
        assert_eq!(model.engine_fpr(3), 0.5);
    }

    #[test]
    fn threshold_shifts_decision() {
        let data = training_data();
        let mut model = ReliabilityModel::fit(3, data.iter().map(|(v, l)| (v, *l)));
        let mut v = VerdictVec::new(3);
        v.set(EngineId(0), Verdict::Malicious);
        assert_eq!(model.label(&v), Label::Malicious);
        model.decision_threshold = 100.0;
        assert_eq!(model.label(&v), Label::Benign);
        assert!(model.name().contains("reliability"));
    }
}
