//! §5.5 — inferring causes of label dynamics (Obs. 7).
//!
//! For every per-engine label flip in *S* (a change between two
//! consecutive *active* labels from the same engine), we attribute:
//!
//! * **engine update** — did the engine ship a model update in the
//!   interval between the two scans? (paper: present in ~60% of flips);
//! * **engine latency** — 0→1 flips are signature acquisitions (the
//!   learning process the paper describes);
//! * **engine activity** — separately, we count *gap consistency*: when
//!   an engine goes inactive for a scan and returns, how often its
//!   label matches the one before the gap (paper: "if these 'inactive'
//!   engines give valid results, they are usually consistent").

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use vt_engines::EngineFleet;
use vt_model::EngineId;

/// Outcome of the cause-attribution analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseAnalysis {
    /// Total per-engine label flips observed.
    pub flips: u64,
    /// Flips 0→1 (acquisitions — the latency mechanism).
    pub flips_up: u64,
    /// Flips 1→0 (retractions).
    pub flips_down: u64,
    /// Flips with ≥1 engine update inside the scan interval.
    pub update_coincident: u64,
    /// Inactivity gaps where the engine returned with the same label.
    pub gap_consistent: u64,
    /// Inactivity gaps where the label changed across the gap.
    pub gap_changed: u64,
}

impl CauseAnalysis {
    /// Fraction of flips coinciding with an engine update (paper: ~60%).
    pub fn update_fraction(&self) -> f64 {
        if self.flips == 0 {
            0.0
        } else {
            self.update_coincident as f64 / self.flips as f64
        }
    }

    /// Fraction of inactivity gaps whose flanking labels agree.
    pub fn gap_consistency(&self) -> f64 {
        let total = self.gap_consistent + self.gap_changed;
        if total == 0 {
            0.0
        } else {
            self.gap_consistent as f64 / total as f64
        }
    }

    /// Merge partitions.
    pub fn merge(&mut self, o: &CauseAnalysis) {
        self.flips += o.flips;
        self.flips_up += o.flips_up;
        self.flips_down += o.flips_down;
        self.update_coincident += o.update_coincident;
        self.gap_consistent += o.gap_consistent;
        self.gap_changed += o.gap_changed;
    }
}

/// §5.5 cause-attribution stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Causes;

impl Analysis for Causes {
    type Output = CauseAnalysis;
    type Partial = CauseAnalysis;

    fn name(&self) -> &'static str {
        "causes"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> CauseAnalysis {
        fold_columnar(ctx.table, ctx.s, ctx.fleet, ctx)
    }

    fn merge(&self, mut a: CauseAnalysis, b: CauseAnalysis) -> CauseAnalysis {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &CauseAnalysis) -> CauseAnalysis {
        *acc
    }
}

/// Parallel cause attribution over the table's verdict-bitmap columns.
/// All six counters are order-independent sums, so the per-partition
/// [`CauseAnalysis`] values merge exactly.
fn fold_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    fleet: &EngineFleet,
    ctx: &AnalysisCtx,
) -> CauseAnalysis {
    let engines = fleet.engine_count();
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "causes", |_, range| {
        let mut a = CauseAnalysis::default();
        for &rec in &s.indices[range.start as usize..range.end as usize] {
            let rows = table.rows(rec);
            for e in 0..engines {
                let id = EngineId::new(e);
                let mut last: Option<(u8, vt_model::Timestamp)> = None;
                let mut gap_since_last = false;
                for row in rows.clone() {
                    match table.binary_label(row, id) {
                        None => {
                            if last.is_some() {
                                gap_since_last = true;
                            }
                        }
                        Some(label) => {
                            let date = table.date(row);
                            if let Some((prev, prev_t)) = last {
                                if prev != label {
                                    a.flips += 1;
                                    if label == 1 {
                                        a.flips_up += 1;
                                    } else {
                                        a.flips_down += 1;
                                    }
                                    if fleet.schedule(id).updated_in(prev_t, date) {
                                        a.update_coincident += 1;
                                    }
                                }
                                if gap_since_last {
                                    if prev == label {
                                        a.gap_consistent += 1;
                                    } else {
                                        a.gap_changed += 1;
                                    }
                                }
                            }
                            last = Some((label, date));
                            gap_since_last = false;
                        }
                    }
                }
            }
        }
        a
    });
    let mut a = CauseAnalysis::default();
    for part in &parts {
        a.merge(part);
    }
    a
}

#[cfg(test)]
pub(crate) fn analyze_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    fleet: &EngineFleet,
) -> CauseAnalysis {
    let mut a = CauseAnalysis::default();
    let engines = fleet.engine_count();
    for r in s.iter(records) {
        for e in 0..engines {
            let id = EngineId(e as u8);
            // Walk the report sequence tracking the last *active* label
            // and whether an inactivity gap intervened.
            let mut last: Option<(u8, vt_model::Timestamp)> = None;
            let mut gap_since_last = false;
            for rep in &r.reports {
                let verdict = rep.verdicts.get(id);
                match verdict.binary_label() {
                    None => {
                        if last.is_some() {
                            gap_since_last = true;
                        }
                    }
                    Some(label) => {
                        if let Some((prev, prev_t)) = last {
                            if prev != label {
                                a.flips += 1;
                                if label == 1 {
                                    a.flips_up += 1;
                                } else {
                                    a.flips_down += 1;
                                }
                                if fleet.schedule(id).updated_in(prev_t, rep.analysis_date) {
                                    a.update_coincident += 1;
                                }
                            }
                            if gap_since_last {
                                if prev == label {
                                    a.gap_consistent += 1;
                                } else {
                                    a.gap_changed += 1;
                                }
                            }
                        }
                        last = Some((label, rep.analysis_date));
                        gap_since_last = false;
                    }
                }
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        FileType, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict, VerdictVec,
    };

    /// Builds a record where engine 0 follows `labels` (M/B/U per scan)
    /// and engine 1 stays benign (keeping the sample dynamic via
    /// engine 0's changes).
    fn record(labels: &[char], gap_days: i64) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(1),
            file_type: FileType::Win32Exe,
            origin: first,
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = labels
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let mut verdicts = VerdictVec::new(70);
                verdicts.set(
                    EngineId(0),
                    match c {
                        'M' => Verdict::Malicious,
                        'B' => Verdict::Benign,
                        _ => Verdict::Undetected,
                    },
                );
                verdicts.set(EngineId(1), Verdict::Benign);
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: first + Duration::days(k as i64 * gap_days),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    fn run(labels: &[char], gap_days: i64) -> CauseAnalysis {
        let records = vec![record(labels, gap_days)];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        assert_eq!(s.len(), 1, "fixture must land in S");
        let fleet = EngineFleet::with_seed(1);
        analyze_impl(&records, &s, &fleet)
    }

    #[test]
    fn counts_up_and_down_flips() {
        let a = run(&['B', 'M', 'M'], 1);
        assert_eq!(a.flips, 1);
        assert_eq!(a.flips_up, 1);
        assert_eq!(a.flips_down, 0);

        let b = run(&['M', 'M', 'B'], 1);
        assert_eq!(b.flips, 1);
        assert_eq!(b.flips_down, 1);
    }

    #[test]
    fn undetected_scans_do_not_flip() {
        // M U M: the gap is consistent, no flip.
        let a = run(&['M', 'U', 'M'], 1);
        assert_eq!(a.flips, 0);
        assert_eq!(a.gap_consistent, 1);
        assert_eq!(a.gap_changed, 0);
        assert_eq!(a.gap_consistency(), 1.0);

        // M U B: gap with a change — one flip (M→B across the gap).
        let b = run(&['M', 'U', 'B'], 1);
        assert_eq!(b.flips, 1);
        assert_eq!(b.gap_changed, 1);
    }

    #[test]
    fn long_interval_flips_coincide_with_updates() {
        // With a 60-day gap, every engine's update schedule fires in
        // between, so the flip is update-coincident.
        let a = run(&['B', 'M'], 60);
        assert_eq!(a.flips, 1);
        assert_eq!(a.update_coincident, 1);
        assert_eq!(a.update_fraction(), 1.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = run(&['B', 'M'], 1);
        let b = run(&['M', 'B'], 1);
        a.merge(&b);
        assert_eq!(a.flips, 2);
        assert_eq!(a.flips_up, 1);
        assert_eq!(a.flips_down, 1);
    }
}
