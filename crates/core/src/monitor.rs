//! Stabilization monitoring — the feature the paper recommends
//! VirusTotal build (§8.1): *"implement a feature notifying users when
//! a sample's AV-Rank has stabilized … this feature could be
//! customizable, allowing users to set their own criteria for what they
//! consider 'stable'"*, and *"a notification system for users when
//! significant AV-Rank variations are detected in short time
//! intervals"*.
//!
//! [`SampleMonitor`] is that feature as a streaming state machine: feed
//! it `(time, AV-Rank)` observations as scans arrive and it emits
//! [`MonitorEvent`]s:
//!
//! * [`MonitorEvent::Stabilized`] — the trailing observations have
//!   stayed within the configured fluctuation range for long enough
//!   (both a count and a quiet-time requirement, mirroring §6.1's
//!   fluctuation-range definition);
//! * [`MonitorEvent::Destabilized`] — a previously-stable sample broke
//!   its envelope (the re-evaluation trigger the paper suggests);
//! * [`MonitorEvent::Swing`] — a large AV-Rank change over a short
//!   interval (the paper's "significant variations in short time
//!   intervals" alert).
//!
//! The monitor is live on the serve path: [`crate::alerts`] runs one
//! per trajectory inside every segment fold (detector 3,
//! `sample_event`), so `vtld serve` streams these events over the
//! `alerts`/`subscribe` wire verbs and its alert sinks.

use vt_model::time::{Duration, Timestamp};

/// User-customizable stability criteria (§8.1: "allowing users to set
/// their own criteria").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorCriteria {
    /// Maximum AV-Rank spread (max − min) the stable window may have —
    /// §6.1's fluctuation range `r`.
    pub fluctuation_range: u32,
    /// Minimum observations the stable window must contain (≥ 2; a
    /// single report says nothing about stability).
    pub min_observations: usize,
    /// Minimum time the stable window must span.
    pub min_quiet: Duration,
    /// Swing alert: AV-Rank change of at least this much…
    pub swing_threshold: u32,
    /// …within at most this interval triggers [`MonitorEvent::Swing`].
    pub swing_interval: Duration,
}

impl Default for MonitorCriteria {
    fn default() -> Self {
        Self {
            fluctuation_range: 1,
            min_observations: 3,
            min_quiet: Duration::days(14),
            swing_threshold: 10,
            swing_interval: Duration::days(3),
        }
    }
}

/// A notification from the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorEvent {
    /// The sample's AV-Rank has met the stability criteria.
    Stabilized {
        /// Time of the observation that completed the criteria.
        at: Timestamp,
        /// Time the stable window began.
        since: Timestamp,
        /// Envelope of the stable window.
        rank_min: u32,
        /// See `rank_min`.
        rank_max: u32,
    },
    /// A previously-stable sample left its envelope.
    Destabilized {
        /// Time of the breaking observation.
        at: Timestamp,
        /// The new AV-Rank that broke the envelope.
        rank: u32,
        /// The envelope that was broken.
        previous_min: u32,
        /// See `previous_min`.
        previous_max: u32,
    },
    /// A significant AV-Rank change over a short interval.
    Swing {
        /// Time of the second observation.
        at: Timestamp,
        /// Absolute AV-Rank change.
        delta: u32,
        /// Interval between the two observations.
        interval: Duration,
    },
}

/// Streaming stability monitor for one sample.
#[derive(Debug, Clone)]
pub struct SampleMonitor {
    criteria: MonitorCriteria,
    /// The current candidate stable window (trailing observations whose
    /// envelope fits the fluctuation range).
    window: Vec<(Timestamp, u32)>,
    /// Cached rank envelope of `window` (`None` iff the window is
    /// empty) — kept in lockstep with every window mutation so
    /// [`envelope`](Self::envelope) is O(1) on the streaming path.
    env: Option<(u32, u32)>,
    /// Whether a Stabilized event has fired for the current window.
    announced: bool,
    last: Option<(Timestamp, u32)>,
}

impl SampleMonitor {
    /// Creates a monitor with the given criteria.
    pub fn new(criteria: MonitorCriteria) -> Self {
        assert!(
            criteria.min_observations >= 2,
            "a stable window needs >= 2 observations"
        );
        Self {
            criteria,
            window: Vec::new(),
            env: None,
            announced: false,
            last: None,
        }
    }

    /// Returns the monitor to its freshly-created state, keeping the
    /// window buffer's capacity — for callers that run one monitor per
    /// sample over millions of samples.
    pub fn reset(&mut self) {
        self.window.clear();
        self.env = None;
        self.announced = false;
        self.last = None;
    }

    /// Current stable-window envelope, if any observations are held.
    pub fn envelope(&self) -> Option<(u32, u32)> {
        self.env
    }

    /// Whether the sample is currently considered stable (a
    /// [`MonitorEvent::Stabilized`] has fired and not been broken).
    pub fn is_stable(&self) -> bool {
        self.announced
    }

    /// Feeds one observation, returning any events it triggers.
    ///
    /// # Panics
    /// Panics if observations arrive out of time order.
    pub fn observe(&mut self, at: Timestamp, rank: u32) -> Vec<MonitorEvent> {
        if let Some((prev_t, _)) = self.last {
            assert!(at >= prev_t, "observations must arrive in time order");
        }
        let mut events = Vec::new();

        // Swing alert (independent of the stability window).
        if let Some((prev_t, prev_p)) = self.last {
            let delta = prev_p.abs_diff(rank);
            let interval = at - prev_t;
            if delta >= self.criteria.swing_threshold && interval <= self.criteria.swing_interval {
                events.push(MonitorEvent::Swing {
                    at,
                    delta,
                    interval,
                });
            }
        }
        self.last = Some((at, rank));

        // Does the new observation fit the current envelope?
        let fits = match self.envelope() {
            Some((min, max)) => rank.max(max) - rank.min(min) <= self.criteria.fluctuation_range,
            None => true,
        };
        if !fits {
            if self.announced {
                let (min, max) = self.envelope().expect("announced implies window");
                events.push(MonitorEvent::Destabilized {
                    at,
                    rank,
                    previous_min: min,
                    previous_max: max,
                });
            }
            // Restart the window from the trailing observations that fit
            // with the new one (keep the maximal suffix).
            self.announced = false;
            while !self.window.is_empty() {
                let min = self
                    .window
                    .iter()
                    .map(|&(_, p)| p)
                    .chain(std::iter::once(rank))
                    .min()
                    .expect("nonempty");
                let max = self
                    .window
                    .iter()
                    .map(|&(_, p)| p)
                    .chain(std::iter::once(rank))
                    .max()
                    .expect("nonempty");
                if max - min <= self.criteria.fluctuation_range {
                    break;
                }
                self.window.remove(0);
            }
            self.env = envelope_of(&self.window);
        }
        self.window.push((at, rank));
        self.env = Some(match self.env {
            Some((min, max)) => (min.min(rank), max.max(rank)),
            None => (rank, rank),
        });

        // Announce stabilization once the window meets the criteria.
        if !self.announced
            && self.window.len() >= self.criteria.min_observations
            && self.window.last().expect("nonempty").0 - self.window[0].0 >= self.criteria.min_quiet
        {
            let (min, max) = self.envelope().expect("nonempty");
            self.announced = true;
            events.push(MonitorEvent::Stabilized {
                at,
                since: self.window[0].0,
                rank_min: min,
                rank_max: max,
            });
        }
        events
    }
}

/// Rank envelope of a candidate window (`None` when empty).
fn envelope_of(window: &[(Timestamp, u32)]) -> Option<(u32, u32)> {
    let min = window.iter().map(|&(_, p)| p).min()?;
    let max = window.iter().map(|&(_, p)| p).max()?;
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};

    fn t(day: i64) -> Timestamp {
        Timestamp::from_date(Date::new(2021, 6, 1)) + Duration::days(day)
    }

    fn monitor() -> SampleMonitor {
        SampleMonitor::new(MonitorCriteria {
            fluctuation_range: 1,
            min_observations: 3,
            min_quiet: Duration::days(10),
            swing_threshold: 10,
            swing_interval: Duration::days(3),
        })
    }

    #[test]
    fn stabilizes_after_quiet_window() {
        let mut m = monitor();
        assert!(m.observe(t(0), 20).is_empty());
        assert!(m.observe(t(5), 21).is_empty()); // within range, too short
        let events = m.observe(t(12), 20);
        assert_eq!(events.len(), 1);
        match events[0] {
            MonitorEvent::Stabilized {
                since,
                rank_min,
                rank_max,
                ..
            } => {
                assert_eq!(since, t(0));
                assert_eq!((rank_min, rank_max), (20, 21));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(m.is_stable());
        // No duplicate announcements while stable.
        assert!(m.observe(t(20), 21).is_empty());
    }

    #[test]
    fn destabilizes_on_envelope_break() {
        let mut m = monitor();
        m.observe(t(0), 20);
        m.observe(t(5), 20);
        m.observe(t(12), 20);
        assert!(m.is_stable());
        let events = m.observe(t(14), 26);
        assert!(matches!(
            events[0],
            MonitorEvent::Destabilized {
                rank: 26,
                previous_min: 20,
                previous_max: 20,
                ..
            }
        ));
        assert!(!m.is_stable());
        // It can stabilize again at the new level.
        m.observe(t(18), 26);
        let again = m.observe(t(25), 27);
        assert!(matches!(
            again.last(),
            Some(MonitorEvent::Stabilized { .. })
        ));
    }

    #[test]
    fn swing_alert_on_fast_change() {
        let mut m = monitor();
        m.observe(t(0), 5);
        let events = m.observe(t(1), 30);
        assert!(events
            .iter()
            .any(|e| matches!(e, MonitorEvent::Swing { delta: 25, .. })));
        // A slow change of the same magnitude does not alert.
        let mut m2 = monitor();
        m2.observe(t(0), 5);
        let slow = m2.observe(t(30), 30);
        assert!(!slow.iter().any(|e| matches!(e, MonitorEvent::Swing { .. })));
    }

    #[test]
    fn window_restart_keeps_fitting_suffix() {
        let mut m = monitor();
        m.observe(t(0), 10);
        m.observe(t(2), 11);
        // 12 breaks the range-1 envelope of {10, 11} but fits with {11}.
        m.observe(t(4), 12);
        assert_eq!(m.envelope(), Some((11, 12)));
    }

    #[test]
    fn matches_offline_stabilization_index() {
        // The streaming monitor (count-only criteria) agrees with the
        // batch §6.1 search on a fixed trajectory.
        let ranks = [3u32, 7, 8, 8, 7, 8, 8];
        let mut m = SampleMonitor::new(MonitorCriteria {
            fluctuation_range: 1,
            min_observations: 2,
            min_quiet: Duration::minutes(0),
            swing_threshold: 100,
            swing_interval: Duration::days(1),
        });
        let mut first_stable_at = None;
        for (i, &p) in ranks.iter().enumerate() {
            for e in m.observe(t(i as i64), p) {
                if matches!(e, MonitorEvent::Stabilized { .. }) && first_stable_at.is_none() {
                    first_stable_at = Some(i);
                }
            }
        }
        let offline = crate::stabilization::rank_stabilization_index(&ranks, 1);
        // Offline finds the suffix start; the monitor announces at the
        // observation that completes the min_observations requirement.
        assert_eq!(offline, Some(1));
        assert_eq!(first_stable_at, Some(2));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order() {
        let mut m = monitor();
        m.observe(t(5), 1);
        m.observe(t(4), 1);
    }
}
