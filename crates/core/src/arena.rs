//! The per-worker decode arena: reusable row storage between a sealed
//! segment's compressed blocks and the columnar [`crate::TrajectoryTable`].
//!
//! A [`DecodeArena`] is a [`vt_store::ReportSink`]: streaming a
//! segment's blocks into it ([`vt_store::ReportStore::for_each_row`])
//! copies out exactly the columns the table build needs — one flat
//! `Vec<ArenaRow>` in physical arrival order — without ever
//! materializing a `ScanReport`, a `SampleRecord`, or a per-sample
//! `Vec`. [`crate::TrajectoryTable::build_from_arena`] then sorts a row
//! permutation into canonical `(hash, date, arrival)` order and fills
//! the table columns directly.
//!
//! The arena is *reusable*: [`DecodeArena::clear`] drops the rows but
//! keeps the allocation, so a long-lived shard worker folding segment
//! after segment reaches a steady state with zero decode-path
//! allocations.

use vt_model::SampleHash;
use vt_store::{ReportRow, ReportSink};

/// One decoded report row, exactly the columns the table build keeps.
///
/// `kind` and `times_submitted` are dropped at the arena boundary: no
/// analysis stage reads them (they exist for the store's accounting),
/// so carrying them would only dilute the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaRow {
    /// Sample hash (the grouping key).
    pub hash: SampleHash,
    /// Analysis date in raw timestamp minutes.
    pub analysis: i64,
    /// Last submission date in raw timestamp minutes (drives the
    /// derived `first_submission` / freshness of the record).
    pub submission: i64,
    /// Active-engine bitmap words.
    pub active: [u64; 2],
    /// Detected-engine bitmap words (subset of `active`).
    pub detected: [u64; 2],
    /// Dense file-type index.
    pub type_idx: u16,
}

/// Reusable row storage for streaming segment decode (see the module
/// docs). Implements [`ReportSink`], so any block/store/segment decode
/// entry point can fill it.
#[derive(Debug, Default)]
pub struct DecodeArena {
    rows: Vec<ArenaRow>,
}

impl DecodeArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected rows, in the order they were streamed (physical
    /// arrival order — the tie-break key for equal-date reports).
    pub fn rows(&self) -> &[ArenaRow] {
        &self.rows
    }

    /// Number of rows collected.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Forgets the rows but keeps the allocation — call between
    /// segments to reach steady-state zero-allocation folding.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

impl ReportSink for DecodeArena {
    fn report(&mut self, row: &ReportRow) {
        self.rows.push(ArenaRow {
            hash: row.sample,
            analysis: row.analysis,
            submission: row.submission,
            active: row.active,
            detected: row.detected,
            type_idx: row.type_idx,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::ReportKind;

    fn row(ordinal: u64, analysis: i64) -> ReportRow {
        ReportRow {
            sample: SampleHash::from_ordinal(ordinal),
            type_idx: 3,
            analysis,
            submission: analysis - 10,
            times_submitted: 1,
            kind: ReportKind::Upload,
            engine_count: 70,
            active: [u64::MAX, 0x3f],
            detected: [ordinal, 0],
        }
    }

    #[test]
    fn collects_rows_in_arrival_order() {
        let mut arena = DecodeArena::new();
        arena.report(&row(2, 50));
        arena.report(&row(1, 40));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.rows()[0].hash, SampleHash::from_ordinal(2));
        assert_eq!(arena.rows()[1].analysis, 40);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut arena = DecodeArena::new();
        for i in 0..100 {
            arena.report(&row(i, i as i64));
        }
        let cap = arena.rows.capacity();
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.rows.capacity(), cap);
    }
}
