//! §7.2 — engine correlation (Obs. 11, Figs. 11–12, Tables 4–8).
//!
//! The scan matrix `R` has one row per scan and one column per engine,
//! with entries in {1, 0, −1} (Eq. 1). For every pair of engine columns
//! we compute the Spearman correlation; pairs with ρ > 0.8 are *strongly
//! correlated*, and the connected components of the strong-pair graph
//! are the engine groups of Tables 4–8.
//!
//! Because each column takes only three values, we compute the exact
//! tie-corrected Spearman from the 3×3 contingency table of each pair —
//! O(n) per pair with no rank arrays — and verify the shortcut against
//! the general implementation in `vt-stats`.
//!
//! Two implementations coexist:
//!
//! * `analyze_impl` (test-only) — the reference path: one scope at a
//!   time, engine columns materialized as `Vec<i8>`, pairs correlated
//!   serially. Kept as the ground truth the fused kernel is verified
//!   against.
//! * [`analyze_fused`] — the production path: a **single fused parallel
//!   pass** over *S* that accumulates the all-pairs contingency tables
//!   for *every* scope simultaneously. Partitions of *S* accumulate
//!   independently ([`par::map_ranges`]) and merge associatively
//!   ([`ScopeContingency::merge`]), so the result is bit-identical to
//!   the reference at every worker count. A scan row only touches the
//!   scopes it belongs to (the global scope plus at most its own file
//!   type), so the 8-scope analysis costs one scan of *S* instead of 8
//!   and allocates no per-engine columns.
//!
//! Both paths apply the same row cap: when a scope holds more than
//! `max_rows` rows, [`row_selected`] strides the selection evenly
//! across the scope's row sequence (instead of the old biased prefix)
//! and the analysis reports `truncated = true`.

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
use crate::records::SampleRecord;
use std::sync::Arc;
use vt_model::{EngineId, FileType};
use vt_obs::Obs;

/// Correlation threshold for "strongly correlated" (the paper's 0.8).
pub const STRONG_RHO: f64 = 0.8;

/// Result of the correlation analysis for one scope.
#[derive(Debug, Clone)]
pub struct CorrelationAnalysis {
    /// Scope: `None` = all of *S* (Fig. 11); `Some(ft)` = one file type
    /// (Fig. 12, Tables 4–8).
    pub scope: Option<FileType>,
    /// Number of engines.
    pub engine_count: usize,
    /// Rows of `R` used (after the row cap).
    pub rows: u64,
    /// Rows the scope held before the cap.
    pub total_rows: u64,
    /// True when the row cap dropped rows (`total_rows > rows`); the
    /// used rows are then a deterministic even stride across the scope.
    pub truncated: bool,
    /// Full ρ matrix, row-major `engine_count × engine_count`; `NaN`
    /// where undefined (constant column).
    pub rho: Vec<f64>,
    /// Pairs with ρ > [`STRONG_RHO`], sorted by descending ρ.
    pub strong_pairs: Vec<(EngineId, EngineId, f64)>,
    /// Connected components of the strong-pair graph with ≥2 members,
    /// each sorted by engine index; components sorted by size then
    /// first member.
    pub groups: Vec<Vec<EngineId>>,
}

impl CorrelationAnalysis {
    /// ρ between two engines (NaN when undefined).
    pub fn rho_between(&self, a: EngineId, b: EngineId) -> f64 {
        self.rho[a.index() * self.engine_count + b.index()]
    }
}

/// Spearman ρ between two three-valued columns given their 3×3
/// contingency table. `counts[i][j]` counts rows with
/// `x = i as i8 - 1`, `y = j as i8 - 1`. Returns `None` when either
/// margin is constant.
pub fn spearman_from_contingency(counts: &[[u64; 3]; 3]) -> Option<f64> {
    let n: u64 = counts.iter().flatten().sum();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    // Margins.
    let mut row: [f64; 3] = [0.0; 3];
    let mut col: [f64; 3] = [0.0; 3];
    for i in 0..3 {
        for j in 0..3 {
            row[i] += counts[i][j] as f64;
            col[j] += counts[i][j] as f64;
        }
    }
    // Average ranks per value group (1-based fractional ranks).
    let rank_of = |margin: &[f64; 3]| -> [f64; 3] {
        let mut out = [0.0; 3];
        let mut below = 0.0;
        for v in 0..3 {
            out[v] = below + (margin[v] + 1.0) / 2.0;
            below += margin[v];
        }
        out
    };
    let rx = rank_of(&row);
    let ry = rank_of(&col);
    // Pearson over ranks. Mean rank is (n+1)/2 on both sides.
    let mean = (nf + 1.0) / 2.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..3 {
        let dx = rx[i] - mean;
        sxx += row[i] * dx * dx;
        let dy = ry[i] - mean;
        syy += col[i] * dy * dy;
        for j in 0..3 {
            sxy += counts[i][j] as f64 * dx * (ry[j] - mean);
        }
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Whether scope-row `row` (0-based position in the scope's row
/// sequence, record order) survives the row cap.
///
/// With `total_rows ≤ max_rows` every row is used. Otherwise the
/// selected set is `{ ⌊k·total/max⌋ : k ∈ 0..max }` — exactly
/// `max_rows` rows, evenly strided across the whole scope, so a capped
/// matrix samples early- and late-ordinal records alike instead of the
/// old prefix (which biased the matrix toward early-ordinal samples).
/// Membership depends only on `(row, total_rows, max_rows)`, never on
/// partitioning, which is what keeps the fused kernel's output
/// independent of worker count.
pub fn row_selected(row: u64, total_rows: u64, max_rows: usize) -> bool {
    let m = max_rows as u128;
    let t = total_rows as u128;
    if t <= m {
        return true;
    }
    let r = row as u128;
    // Smallest k with ⌊k·t/m⌋ ≥ row; selected iff it hits exactly.
    let k = (r * m).div_ceil(t);
    k < m && k * t < (r + 1) * m
}

/// All-pairs 3×3 contingency tables for one scope.
///
/// This is the fused kernel's accumulator: per-partition instances fill
/// independently and [`merge`](Self::merge) associatively (tables are
/// plain counts), so `partition → merge → ρ` is deterministic at every
/// worker count. Only the four `{1,0}×{1,0}` cells are stored per pair;
/// the five cells involving −1 follow exactly from the per-engine
/// margins and the row count, so [`table`](Self::table) reconstructs
/// the full 3×3 by exact `u64` subtraction. For the paper's 70-engine
/// roster one accumulator is 70·69/2 · 4 counts ≈ 77 KB — independent
/// of row count, unlike the reference path's `engines × rows` column
/// matrix, and cheap enough that `vtld serve`'s merge tree clones it on
/// every epoch publish.
///
/// Rows are counted **bit-sliced**: up to 64 rows buffer as one bit per
/// row in two words per engine (`pos` = R is 1, `zero` = R is 0; unset
/// in both = −1). A full block flushes into the tables with 4
/// `AND`+`popcount`s per pair — ~an order of magnitude fewer operations
/// than incrementing per row × pair. All arithmetic is exact `u64`
/// counting, so block boundaries (and hence partitioning) never change
/// the resulting tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeContingency {
    /// Scope this accumulator counts (None = global).
    pub scope: Option<FileType>,
    /// Number of engines (columns of `R`).
    pub engine_count: usize,
    /// Rows accumulated so far (post-cap).
    pub rows: u64,
    /// Rows the scope held pre-cap (set by [`fused_contingencies`]).
    pub total_rows: u64,
    /// Whether the row cap dropped rows.
    pub truncated: bool,
    /// Flattened upper-triangle `{1,0}×{1,0}` cells: pair `(a, b)` with
    /// `a < b` at `pair_index(a, b) * 4 + x*2 + y`, where `x`/`y` is 1
    /// when the engine's R is 1 and 0 when it is 0.
    counts: Vec<u64>,
    /// Per-engine margins: rows where engine `e` has R = 1 / R = 0.
    pos_total: Vec<u64>,
    zero_total: Vec<u64>,
    /// Block buffer: bit `r` of `pos[e]` / `zero[e]` is engine `e`'s
    /// verdict for the `r`-th buffered row.
    pos: Vec<u64>,
    zero: Vec<u64>,
    /// Rows currently buffered (0..=64).
    buffered: u32,
}

impl ScopeContingency {
    /// A zeroed accumulator.
    pub fn new(scope: Option<FileType>, engine_count: usize) -> Self {
        let pairs = engine_count * engine_count.saturating_sub(1) / 2;
        Self {
            scope,
            engine_count,
            rows: 0,
            total_rows: 0,
            truncated: false,
            counts: vec![0; pairs * 4],
            pos_total: vec![0; engine_count],
            zero_total: vec![0; engine_count],
            pos: vec![0; engine_count],
            zero: vec![0; engine_count],
            buffered: 0,
        }
    }

    /// Position of pair `(a, b)`, `a < b`, in upper-triangle order.
    fn pair_index(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < self.engine_count);
        a * (2 * self.engine_count - a - 1) / 2 + (b - a - 1)
    }

    /// The 3×3 table of pair `(a, b)`, `a < b`. Call
    /// [`finalize`](Self::finalize) first if rows were accumulated
    /// directly (the kernel does).
    ///
    /// Only the `{1,0}×{1,0}` cells are stored; the −1 row/column is
    /// reconstructed from the margins. Every subtraction is a sum of
    /// per-block non-negative terms, so the reconstruction is exact.
    pub fn table(&self, a: usize, b: usize) -> [[u64; 3]; 3] {
        debug_assert_eq!(self.buffered, 0, "finalize() before reading tables");
        let base = self.pair_index(a, b) * 4;
        let c11 = self.counts[base];
        let c12 = self.counts[base + 1];
        let c21 = self.counts[base + 2];
        let c22 = self.counts[base + 3];
        let (ma, ka) = (self.pos_total[a], self.zero_total[a]);
        let (mb, kb) = (self.pos_total[b], self.zero_total[b]);
        let c10 = ka - c12 - c11;
        let c01 = kb - c21 - c11;
        let c20 = ma - c22 - c21;
        let c02 = mb - c22 - c12;
        let c00 = (self.rows - ma - ka) - c01 - c02;
        [[c00, c01, c02], [c10, c11, c12], [c20, c21, c22]]
    }

    /// Counts one scan row into every pair's table. `vals[e]` is engine
    /// `e`'s R-value for this row (−1, 0 or 1).
    pub fn accumulate_row(&mut self, vals: &[i8]) {
        debug_assert_eq!(vals.len(), self.engine_count);
        let bit = 1u64 << self.buffered;
        for (e, &v) in vals.iter().enumerate() {
            match v {
                1 => self.pos[e] |= bit,
                0 => self.zero[e] |= bit,
                _ => {}
            }
        }
        self.advance_row();
    }

    /// Counts one scan row given engine bitmaps (bit `e` of `pos[e/64]`
    /// set = engine `e` flagged; of `zero` = scanned clean; neither =
    /// undetected). This is the kernel's entry point — it reads the
    /// report's native verdict bitmaps without materializing per-engine
    /// values.
    ///
    /// Instead of testing every engine's bit individually, each input
    /// word is walked by its *set* bits (`trailing_zeros` + clear-lowest),
    /// so a sparse row costs work proportional to the engines that
    /// actually scanned it, not the roster size. Bits at or beyond
    /// `engine_count` are masked off, and a bit set in both `pos` and
    /// `zero` counts as `pos` — the same precedence as the old
    /// per-engine `if`/`else if`.
    pub fn accumulate_masks(&mut self, pos: &[u64; 2], zero: &[u64; 2]) {
        let bit = 1u64 << self.buffered;
        for w in 0..2 {
            let roster = word_mask(self.engine_count, w);
            let base = w << 6;
            let mut p = pos[w] & roster;
            while p != 0 {
                self.pos[base + p.trailing_zeros() as usize] |= bit;
                p &= p - 1;
            }
            let mut z = zero[w] & roster & !pos[w];
            while z != 0 {
                self.zero[base + z.trailing_zeros() as usize] |= bit;
                z &= z - 1;
            }
        }
        self.advance_row();
    }

    fn advance_row(&mut self) {
        self.rows += 1;
        self.buffered += 1;
        if self.buffered == 64 {
            self.flush_block();
        }
    }

    /// Folds the buffered block into the tables: per pair, a popcount of
    /// an `AND` for each of the four stored `{1,0}×{1,0}` cells, plus
    /// per-engine margin updates.
    fn flush_block(&mut self) {
        if self.buffered == 0 {
            return;
        }
        let mut base = 0usize;
        for a in 0..self.engine_count {
            let (pa, za) = (self.pos[a], self.zero[a]);
            self.pos_total[a] += pa.count_ones() as u64;
            self.zero_total[a] += za.count_ones() as u64;
            for b in (a + 1)..self.engine_count {
                let (pb, zb) = (self.pos[b], self.zero[b]);
                let t = &mut self.counts[base..base + 4];
                t[0] += (za & zb).count_ones() as u64;
                t[1] += (za & pb).count_ones() as u64;
                t[2] += (pa & zb).count_ones() as u64;
                t[3] += (pa & pb).count_ones() as u64;
                base += 4;
            }
        }
        self.pos.iter_mut().for_each(|w| *w = 0);
        self.zero.iter_mut().for_each(|w| *w = 0);
        self.buffered = 0;
    }

    /// Flushes any partially filled block. Must be called after the
    /// last row and before [`table`](Self::table) or
    /// [`merge`](Self::merge).
    pub fn finalize(&mut self) {
        self.flush_block();
    }

    /// Folds another partition's finalized accumulator into this one.
    /// Addition of counts is associative and commutative, so any merge
    /// tree yields the same tables.
    pub fn merge(&mut self, other: &ScopeContingency) {
        debug_assert_eq!(self.scope, other.scope);
        debug_assert_eq!(self.engine_count, other.engine_count);
        debug_assert_eq!(self.buffered, 0, "finalize() both sides before merging");
        debug_assert_eq!(other.buffered, 0, "finalize() both sides before merging");
        self.rows += other.rows;
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        for (m, o) in self.pos_total.iter_mut().zip(&other.pos_total) {
            *m += o;
        }
        for (k, o) in self.zero_total.iter_mut().zip(&other.zero_total) {
            *k += o;
        }
    }
}

/// The fused kernel: one parallel scan of *S* that fills the all-pairs
/// contingency tables of every scope in `scopes` simultaneously.
///
/// Two passes over the same [`par::partition_ranges`] split:
///
/// 1. a metadata-only counting pass gives each partition its starting
///    row index per scope (and the per-scope totals the row cap strides
///    against);
/// 2. the accumulation pass walks each partition's records once,
///    assigns every report its global scope-row indices, applies
///    [`row_selected`], and counts the row into the matching scopes'
///    accumulators (a row belongs to the global scope plus at most its
///    own file type, so fusing 8 scopes does *not* cost 8× the work).
///
/// Partition accumulators then merge associatively. Because row
/// indices and selection are global quantities, the merged tables are
/// bit-identical at every worker count.
pub fn fused_contingencies(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
    scopes: &[Option<FileType>],
    max_rows: usize,
    workers: usize,
) -> Vec<ScopeContingency> {
    fused_contingencies_obs(
        records,
        s,
        engine_count,
        scopes,
        max_rows,
        workers,
        Obs::noop(),
    )
}

/// [`fused_contingencies`] with per-worker instrumentation: the
/// counting pass records under the `correlation_count` kernel and the
/// accumulation pass under `correlation_accumulate` (see
/// [`par::map_ranges_obs`] for the metric names). Instrumentation
/// never feeds back into the tables — output is bit-identical with
/// `obs` enabled, disabled, or [`Obs::noop`].
#[allow(clippy::too_many_arguments)]
pub fn fused_contingencies_obs(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
    scopes: &[Option<FileType>],
    max_rows: usize,
    workers: usize,
    obs: &Obs,
) -> Vec<ScopeContingency> {
    let n = s.len() as u64;
    let ranges = par::partition_ranges(n, workers);

    // Pass 1: per-partition, per-scope row counts (metadata only).
    let per_part: Vec<Vec<u64>> =
        par::map_ranges_obs(&ranges, obs, "correlation_count", |_, range| {
            let mut c = vec![0u64; scopes.len()];
            for i in range {
                let rec = &records[s.indices[i as usize]];
                let nrep = rec.reports.len() as u64;
                for (cnt, &scope) in c.iter_mut().zip(scopes) {
                    if scope_matches(scope, rec) {
                        *cnt += nrep;
                    }
                }
            }
            c
        });

    // Exclusive prefix sums: each partition's starting row index per
    // scope; the grand totals drive the row-cap stride.
    let mut offsets: Vec<Vec<u64>> = Vec::with_capacity(per_part.len());
    let mut totals = vec![0u64; scopes.len()];
    for part in &per_part {
        offsets.push(totals.clone());
        for (t, c) in totals.iter_mut().zip(part) {
            *t += c;
        }
    }

    // Pass 2: fused accumulation over the same partitions.
    let parts: Vec<Vec<ScopeContingency>> =
        par::map_ranges_obs(&ranges, obs, "correlation_accumulate", |pi, range| {
            let mut accs: Vec<ScopeContingency> = scopes
                .iter()
                .map(|&scope| ScopeContingency::new(scope, engine_count))
                .collect();
            let mut next_row = offsets[pi].clone();
            for i in range {
                let rec = &records[s.indices[i as usize]];
                for rep in &rec.reports {
                    // R-values map straight onto the report's native verdict
                    // bitmaps: pos = flagged, zero = scanned-and-clean,
                    // neither = undetected (engines beyond the report's
                    // roster have unset `active` bits, matching `get()`).
                    let (active, detected) = rep.verdicts.raw();
                    let zero = [active[0] & !detected[0], active[1] & !detected[1]];
                    for (si, &scope) in scopes.iter().enumerate() {
                        if !scope_matches(scope, rec) {
                            continue;
                        }
                        let row = next_row[si];
                        next_row[si] += 1;
                        if !row_selected(row, totals[si], max_rows) {
                            continue;
                        }
                        accs[si].accumulate_masks(&detected, &zero);
                    }
                }
            }
            for acc in &mut accs {
                acc.finalize();
            }
            accs
        });

    let mut iter = parts.into_iter();
    let mut merged: Vec<ScopeContingency> = iter.next().unwrap_or_else(|| {
        scopes
            .iter()
            .map(|&scope| ScopeContingency::new(scope, engine_count))
            .collect()
    });
    for part in iter {
        for (acc, p) in merged.iter_mut().zip(&part) {
            acc.merge(p);
        }
    }
    for (acc, &total) in merged.iter_mut().zip(&totals) {
        acc.total_rows = total;
        acc.truncated = total > max_rows as u64;
    }
    merged
}

fn scope_matches(scope: Option<FileType>, rec: &SampleRecord) -> bool {
    match scope {
        None => true,
        Some(ft) => rec.meta.file_type == ft,
    }
}

/// Bits of verdict-bitmap word `w` that correspond to real engines
/// (`engine_count` total across the two words).
fn word_mask(engine_count: usize, w: usize) -> u64 {
    let lo = w * 64;
    if engine_count <= lo {
        0
    } else if engine_count >= lo + 64 {
        !0
    } else {
        (1u64 << (engine_count - lo)) - 1
    }
}

/// Runs the fused kernel and finishes every scope into a
/// [`CorrelationAnalysis`]. Output is bit-identical (ρ matrices,
/// strong pairs, groups) to calling the test-only `analyze_impl`
/// reference once per scope, independent of `workers`.
pub fn analyze_fused(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
    scopes: &[Option<FileType>],
    max_rows: usize,
    workers: usize,
) -> Vec<CorrelationAnalysis> {
    analyze_fused_obs(
        records,
        s,
        engine_count,
        scopes,
        max_rows,
        workers,
        Obs::noop(),
    )
}

/// [`analyze_fused`] with per-worker instrumentation (see
/// [`fused_contingencies_obs`]). Output is bit-identical regardless of
/// whether `obs` is enabled.
#[allow(clippy::too_many_arguments)]
pub fn analyze_fused_obs(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
    scopes: &[Option<FileType>],
    max_rows: usize,
    workers: usize,
    obs: &Obs,
) -> Vec<CorrelationAnalysis> {
    fused_contingencies_obs(records, s, engine_count, scopes, max_rows, workers, obs)
        .iter()
        .map(analysis_from_contingency)
        .collect()
}

/// §7.2 correlation stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`]. Produces the global-scope analysis plus one
/// analysis per file type in [`Correlation::scopes`] (in order), all
/// from one fused parallel pass honoring `ctx.workers` and recording
/// per-worker busy time into `ctx.obs`.
#[derive(Debug, Clone, Copy)]
pub struct Correlation {
    /// File types given a dedicated per-type analysis alongside the
    /// global scope.
    pub scopes: &'static [FileType],
    /// Row cap per scope (see [`row_selected`]).
    pub max_rows: usize,
}

impl Default for Correlation {
    fn default() -> Self {
        Correlation {
            scopes: &crate::pipeline::CORRELATION_SCOPES,
            max_rows: crate::pipeline::CORRELATION_MAX_ROWS,
        }
    }
}

impl Correlation {
    /// The scope list the stage analyzes: global first, then the
    /// configured per-type scopes in order.
    fn all_scopes(&self) -> Vec<Option<FileType>> {
        let mut all: Vec<Option<FileType>> = vec![None];
        all.extend(self.scopes.iter().map(|&ft| Some(ft)));
        all
    }
}

impl Analysis for Correlation {
    type Output = (CorrelationAnalysis, Vec<CorrelationAnalysis>);
    type Partial = CorrelationPartial;

    fn name(&self) -> &'static str {
        "correlation"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> CorrelationPartial {
        let scopes = self.all_scopes();
        assert!(
            scopes.len() <= 8,
            "scope-membership masks hold at most 8 scopes"
        );
        // Table-only fold: scope membership compares dense type indices,
        // report counts come from CSR offsets, and the verdict planes are
        // read straight out of the table's bitmap columns — no
        // `SampleRecord`/`ScanReport` access, so the zero-copy segment
        // path feeds this fold without materializing row structs. The
        // table's per-sample rows are date-sorted exactly like
        // `SampleRecord::reports`, so the emitted row plane is
        // bit-identical to the record-walking fold.
        let scope_idx: Vec<Option<usize>> = scopes
            .iter()
            .map(|s| s.map(|ft| ft.dense_index()))
            .collect();
        let table = ctx.table;
        let engine_count = ctx.engine_count();
        let ranges = par::partition_ranges(ctx.s.len() as u64, ctx.workers);
        let parts = par::map_ranges_obs(&ranges, ctx.obs, "correlation_fold", |_, range| {
            let mut membership = Vec::new();
            let mut detected = Vec::new();
            let mut zero = Vec::new();
            let mut totals = vec![0u64; scopes.len()];
            for i in range {
                let idx = ctx.s.indices[i as usize];
                let ti = table.type_idx(idx);
                let mut mask = 0u8;
                for (si, scope) in scope_idx.iter().enumerate() {
                    if scope.map_or(true, |d| d == ti) {
                        mask |= 1 << si;
                        totals[si] += table.report_count(idx) as u64;
                    }
                }
                for row in table.rows(idx) {
                    let active = table.active_words(row);
                    let det = table.detected_words(row);
                    let z = [active[0] & !det[0], active[1] & !det[1]];
                    membership.push(mask);
                    zero.push(z);
                    detected.push(det);
                }
            }
            (membership, detected, zero, totals)
        });
        let mut out = CorrelationPartial {
            scopes: scopes.clone(),
            engine_count,
            max_rows: self.max_rows,
            plane: Vec::new(),
            totals: vec![0u64; self.scopes.len() + 1],
            contingency: scopes
                .iter()
                .map(|&scope| ScopeContingency::new(scope, engine_count))
                .collect(),
        };
        let mut chunk = PlaneChunk {
            membership: Vec::new(),
            detected: Vec::new(),
            zero: Vec::new(),
        };
        for (membership, detected, zero, totals) in parts {
            // Eager uncapped accumulation: every row of the segment
            // counts into its scopes' contingency tables right here, so
            // `finish` only walks the retained plane when a scope
            // actually overflows the row cap. One accumulator set per
            // fold (not per worker partition — the tables are fixed-size
            // and zeroing a set per partition dwarfs the per-row work at
            // segment scale). Counts are exact u64 sums and block
            // boundaries never change the tables, so this is
            // bit-identical to the sequential finish-time walk.
            for ((&mask, det), z) in membership.iter().zip(&detected).zip(&zero) {
                for (si, acc) in out.contingency.iter_mut().enumerate() {
                    if mask >> si & 1 == 1 {
                        acc.accumulate_masks(det, z);
                    }
                }
            }
            chunk.membership.extend(membership);
            chunk.detected.extend(detected);
            chunk.zero.extend(zero);
            for (t, c) in out.totals.iter_mut().zip(totals) {
                *t += c;
            }
        }
        if !chunk.membership.is_empty() {
            out.plane.push(Arc::new(chunk));
        }
        for acc in &mut out.contingency {
            acc.finalize();
        }
        out
    }

    fn merge(&self, mut a: CorrelationPartial, b: CorrelationPartial) -> CorrelationPartial {
        a.merge_from(&b);
        a
    }

    fn finish(&self, p: &CorrelationPartial) -> (CorrelationAnalysis, Vec<CorrelationAnalysis>) {
        // Scopes under the row cap select every row, so their eagerly
        // accumulated tables are exactly what the plane walk would
        // rebuild — skip it. Only overflowing scopes pay the O(rows)
        // walk, because their selection stride depends on the final
        // totals.
        let capped: Vec<bool> = p
            .totals
            .iter()
            .map(|&total| total > p.max_rows as u64)
            .collect();
        let mut walked: Vec<Option<ScopeContingency>> = p
            .scopes
            .iter()
            .zip(&capped)
            .map(|(&scope, &is_capped)| {
                is_capped.then(|| ScopeContingency::new(scope, p.engine_count))
            })
            .collect();
        if capped.iter().any(|&c| c) {
            // Per-scope row counters are global across chunks: the rope
            // concatenates folds in segment order, so walking chunks
            // sequentially visits rows in exactly the flat-plane order.
            let mut next = vec![0u64; p.scopes.len()];
            for chunk in &p.plane {
                for (r, &mask) in chunk.membership.iter().enumerate() {
                    for (si, acc) in walked.iter_mut().enumerate() {
                        let Some(acc) = acc else { continue };
                        if mask >> si & 1 == 0 {
                            continue;
                        }
                        let row = next[si];
                        next[si] += 1;
                        if !row_selected(row, p.totals[si], p.max_rows) {
                            continue;
                        }
                        acc.accumulate_masks(&chunk.detected[r], &chunk.zero[r]);
                    }
                }
            }
            for acc in walked.iter_mut().flatten() {
                acc.finalize();
            }
        }
        let mut analyses: Vec<CorrelationAnalysis> = p
            .scopes
            .iter()
            .enumerate()
            .map(|(si, &scope)| {
                let acc = walked[si].as_ref().unwrap_or(&p.contingency[si]);
                finish_analysis(
                    scope,
                    p.engine_count,
                    acc.rows,
                    p.totals[si],
                    capped[si],
                    |a, b| acc.table(a, b),
                )
            })
            .collect();
        let global = analyses.remove(0);
        (global, analyses)
    }

    /// The batch path keeps the fused two-pass kernel: it never
    /// materializes the row plane, so it is cheaper than the default
    /// `finish(fold(ctx))` while producing bit-identical output
    /// (verified by `stage_run_equals_finish_of_fold`).
    fn run(&self, ctx: &AnalysisCtx) -> (CorrelationAnalysis, Vec<CorrelationAnalysis>) {
        let all = self.all_scopes();
        let mut analyses = analyze_fused_obs(
            ctx.records,
            ctx.s,
            ctx.engine_count(),
            &all,
            self.max_rows,
            ctx.workers,
            ctx.obs,
        );
        let global = analyses.remove(0);
        (global, analyses)
    }
}

/// Mergeable accumulator of the §7.2 fold ([`Correlation`]'s
/// [`Analysis::Partial`]): the scope-tagged row plane of `R` in record
/// order — per scan row a scope-membership bitmask (bit 0 = the global
/// scope, bit `i+1` = `scopes[i]`) plus the report's native
/// detected/zero verdict words — and the per-scope row totals. Merging
/// concatenates the row planes in segment order and adds the totals, so
/// the finished contingency tables (and hence ρ, strong pairs and
/// groups) are bit-identical to the fused batch kernel over the
/// concatenated records: the row-cap stride depends only on global row
/// indices and totals, and [`ScopeContingency`] block boundaries never
/// change the tables.
///
/// Unlike every other stage's partial this one is O(rows), not O(1) —
/// the row cap can only be applied once the final totals are known, so
/// the plane must survive until `finish`. Alongside the plane, each
/// scope's **uncapped** contingency tables are accumulated eagerly at
/// fold time and merged by addition: while a scope stays under
/// `max_rows` (every row selected), `finish` reads those tables
/// directly and never re-walks the plane, which is what keeps a serve
/// publish O(changed-slot) instead of O(total rows).
///
/// The plane itself is a rope of immutable [`Arc`]-shared chunks (one
/// per fold), so cloning or merging partials — which the serve merge
/// tree does on every publish — moves chunk pointers instead of copying
/// row data. Chunks are never mutated after the fold that built them,
/// and the rope preserves segment order, so the walk in `finish` sees
/// the same row sequence as a flat plane would.
#[derive(Debug, Clone)]
pub struct CorrelationPartial {
    scopes: Vec<Option<FileType>>,
    engine_count: usize,
    max_rows: usize,
    plane: Vec<Arc<PlaneChunk>>,
    totals: Vec<u64>,
    /// Per-scope tables over *all* rows (no cap applied), finalized at
    /// every fold/merge boundary. Exact u64 counts, so any merge tree
    /// over segments yields the same tables.
    contingency: Vec<ScopeContingency>,
}

/// One fold's contiguous slice of the scope-tagged row plane. Shared
/// immutably between every partial whose history includes the fold.
#[derive(Debug)]
struct PlaneChunk {
    membership: Vec<u8>,
    detected: Vec<[u64; 2]>,
    zero: Vec<[u64; 2]>,
}

impl CorrelationPartial {
    /// Folds a later segment's partial into this one without consuming
    /// it — the serve merge tree re-merges cached internal nodes on
    /// every publish, and cloning the right child just to feed an owned
    /// merge would double the per-publish memory traffic.
    pub(crate) fn merge_from(&mut self, other: &CorrelationPartial) {
        assert_eq!(
            self.scopes, other.scopes,
            "partials from different scope lists"
        );
        assert_eq!(self.engine_count, other.engine_count);
        assert_eq!(self.max_rows, other.max_rows);
        self.plane.extend_from_slice(&other.plane);
        for (t, c) in self.totals.iter_mut().zip(&other.totals) {
            *t += c;
        }
        for (acc, part) in self.contingency.iter_mut().zip(&other.contingency) {
            acc.merge(part);
        }
    }
}

/// Finishes one scope's merged contingency tables into the ρ matrix,
/// strong pairs and groups.
pub fn analysis_from_contingency(sc: &ScopeContingency) -> CorrelationAnalysis {
    finish_analysis(
        sc.scope,
        sc.engine_count,
        sc.rows,
        sc.total_rows,
        sc.truncated,
        |a, b| sc.table(a, b),
    )
}

/// Runs the correlation analysis over *S* (optionally restricted to one
/// file type) — the serial, column-materializing reference
/// implementation the fused kernel is verified against.
///
/// At most `max_rows` scan rows are used; when the scope exceeds the
/// cap the rows are strided evenly across the scope (see
/// [`row_selected`]) and the result is flagged `truncated`.
#[cfg(test)]
pub(crate) fn analyze_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
    scope: Option<FileType>,
    max_rows: usize,
) -> CorrelationAnalysis {
    // Count the scope's rows so the cap can stride instead of truncate.
    let total_rows: u64 = s
        .iter(records)
        .filter(|rec| scope_matches(scope, rec))
        .map(|rec| rec.reports.len() as u64)
        .sum();
    let truncated = total_rows > max_rows as u64;

    // Collect columns: one Vec<i8> per engine.
    let mut columns: Vec<Vec<i8>> = vec![Vec::new(); engine_count];
    let mut rows = 0u64;
    let mut next_row = 0u64;
    for rec in s.iter(records) {
        if !scope_matches(scope, rec) {
            continue;
        }
        for rep in &rec.reports {
            let row = next_row;
            next_row += 1;
            if !row_selected(row, total_rows, max_rows) {
                continue;
            }
            for (e, col) in columns.iter_mut().enumerate() {
                col.push(rep.verdicts.get(EngineId::new(e)).r_value());
            }
            rows += 1;
        }
    }

    finish_analysis(scope, engine_count, rows, total_rows, truncated, |a, b| {
        let mut counts = [[0u64; 3]; 3];
        for (&x, &y) in columns[a].iter().zip(&columns[b]) {
            counts[(x + 1) as usize][(y + 1) as usize] += 1;
        }
        counts
    })
}

/// Shared tail of both paths: pairwise ρ from contingency tables, then
/// the strong-pair list and connected-component groups.
fn finish_analysis(
    scope: Option<FileType>,
    engine_count: usize,
    rows: u64,
    total_rows: u64,
    truncated: bool,
    mut pair_table: impl FnMut(usize, usize) -> [[u64; 3]; 3],
) -> CorrelationAnalysis {
    let mut rho = vec![f64::NAN; engine_count * engine_count];
    let mut strong_pairs = Vec::new();
    for a in 0..engine_count {
        rho[a * engine_count + a] = 1.0;
        for b in (a + 1)..engine_count {
            let counts = pair_table(a, b);
            let r = spearman_from_contingency(&counts).unwrap_or(f64::NAN);
            rho[a * engine_count + b] = r;
            rho[b * engine_count + a] = r;
            if r > STRONG_RHO {
                strong_pairs.push((EngineId::new(a), EngineId::new(b), r));
            }
        }
    }
    strong_pairs.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite"));

    // Connected components over strong pairs (union-find).
    let mut parent: Vec<usize> = (0..engine_count).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b, _) in &strong_pairs {
        let ra = find(&mut parent, a.index());
        let rb = find(&mut parent, b.index());
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut comp: std::collections::HashMap<usize, Vec<EngineId>> =
        std::collections::HashMap::new();
    for e in 0..engine_count {
        let root = find(&mut parent, e);
        comp.entry(root).or_default().push(EngineId::new(e));
    }
    let mut groups: Vec<Vec<EngineId>> = comp.into_values().filter(|g| g.len() >= 2).collect();
    for g in &mut groups {
        g.sort_by_key(|e| e.index());
    }
    groups.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].index().cmp(&b[0].index())));

    CorrelationAnalysis {
        scope,
        engine_count,
        rows,
        total_rows,
        truncated,
        rho,
        strong_pairs,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use proptest::prelude::*;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict, VerdictVec,
    };

    #[test]
    fn contingency_matches_general_spearman() {
        // Deterministic mixed data.
        let xs: Vec<i8> = (0..200).map(|i| ((i * 7 + 3) % 3) as i8 - 1).collect();
        let ys: Vec<i8> = (0..200)
            .map(|i| {
                if i % 4 == 0 {
                    ((i * 5) % 3) as i8 - 1
                } else {
                    xs[i]
                }
            })
            .collect();
        let mut counts = [[0u64; 3]; 3];
        for (&x, &y) in xs.iter().zip(&ys) {
            counts[(x + 1) as usize][(y + 1) as usize] += 1;
        }
        let fast = spearman_from_contingency(&counts).unwrap();
        let xf: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let yf: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        let general = vt_stats::spearman(&xf, &yf).unwrap();
        assert!((fast - general).abs() < 1e-12, "{fast} vs {general}");
    }

    proptest! {
        #[test]
        fn contingency_shortcut_is_exact(
            data in proptest::collection::vec((0u8..3, 0u8..3), 2..300)
        ) {
            let mut counts = [[0u64; 3]; 3];
            for &(x, y) in &data {
                counts[x as usize][y as usize] += 1;
            }
            let fast = spearman_from_contingency(&counts);
            let xf: Vec<f64> = data.iter().map(|&(x, _)| x as f64).collect();
            let yf: Vec<f64> = data.iter().map(|&(_, y)| y as f64).collect();
            let general = vt_stats::spearman(&xf, &yf);
            match (fast, general) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b),
                (None, None) => {}
                (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a, b),
            }
        }
    }

    #[test]
    fn row_selection_is_even_and_exact() {
        for (total, max) in [(10u64, 3usize), (24, 5), (1000, 7), (400_001, 400_000)] {
            let selected: Vec<u64> = (0..total)
                .filter(|&r| row_selected(r, total, max))
                .collect();
            assert_eq!(selected.len(), max, "total={total} max={max}");
            assert_eq!(selected[0], 0, "stride starts at the front");
            // Evenly strided: consecutive picks are ⌈total/max⌉ apart at
            // most, and the back half of the scope is represented — the
            // bias the old prefix cap had.
            let stride_bound = total.div_ceil(max as u64) + 1;
            for w in selected.windows(2) {
                assert!(
                    w[1] - w[0] <= stride_bound,
                    "gap {w:?} total={total} max={max}"
                );
            }
            assert!(
                selected.iter().any(|&r| r >= total / 2),
                "selection reaches the back half: total={total} max={max}"
            );
        }
        // No cap → everything selected.
        assert!((0..50u64).all(|r| row_selected(r, 50, 50)));
        assert!((0..50u64).all(|r| row_selected(r, 50, 1000)));
    }

    #[test]
    fn bit_sliced_blocks_count_exactly() {
        // 150 rows crosses two full 64-row blocks plus a 22-row partial
        // flush; verdicts cycle through all 9 (x, y) combinations per
        // engine pair. The bit-sliced tables must equal a direct count,
        // and the mask entry point must agree with the row entry point.
        let engines = 5usize;
        let rows: Vec<Vec<i8>> = (0..150u64)
            .map(|r| {
                (0..engines)
                    .map(|e| ((r * 7 + e as u64 * 13 + r * r % 5) % 3) as i8 - 1)
                    .collect()
            })
            .collect();

        let mut by_rows = ScopeContingency::new(None, engines);
        let mut by_masks = ScopeContingency::new(None, engines);
        let mut direct = vec![[[0u64; 3]; 3]; engines * (engines - 1) / 2];
        for vals in &rows {
            by_rows.accumulate_row(vals);
            let mut pos = [0u64; 2];
            let mut zero = [0u64; 2];
            for (e, &v) in vals.iter().enumerate() {
                match v {
                    1 => pos[e >> 6] |= 1 << (e & 63),
                    0 => zero[e >> 6] |= 1 << (e & 63),
                    _ => {}
                }
            }
            by_masks.accumulate_masks(&pos, &zero);
            let mut p = 0;
            for a in 0..engines {
                for b in (a + 1)..engines {
                    direct[p][(vals[a] + 1) as usize][(vals[b] + 1) as usize] += 1;
                    p += 1;
                }
            }
        }
        by_rows.finalize();
        by_masks.finalize();

        assert_eq!(by_rows.rows, 150);
        let mut p = 0;
        for a in 0..engines {
            for b in (a + 1)..engines {
                assert_eq!(by_rows.table(a, b), direct[p], "pair ({a},{b})");
                assert_eq!(by_masks.table(a, b), direct[p], "mask pair ({a},{b})");
                p += 1;
            }
        }
    }

    /// Two samples with 4 engines: engines 0 and 1 identical (copiers),
    /// engine 2 anti-correlated with 0, engine 3 independent-ish.
    fn fixture() -> (Vec<SampleRecord>, FreshDynamic) {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let mut records = Vec::new();
        for i in 0..6u64 {
            let meta = SampleMeta {
                hash: SampleHash::from_ordinal(i),
                file_type: if i % 2 == 0 {
                    FileType::Win32Exe
                } else {
                    FileType::Pdf
                },
                origin: first,
                first_submission: first,
                truth: GroundTruth::Benign,
            };
            let reports: Vec<ScanReport> = (0..4)
                .map(|k| {
                    let bit = (i + k) % 2 == 0;
                    let mut verdicts = VerdictVec::new(4);
                    let v = |b: bool| {
                        if b {
                            Verdict::Malicious
                        } else {
                            Verdict::Benign
                        }
                    };
                    verdicts.set(EngineId(0), v(bit));
                    verdicts.set(EngineId(1), v(bit));
                    verdicts.set(EngineId(2), v(!bit));
                    verdicts.set(
                        EngineId(3),
                        if (i * 3 + k) % 3 == 0 {
                            Verdict::Undetected
                        } else {
                            v(k % 2 == 0)
                        },
                    );
                    ScanReport {
                        sample: meta.hash,
                        file_type: FileType::Pdf,
                        analysis_date: first + Duration::days(k as i64),
                        last_submission_date: first,
                        times_submitted: 1,
                        kind: ReportKind::Upload,
                        verdicts,
                    }
                })
                .collect();
            records.push(SampleRecord::new(meta, reports));
        }
        let s = freshdyn::build(&records, window);
        (records, s)
    }

    #[test]
    fn copier_pair_is_strong_and_grouped() {
        let (records, s) = fixture();
        assert!(!s.is_empty());
        let a = analyze_impl(&records, &s, 4, None, 10_000);
        assert!(a.rho_between(EngineId(0), EngineId(1)) > 0.99);
        assert!(a.rho_between(EngineId(0), EngineId(2)) < -0.99);
        assert!(a
            .strong_pairs
            .iter()
            .any(|&(x, y, _)| (x, y) == (EngineId(0), EngineId(1))));
        // Anti-correlation is NOT a strong pair.
        assert!(!a
            .strong_pairs
            .iter()
            .any(|&(x, y, _)| (x, y) == (EngineId(0), EngineId(2))));
        assert!(a
            .groups
            .iter()
            .any(|g| g.contains(&EngineId(0)) && g.contains(&EngineId(1))));
        // Diagonal is 1.
        assert_eq!(a.rho_between(EngineId(3), EngineId(3)), 1.0);
    }

    #[test]
    fn scope_filters_rows() {
        let (records, s) = fixture();
        let all = analyze_impl(&records, &s, 4, None, 10_000);
        let exe = analyze_impl(&records, &s, 4, Some(FileType::Win32Exe), 10_000);
        assert!(exe.rows < all.rows);
        assert!(exe.rows > 0);
        assert_eq!(exe.scope, Some(FileType::Win32Exe));
        assert!(!all.truncated);
        assert_eq!(all.total_rows, all.rows);
    }

    #[test]
    fn max_rows_caps_with_stride() {
        let (records, s) = fixture();
        let capped = analyze_impl(&records, &s, 4, None, 5);
        assert_eq!(capped.rows, 5);
        assert!(capped.truncated, "cap is surfaced, not silent");
        assert!(capped.total_rows > 5);
        let uncapped = analyze_impl(&records, &s, 4, None, 10_000);
        assert!(!uncapped.truncated);
        assert_eq!(uncapped.rows, capped.total_rows);
    }

    fn assert_bit_identical(a: &CorrelationAnalysis, b: &CorrelationAnalysis, ctx: &str) {
        assert_eq!(a.scope, b.scope, "{ctx}: scope");
        assert_eq!(a.rows, b.rows, "{ctx}: rows");
        assert_eq!(a.total_rows, b.total_rows, "{ctx}: total_rows");
        assert_eq!(a.truncated, b.truncated, "{ctx}: truncated");
        assert_eq!(a.rho.len(), b.rho.len(), "{ctx}: rho len");
        for (i, (x, y)) in a.rho.iter().zip(&b.rho).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: rho[{i}] {x} vs {y}");
        }
        assert_eq!(a.strong_pairs.len(), b.strong_pairs.len(), "{ctx}: pairs");
        for ((e1, e2, r1), (f1, f2, r2)) in a.strong_pairs.iter().zip(&b.strong_pairs) {
            assert_eq!((e1, e2), (f1, f2), "{ctx}: pair");
            assert_eq!(r1.to_bits(), r2.to_bits(), "{ctx}: pair rho");
        }
        assert_eq!(a.groups, b.groups, "{ctx}: groups");
    }

    /// The fused kernel must reproduce the reference per-scope analyses
    /// bit for bit — ρ matrices, strong pairs and groups — at every
    /// worker count, with and without row-cap truncation.
    #[test]
    fn fused_matches_reference_bit_for_bit() {
        let (records, s) = fixture();
        let scopes = [
            None,
            Some(FileType::Win32Exe),
            Some(FileType::Pdf),
            Some(FileType::Html), // empty scope
        ];
        for max_rows in [10_000usize, 7] {
            let reference: Vec<CorrelationAnalysis> = scopes
                .iter()
                .map(|&sc| analyze_impl(&records, &s, 4, sc, max_rows))
                .collect();
            for workers in [1usize, 2, 8] {
                let fused = analyze_fused(&records, &s, 4, &scopes, max_rows, workers);
                assert_eq!(fused.len(), reference.len());
                for (f, r) in fused.iter().zip(&reference) {
                    assert_bit_identical(f, r, &format!("workers={workers} max={max_rows}"));
                }
            }
        }
    }

    /// The overridden fused `run` must stay bit-identical to the
    /// default `finish(fold(ctx))` path — and to a two-segment
    /// fold/merge/finish — including under row-cap truncation.
    #[test]
    fn stage_run_equals_finish_of_fold() {
        use crate::analysis::AnalysisCtx;
        use crate::pipeline::Study;
        use crate::table::TrajectoryTable;
        use vt_sim::SimConfig;

        let study = Study::generate_with_workers(SimConfig::new(0xC011, 2_000), 2);
        let ws = study.sim().config().window_start();
        let records = study.records();
        let fleet = study.sim().fleet();
        let table = TrajectoryTable::build(records, ws);
        let s = freshdyn::build(records, ws);
        let stage = Correlation {
            scopes: &[FileType::Win32Exe, FileType::Pdf],
            max_rows: 300,
        };
        let ctx = AnalysisCtx::new(records, &table, &s, fleet, ws).with_workers(2);
        let (g_run, per_run) = stage.run(&ctx);
        assert!(g_run.truncated, "fixture must exercise the row cap");

        let (g_fin, per_fin) = stage.finish(&stage.fold(&ctx));
        assert_bit_identical(&g_run, &g_fin, "finish∘fold global");
        assert_eq!(per_run.len(), per_fin.len());
        for (r, f) in per_run.iter().zip(&per_fin) {
            assert_bit_identical(r, f, "finish∘fold scope");
        }

        // Two contiguous segments, folded independently (at different
        // worker counts) and merged in order.
        let mid = records.len() / 3;
        let (seg_a, seg_b) = records.split_at(mid);
        let (ta, tb) = (
            TrajectoryTable::build(seg_a, ws),
            TrajectoryTable::build(seg_b, ws),
        );
        let (sa, sb) = (freshdyn::build(seg_a, ws), freshdyn::build(seg_b, ws));
        let ctx_a = AnalysisCtx::new(seg_a, &ta, &sa, fleet, ws).with_workers(1);
        let ctx_b = AnalysisCtx::new(seg_b, &tb, &sb, fleet, ws).with_workers(8);
        let (g_seg, per_seg) = stage.finish(&stage.merge(stage.fold(&ctx_a), stage.fold(&ctx_b)));
        assert_bit_identical(&g_run, &g_seg, "segmented global");
        for (r, f) in per_run.iter().zip(&per_seg) {
            assert_bit_identical(r, f, "segmented scope");
        }

        // Uncapped config: `finish` takes the eager-contingency fast
        // path (no plane walk) and must still match the fused run and
        // the segmented fold bit for bit.
        let wide = Correlation {
            scopes: &[FileType::Win32Exe, FileType::Pdf],
            max_rows: 400_000,
        };
        let (gw_run, pw_run) = wide.run(&ctx);
        assert!(!gw_run.truncated, "fixture must stay under the cap");
        let (gw_fin, pw_fin) = wide.finish(&wide.fold(&ctx));
        assert_bit_identical(&gw_run, &gw_fin, "uncapped finish∘fold global");
        let (gw_seg, pw_seg) = wide.finish(&wide.merge(wide.fold(&ctx_a), wide.fold(&ctx_b)));
        assert_bit_identical(&gw_run, &gw_seg, "uncapped segmented global");
        for ((r, f), s) in pw_run.iter().zip(&pw_fin).zip(&pw_seg) {
            assert_bit_identical(r, f, "uncapped finish∘fold scope");
            assert_bit_identical(r, s, "uncapped segmented scope");
        }
    }

    // Random record sets: the fused kernel's contingency tables equal
    // the column-materializing path's, per scope and per pair.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn fused_contingency_equals_column_path(
            // Per sample: (file-type selector, per-scan verdict words).
            samples in proptest::collection::vec(
                (0u8..3, proptest::collection::vec(0u32..81, 1..6)),
                1..20,
            ),
            max_rows in 3usize..60,
            workers in 1usize..5,
        ) {
            let engines = 4usize;
            let window = Timestamp::from_date(Date::new(2021, 5, 1));
            let first = window + Duration::days(5);
            let types = [FileType::Win32Exe, FileType::Pdf, FileType::Zip];
            let mut records = Vec::new();
            for (i, (ft, scans)) in samples.iter().enumerate() {
                let meta = SampleMeta {
                    hash: SampleHash::from_ordinal(i as u64),
                    file_type: types[*ft as usize],
                    origin: first,
                    first_submission: first,
                    truth: GroundTruth::Benign,
                };
                let reports: Vec<ScanReport> = scans
                    .iter()
                    .enumerate()
                    .map(|(k, &word)| {
                        // Decode the scan word as 4 base-3 verdicts.
                        let mut verdicts = VerdictVec::new(engines);
                        let mut w = word;
                        for e in 0..engines {
                            let v = match w % 3 {
                                0 => Verdict::Malicious,
                                1 => Verdict::Benign,
                                _ => Verdict::Undetected,
                            };
                            verdicts.set(EngineId::new(e), v);
                            w /= 3;
                        }
                        ScanReport {
                            sample: meta.hash,
                            file_type: meta.file_type,
                            analysis_date: first + Duration::days(k as i64),
                            last_submission_date: first,
                            times_submitted: 1,
                            kind: ReportKind::Upload,
                            verdicts,
                        }
                    })
                    .collect();
                records.push(SampleRecord::new(meta, reports));
            }
            // Hand-built S over every record (bypasses the freshness
            // filters — the kernel only contracts on S's indices).
            let s = FreshDynamic {
                indices: (0..records.len()).collect(),
                reports: records.iter().map(|r| r.reports.len() as u64).sum(),
            };
            let scopes = [None, Some(FileType::Win32Exe), Some(FileType::Pdf)];
            let fused = fused_contingencies(&records, &s, engines, &scopes, max_rows, workers);
            for (si, &scope) in scopes.iter().enumerate() {
                // Column path, independent of the kernel: materialize
                // selected rows, then count each pair's table directly.
                let mut columns: Vec<Vec<i8>> = vec![Vec::new(); engines];
                let total: u64 = s
                    .iter(&records)
                    .filter(|rec| scope_matches(scope, rec))
                    .map(|rec| rec.reports.len() as u64)
                    .sum();
                let mut next = 0u64;
                for rec in s.iter(&records) {
                    if !scope_matches(scope, rec) {
                        continue;
                    }
                    for rep in &rec.reports {
                        let row = next;
                        next += 1;
                        if !row_selected(row, total, max_rows) {
                            continue;
                        }
                        for (e, col) in columns.iter_mut().enumerate() {
                            col.push(rep.verdicts.get(EngineId::new(e)).r_value());
                        }
                    }
                }
                prop_assert_eq!(fused[si].total_rows, total);
                prop_assert_eq!(fused[si].rows, columns[0].len() as u64);
                for a in 0..engines {
                    for b in (a + 1)..engines {
                        let mut expect = [[0u64; 3]; 3];
                        for (&x, &y) in columns[a].iter().zip(&columns[b]) {
                            expect[(x + 1) as usize][(y + 1) as usize] += 1;
                        }
                        prop_assert_eq!(
                            fused[si].table(a, b),
                            expect,
                            "scope {} pair ({}, {})",
                            si,
                            a,
                            b
                        );
                    }
                }
            }
        }
    }
}
