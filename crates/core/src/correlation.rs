//! §7.2 — engine correlation (Obs. 11, Figs. 11–12, Tables 4–8).
//!
//! The scan matrix `R` has one row per scan and one column per engine,
//! with entries in {1, 0, −1} (Eq. 1). For every pair of engine columns
//! we compute the Spearman correlation; pairs with ρ > 0.8 are *strongly
//! correlated*, and the connected components of the strong-pair graph
//! are the engine groups of Tables 4–8.
//!
//! Because each column takes only three values, we compute the exact
//! tie-corrected Spearman from the 3×3 contingency table of each pair —
//! O(n) per pair with no rank arrays — and verify the shortcut against
//! the general implementation in `vt-stats`.

use crate::freshdyn::FreshDynamic;
use crate::records::SampleRecord;
use vt_model::{EngineId, FileType};

/// Correlation threshold for "strongly correlated" (the paper's 0.8).
pub const STRONG_RHO: f64 = 0.8;

/// Result of the correlation analysis for one scope.
#[derive(Debug, Clone)]
pub struct CorrelationAnalysis {
    /// Scope: `None` = all of *S* (Fig. 11); `Some(ft)` = one file type
    /// (Fig. 12, Tables 4–8).
    pub scope: Option<FileType>,
    /// Number of engines.
    pub engine_count: usize,
    /// Rows of `R` used.
    pub rows: u64,
    /// Full ρ matrix, row-major `engine_count × engine_count`; `NaN`
    /// where undefined (constant column).
    pub rho: Vec<f64>,
    /// Pairs with ρ > [`STRONG_RHO`], sorted by descending ρ.
    pub strong_pairs: Vec<(EngineId, EngineId, f64)>,
    /// Connected components of the strong-pair graph with ≥2 members,
    /// each sorted by engine index; components sorted by size then
    /// first member.
    pub groups: Vec<Vec<EngineId>>,
}

impl CorrelationAnalysis {
    /// ρ between two engines (NaN when undefined).
    pub fn rho_between(&self, a: EngineId, b: EngineId) -> f64 {
        self.rho[a.index() * self.engine_count + b.index()]
    }
}

/// Spearman ρ between two three-valued columns given their 3×3
/// contingency table. `counts[i][j]` counts rows with
/// `x = i as i8 - 1`, `y = j as i8 - 1`. Returns `None` when either
/// margin is constant.
pub fn spearman_from_contingency(counts: &[[u64; 3]; 3]) -> Option<f64> {
    let n: u64 = counts.iter().flatten().sum();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    // Margins.
    let mut row: [f64; 3] = [0.0; 3];
    let mut col: [f64; 3] = [0.0; 3];
    for i in 0..3 {
        for j in 0..3 {
            row[i] += counts[i][j] as f64;
            col[j] += counts[i][j] as f64;
        }
    }
    // Average ranks per value group (1-based fractional ranks).
    let rank_of = |margin: &[f64; 3]| -> [f64; 3] {
        let mut out = [0.0; 3];
        let mut below = 0.0;
        for v in 0..3 {
            out[v] = below + (margin[v] + 1.0) / 2.0;
            below += margin[v];
        }
        out
    };
    let rx = rank_of(&row);
    let ry = rank_of(&col);
    // Pearson over ranks. Mean rank is (n+1)/2 on both sides.
    let mean = (nf + 1.0) / 2.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..3 {
        let dx = rx[i] - mean;
        sxx += row[i] * dx * dx;
        let dy = ry[i] - mean;
        syy += col[i] * dy * dy;
        for j in 0..3 {
            sxy += counts[i][j] as f64 * dx * (ry[j] - mean);
        }
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Runs the correlation analysis over *S* (optionally restricted to one
/// file type). At most `max_rows` scan rows are used (rows are taken in
/// deterministic record order).
pub fn analyze(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
    scope: Option<FileType>,
    max_rows: usize,
) -> CorrelationAnalysis {
    // Collect columns: one Vec<i8> per engine.
    let mut columns: Vec<Vec<i8>> = vec![Vec::new(); engine_count];
    let mut rows = 0u64;
    'outer: for rec in s.iter(records) {
        if let Some(ft) = scope {
            if rec.meta.file_type != ft {
                continue;
            }
        }
        for rep in &rec.reports {
            if rows as usize >= max_rows {
                break 'outer;
            }
            for (e, col) in columns.iter_mut().enumerate() {
                col.push(rep.verdicts.get(EngineId(e as u8)).r_value());
            }
            rows += 1;
        }
    }

    let mut rho = vec![f64::NAN; engine_count * engine_count];
    let mut strong_pairs = Vec::new();
    for a in 0..engine_count {
        rho[a * engine_count + a] = 1.0;
        for b in (a + 1)..engine_count {
            let mut counts = [[0u64; 3]; 3];
            for (&x, &y) in columns[a].iter().zip(&columns[b]) {
                counts[(x + 1) as usize][(y + 1) as usize] += 1;
            }
            let r = spearman_from_contingency(&counts).unwrap_or(f64::NAN);
            rho[a * engine_count + b] = r;
            rho[b * engine_count + a] = r;
            if r > STRONG_RHO {
                strong_pairs.push((EngineId(a as u8), EngineId(b as u8), r));
            }
        }
    }
    strong_pairs.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite"));

    // Connected components over strong pairs (union-find).
    let mut parent: Vec<usize> = (0..engine_count).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b, _) in &strong_pairs {
        let ra = find(&mut parent, a.index());
        let rb = find(&mut parent, b.index());
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut comp: std::collections::HashMap<usize, Vec<EngineId>> =
        std::collections::HashMap::new();
    for e in 0..engine_count {
        let root = find(&mut parent, e);
        comp.entry(root).or_default().push(EngineId(e as u8));
    }
    let mut groups: Vec<Vec<EngineId>> = comp.into_values().filter(|g| g.len() >= 2).collect();
    for g in &mut groups {
        g.sort_by_key(|e| e.index());
    }
    groups.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].index().cmp(&b[0].index())));

    CorrelationAnalysis {
        scope,
        engine_count,
        rows,
        rho,
        strong_pairs,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use proptest::prelude::*;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict, VerdictVec,
    };

    #[test]
    fn contingency_matches_general_spearman() {
        // Deterministic mixed data.
        let xs: Vec<i8> = (0..200).map(|i| ((i * 7 + 3) % 3) as i8 - 1).collect();
        let ys: Vec<i8> = (0..200)
            .map(|i| {
                if i % 4 == 0 {
                    ((i * 5) % 3) as i8 - 1
                } else {
                    xs[i]
                }
            })
            .collect();
        let mut counts = [[0u64; 3]; 3];
        for (&x, &y) in xs.iter().zip(&ys) {
            counts[(x + 1) as usize][(y + 1) as usize] += 1;
        }
        let fast = spearman_from_contingency(&counts).unwrap();
        let xf: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let yf: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        let general = vt_stats::spearman(&xf, &yf).unwrap();
        assert!((fast - general).abs() < 1e-12, "{fast} vs {general}");
    }

    proptest! {
        #[test]
        fn contingency_shortcut_is_exact(
            data in proptest::collection::vec((0u8..3, 0u8..3), 2..300)
        ) {
            let mut counts = [[0u64; 3]; 3];
            for &(x, y) in &data {
                counts[x as usize][y as usize] += 1;
            }
            let fast = spearman_from_contingency(&counts);
            let xf: Vec<f64> = data.iter().map(|&(x, _)| x as f64).collect();
            let yf: Vec<f64> = data.iter().map(|&(_, y)| y as f64).collect();
            let general = vt_stats::spearman(&xf, &yf);
            match (fast, general) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b),
                (None, None) => {}
                (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a, b),
            }
        }
    }

    /// Two samples with 4 engines: engines 0 and 1 identical (copiers),
    /// engine 2 anti-correlated with 0, engine 3 independent-ish.
    fn fixture() -> (Vec<SampleRecord>, FreshDynamic) {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let mut records = Vec::new();
        for i in 0..6u64 {
            let meta = SampleMeta {
                hash: SampleHash::from_ordinal(i),
                file_type: if i % 2 == 0 {
                    FileType::Win32Exe
                } else {
                    FileType::Pdf
                },
                origin: first,
                first_submission: first,
                truth: GroundTruth::Benign,
            };
            let reports: Vec<ScanReport> = (0..4)
                .map(|k| {
                    let bit = (i + k) % 2 == 0;
                    let mut verdicts = VerdictVec::new(4);
                    let v = |b: bool| {
                        if b {
                            Verdict::Malicious
                        } else {
                            Verdict::Benign
                        }
                    };
                    verdicts.set(EngineId(0), v(bit));
                    verdicts.set(EngineId(1), v(bit));
                    verdicts.set(EngineId(2), v(!bit));
                    verdicts.set(
                        EngineId(3),
                        if (i * 3 + k) % 3 == 0 {
                            Verdict::Undetected
                        } else {
                            v(k % 2 == 0)
                        },
                    );
                    ScanReport {
                        sample: meta.hash,
                        file_type: FileType::Pdf,
                        analysis_date: first + Duration::days(k as i64),
                        last_submission_date: first,
                        times_submitted: 1,
                        kind: ReportKind::Upload,
                        verdicts,
                    }
                })
                .collect();
            records.push(SampleRecord::new(meta, reports));
        }
        let s = freshdyn::build(&records, window);
        (records, s)
    }

    #[test]
    fn copier_pair_is_strong_and_grouped() {
        let (records, s) = fixture();
        assert!(!s.is_empty());
        let a = analyze(&records, &s, 4, None, 10_000);
        assert!(a.rho_between(EngineId(0), EngineId(1)) > 0.99);
        assert!(a.rho_between(EngineId(0), EngineId(2)) < -0.99);
        assert!(a
            .strong_pairs
            .iter()
            .any(|&(x, y, _)| (x, y) == (EngineId(0), EngineId(1))));
        // Anti-correlation is NOT a strong pair.
        assert!(!a
            .strong_pairs
            .iter()
            .any(|&(x, y, _)| (x, y) == (EngineId(0), EngineId(2))));
        assert!(a
            .groups
            .iter()
            .any(|g| g.contains(&EngineId(0)) && g.contains(&EngineId(1))));
        // Diagonal is 1.
        assert_eq!(a.rho_between(EngineId(3), EngineId(3)), 1.0);
    }

    #[test]
    fn scope_filters_rows() {
        let (records, s) = fixture();
        let all = analyze(&records, &s, 4, None, 10_000);
        let exe = analyze(&records, &s, 4, Some(FileType::Win32Exe), 10_000);
        assert!(exe.rows < all.rows);
        assert!(exe.rows > 0);
        assert_eq!(exe.scope, Some(FileType::Win32Exe));
    }

    #[test]
    fn max_rows_caps() {
        let (records, s) = fixture();
        let capped = analyze(&records, &s, 4, None, 5);
        assert_eq!(capped.rows, 5);
    }
}
