//! §4.2 — the dataset landscape: Table 2, Table 3, Fig. 1.
//!
//! Thin orchestration over [`vt_store::DatasetStats`]: builds the
//! overview from records (mergeable across threads) and extracts the
//! headline numbers the paper reports (88.81% singleton samples, top-20
//! share, freshness).

use crate::analysis::{Analysis, AnalysisCtx};
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
#[cfg(test)]
use vt_model::time::Timestamp;
use vt_model::FileType;
use vt_store::DatasetStats;

/// Fig. 1 reference points reported by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Points {
    /// Fraction of samples with exactly one report (paper: 0.8881).
    pub singleton: f64,
    /// Fraction with fewer than 6 reports (paper: 0.9910).
    pub under_6: f64,
    /// Fraction with fewer than 20 reports (paper: 0.9990).
    pub under_20: f64,
    /// Largest report count observed for one sample (paper: 64,168).
    pub max_reports: u64,
    /// Number of multi-report samples (paper: 63,999,984).
    pub multi_report_samples: u64,
}

/// §4.2 landscape stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`]. Produces the dataset overview and the Fig. 1
/// reference points in one pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Landscape;

impl Analysis for Landscape {
    type Output = (DatasetStats, Fig1Points);
    type Partial = DatasetStats;

    fn name(&self) -> &'static str {
        "landscape"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> DatasetStats {
        dataset_stats_columnar(ctx.table, ctx.workers, ctx)
    }

    fn merge(&self, mut a: DatasetStats, b: DatasetStats) -> DatasetStats {
        a.merge(&b);
        a
    }

    fn finish(&self, stats: &DatasetStats) -> (DatasetStats, Fig1Points) {
        (stats.clone(), fig1_points(stats))
    }
}

/// Partition-reduction over the table's per-record columns: each worker
/// feeds a [`DatasetStats`] via `record_columns`, and the partitions
/// merge in order (all counters, so merge order is cosmetic — the
/// result equals the serial pass exactly).
fn dataset_stats_columnar(
    table: &TrajectoryTable,
    workers: usize,
    ctx: &AnalysisCtx,
) -> DatasetStats {
    debug_assert_eq!(table.window_start(), ctx.window_start);
    let ranges = par::partition_ranges(table.len() as u64, workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "landscape", |_, range| {
        let mut stats = DatasetStats::new(table.window_start());
        for i in range.start as usize..range.end as usize {
            stats.record_columns(
                table.type_idx(i),
                table.report_count(i) as u64,
                table.is_fresh(i),
            );
        }
        stats
    });
    let mut iter = parts.into_iter();
    let mut stats = iter
        .next()
        .unwrap_or_else(|| DatasetStats::new(table.window_start()));
    for part in iter {
        stats.merge(&part);
    }
    stats
}

#[cfg(test)]
pub(crate) fn dataset_stats_impl(
    records: &[SampleRecord],
    window_start: Timestamp,
) -> DatasetStats {
    let mut stats = DatasetStats::new(window_start);
    for r in records {
        stats.record(&r.meta, &r.reports);
    }
    stats
}

/// Extracts the Fig. 1 reference points from an overview.
pub fn fig1_points(stats: &DatasetStats) -> Fig1Points {
    Fig1Points {
        singleton: stats.reports_per_sample_cdf(1),
        under_6: stats.reports_per_sample_cdf(5),
        under_20: stats.reports_per_sample_cdf(19),
        max_reports: stats.max_reports_one_sample(),
        multi_report_samples: stats.multi_report_samples(),
    }
}

/// Share of samples belonging to the top-10 / top-20 named types
/// (paper: 78.17% / 87.04%, NULL excluded from the denominator's
/// "types" but included in totals — we report plain shares of the
/// total).
pub fn topk_share(stats: &DatasetStats, k: usize) -> f64 {
    let mut counts: Vec<u64> = FileType::TOP20
        .iter()
        .map(|&ft| stats.samples_of(ft))
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top: u64 = counts.iter().take(k).sum();
    top as f64 / stats.total_samples().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Duration};
    use vt_model::{GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, VerdictVec};

    fn record(i: u64, ft: FileType, n_reports: usize) -> SampleRecord {
        let t0 = Timestamp::from_date(Date::new(2021, 6, 1));
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: ft,
            origin: t0,
            first_submission: t0,
            truth: GroundTruth::Benign,
        };
        let reports = (0..n_reports)
            .map(|k| ScanReport {
                sample: meta.hash,
                file_type: FileType::Pdf,
                analysis_date: t0 + Duration::days(k as i64),
                last_submission_date: t0,
                times_submitted: 1,
                kind: ReportKind::Upload,
                verdicts: VerdictVec::new(70),
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    #[test]
    fn fig1_points_from_small_dataset() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let records: Vec<SampleRecord> = (0..10)
            .map(|i| record(i, FileType::Pdf, if i < 8 { 1 } else { 25 }))
            .collect();
        let stats = dataset_stats_impl(&records, window);
        let p = fig1_points(&stats);
        assert_eq!(p.singleton, 0.8);
        assert_eq!(p.under_6, 0.8);
        assert_eq!(p.under_20, 0.8);
        assert_eq!(p.max_reports, 25);
        assert_eq!(p.multi_report_samples, 2);
    }

    #[test]
    fn topk_share_counts_named_types() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let mut records = vec![];
        for i in 0..6 {
            records.push(record(i, FileType::Win32Exe, 1));
        }
        for i in 6..8 {
            records.push(record(i, FileType::Other(1), 1));
        }
        let stats = dataset_stats_impl(&records, window);
        assert_eq!(topk_share(&stats, 10), 0.75);
        assert_eq!(topk_share(&stats, 20), 0.75);
    }
}
