//! §5.4 — impact of AV-Rank dynamics on threshold labeling (Obs. 6,
//! Fig. 8).
//!
//! Under a voting threshold `t`, a sample of *S* is **white** if
//! `p_max < t` (never labeled malicious), **black** if `p_min ≥ t`
//! (always labeled malicious), and **gray** otherwise — gray samples
//! get different labels depending on *when* they are scanned, which is
//! the failure mode the threshold method must tolerate. The paper
//! sweeps t = 1..50 overall (gray peaks at 14.92% at t = 24) and over
//! PE files only (gray grows with t, max 16.41% at t = 50).

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;

/// Ranks above this fold into the top envelope bucket.
const MAX_RANK: usize = 130;

/// Sample shares for one threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdShares {
    /// The threshold t.
    pub t: u32,
    /// Fraction of samples with `p_max < t`.
    pub white: f64,
    /// Fraction with `p_min >= t`.
    pub black: f64,
    /// The rest: samples whose label depends on scan timing.
    pub gray: f64,
}

/// Sweep result over t = 1..=50.
#[derive(Debug, Clone)]
pub struct CategorySweep {
    /// Shares per threshold (index 0 ⇒ t = 1).
    pub shares: Vec<ThresholdShares>,
    /// Samples considered.
    pub samples: u64,
}

impl CategorySweep {
    /// The threshold with the largest gray share.
    pub fn gray_max(&self) -> Option<ThresholdShares> {
        self.shares
            .iter()
            .copied()
            .max_by(|a, b| a.gray.partial_cmp(&b.gray).expect("finite"))
    }

    /// The threshold with the smallest gray share.
    pub fn gray_min(&self) -> Option<ThresholdShares> {
        self.shares
            .iter()
            .copied()
            .min_by(|a, b| a.gray.partial_cmp(&b.gray).expect("finite"))
    }

    /// Thresholds whose gray share stays below `limit` (the paper's
    /// recommendation logic: gray < 10%).
    pub fn thresholds_below(&self, limit: f64) -> Vec<u32> {
        self.shares
            .iter()
            .filter(|s| s.gray < limit)
            .map(|s| s.t)
            .collect()
    }
}

/// §5.4 categorization stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`]. The two Fig. 8 variants are the two constructions
/// ([`Categorize::ALL`] and [`Categorize::PE`]), each with its own
/// stage name so their spans never collide.
#[derive(Debug, Clone, Copy, Default)]
pub struct Categorize {
    /// Restrict the sweep to PE (Win32 EXE/DLL) samples (Fig. 8b).
    pub pe_only: bool,
}

impl Categorize {
    /// The overall sweep (Fig. 8a).
    pub const ALL: Categorize = Categorize { pe_only: false };
    /// The PE-only sweep (Fig. 8b).
    pub const PE: Categorize = Categorize { pe_only: true };
}

impl Analysis for Categorize {
    type Output = CategorySweep;
    type Partial = CategorizePartial;

    fn name(&self) -> &'static str {
        if self.pe_only {
            "categorize_pe"
        } else {
            "categorize_all"
        }
    }

    fn fold(&self, ctx: &AnalysisCtx) -> CategorizePartial {
        fold_columnar(ctx.table, ctx.s, self.pe_only, ctx)
    }

    fn merge(&self, mut a: CategorizePartial, b: CategorizePartial) -> CategorizePartial {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &CategorizePartial) -> CategorySweep {
        shares_from_envelopes(&acc.max_hist, &acc.min_hist, acc.samples)
    }
}

/// Mergeable accumulator of the §5.4 fold ([`Categorize`]'s
/// [`Analysis::Partial`]): the `p_min`/`p_max` envelope histograms plus
/// the sample count. Everything merges by addition.
#[derive(Debug, Clone)]
pub struct CategorizePartial {
    max_hist: [u64; MAX_RANK + 1],
    min_hist: [u64; MAX_RANK + 1],
    samples: u64,
}

impl CategorizePartial {
    fn new() -> Self {
        Self {
            max_hist: [0; MAX_RANK + 1],
            min_hist: [0; MAX_RANK + 1],
            samples: 0,
        }
    }

    pub(crate) fn merge(&mut self, other: &CategorizePartial) {
        for (a, b) in self.max_hist.iter_mut().zip(&other.max_hist) {
            *a += b;
        }
        for (a, b) in self.min_hist.iter_mut().zip(&other.min_hist) {
            *a += b;
        }
        self.samples += other.samples;
    }
}

/// Runs the sweep over all of *S* (`pe_only = false`) or its PE subset
/// (`pe_only = true`), for t = 1..=50.
#[cfg(test)]
pub(crate) fn sweep_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    pe_only: bool,
) -> CategorySweep {
    // Count samples by their (p_min, p_max) envelope, then integrate per
    // threshold: white(t) = #{p_max < t}, black(t) = #{p_min >= t}.
    let mut max_hist = [0u64; MAX_RANK + 1];
    let mut min_hist = [0u64; MAX_RANK + 1];
    let mut samples = 0u64;
    for r in s.iter(records) {
        if pe_only && !r.meta.file_type.is_pe() {
            continue;
        }
        let mut it = r.positives_iter();
        let first = it.next().expect("multi-report");
        let (p_min, p_max) = it.fold((first, first), |(lo, hi), p| (lo.min(p), hi.max(p)));
        max_hist[(p_max as usize).min(MAX_RANK)] += 1;
        min_hist[(p_min as usize).min(MAX_RANK)] += 1;
        samples += 1;
    }
    shares_from_envelopes(&max_hist, &min_hist, samples)
}

/// Parallel sweep over the table's precomputed `p_min`/`p_max`
/// envelopes; the per-partition histograms sum exactly.
fn fold_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    pe_only: bool,
    ctx: &AnalysisCtx,
) -> CategorizePartial {
    let kernel = if pe_only {
        "categorize_pe"
    } else {
        "categorize_all"
    };
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, kernel, |_, range| {
        let mut acc = CategorizePartial::new();
        for &i in &s.indices[range.start as usize..range.end as usize] {
            if pe_only && !table.is_pe(i) {
                continue;
            }
            acc.max_hist[(table.p_max(i) as usize).min(MAX_RANK)] += 1;
            acc.min_hist[(table.p_min(i) as usize).min(MAX_RANK)] += 1;
            acc.samples += 1;
        }
        acc
    });
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_else(CategorizePartial::new);
    for part in iter {
        acc.merge(&part);
    }
    acc
}

/// Integrates the envelope histograms into per-threshold shares.
fn shares_from_envelopes(
    max_hist: &[u64; MAX_RANK + 1],
    min_hist: &[u64; MAX_RANK + 1],
    samples: u64,
) -> CategorySweep {
    let shares = (1u32..=50)
        .map(|t| {
            let white: u64 = max_hist[..(t as usize).min(MAX_RANK + 1)].iter().sum();
            let black: u64 = min_hist[(t as usize).min(MAX_RANK + 1)..].iter().sum();
            let n = samples.max(1) as f64;
            let white = white as f64 / n;
            let black = black as f64 / n;
            ThresholdShares {
                t,
                white,
                black,
                gray: (1.0 - white - black).max(0.0),
            }
        })
        .collect();
    CategorySweep { shares, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        EngineId, FileType, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict,
        VerdictVec,
    };

    fn record(i: u64, ft: FileType, positives_seq: &[u32]) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: ft,
            origin: first,
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = positives_seq
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let mut verdicts = VerdictVec::new(70);
                for e in 0..p {
                    verdicts.set(EngineId(e as u8), Verdict::Malicious);
                }
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: first + Duration::days(k as i64),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    #[test]
    fn categories_partition_s() {
        // Sample A swings 2..8, sample B swings 20..30.
        let records = vec![
            record(0, FileType::Win32Exe, &[2, 8]),
            record(1, FileType::Pdf, &[20, 30]),
        ];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let sweep = sweep_impl(&records, &s, false);
        assert_eq!(sweep.samples, 2);
        for sh in &sweep.shares {
            assert!(
                (sh.white + sh.black + sh.gray - 1.0).abs() < 1e-9,
                "t={}",
                sh.t
            );
        }
        // t = 5: A is gray (2 < 5 <= 8), B is black (min 20 >= 5).
        let t5 = sweep.shares[4];
        assert!((t5.gray - 0.5).abs() < 1e-12);
        assert!((t5.black - 0.5).abs() < 1e-12);
        // t = 25: A white, B gray.
        let t25 = sweep.shares[24];
        assert!((t25.white - 0.5).abs() < 1e-12);
        assert!((t25.gray - 0.5).abs() < 1e-12);
        // t = 40: both white.
        let t40 = sweep.shares[39];
        assert_eq!(t40.white, 1.0);
    }

    #[test]
    fn boundary_semantics_match_paper() {
        // "p_max <= t is white" — NO: the paper says white when all
        // AV-Ranks are *less than* t ("p_max ≤ t" in prose but the
        // categories must partition; we use p_max < t and p_min >= t,
        // which makes a constant-at-t sample black, consistent with
        // "all the AV-Ranks are greater than or equal to t").
        let records = vec![record(0, FileType::Win32Exe, &[5, 6])];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let sweep = sweep_impl(&records, &s, false);
        let t5 = sweep.shares[4];
        assert_eq!(t5.black, 1.0); // min 5 >= 5
        let t6 = sweep.shares[5];
        assert_eq!(t6.gray, 1.0); // 5 < 6 <= 6
        let t7 = sweep.shares[6];
        assert_eq!(t7.white, 1.0); // max 6 < 7
    }

    #[test]
    fn pe_only_filters() {
        let records = vec![
            record(0, FileType::Win32Exe, &[2, 8]),
            record(1, FileType::Pdf, &[2, 8]),
        ];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let pe = sweep_impl(&records, &s, true);
        assert_eq!(pe.samples, 1);
        let all = sweep_impl(&records, &s, false);
        assert_eq!(all.samples, 2);
    }

    #[test]
    fn sweep_helpers() {
        let records = vec![
            record(0, FileType::Win32Exe, &[2, 8]),
            record(1, FileType::Pdf, &[20, 30]),
        ];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let sweep = sweep_impl(&records, &s, false);
        let max = sweep.gray_max().unwrap();
        assert!(max.gray >= sweep.gray_min().unwrap().gray);
        let low = sweep.thresholds_below(0.4);
        // Thresholds where neither sample is gray: t in 1..=2 (both
        // black at 1,2? A min=2: black at t<=2; B black) and t > 30.
        assert!(low.contains(&1));
        assert!(low.contains(&40));
        assert!(!low.contains(&5));
    }
}
