//! Fault-tolerant feed ingestion: the collection campaign's front end.
//!
//! The paper's pipeline (§4.1) polls the premium feed every minute for
//! 14 months and lands ~847 M reports in storage. At that duration the
//! feed's failure modes are not corner cases — outages, duplicated
//! deliveries, late batches, damaged payloads — and the collector's job
//! is to produce a clean, deduplicated, time-ordered report stream
//! anyway. [`Collector`] is that component over the chaos-injected
//! [`FaultyFeed`]:
//!
//! * **Retry with bounded backoff** — a failed poll is retried up to
//!   [`CollectorConfig::max_retries`] times (backoff is simulated
//!   logically; virtual time, not wall clock). A minute that never
//!   heals is abandoned and counted as a *gap*.
//! * **Dedup** — reports are keyed on `(sample, analysis_date, kind)`;
//!   per-sample scan minutes are strictly increasing in the platform
//!   model, so the key is collision-free for distinct reports and a
//!   repeat key is always a redelivery. Keys are **evicted** once their
//!   analysis minute falls behind the reorder watermark: a redelivery
//!   arrives at most the feed's lateness bound (≤
//!   [`CollectorConfig::reorder_horizon`]) after its generation minute,
//!   so older duplicates cannot legally arrive and the dedup set stays
//!   bounded by the horizon's report volume instead of growing for the
//!   whole campaign.
//! * **Bounded reorder buffer** — entries may arrive up to the feed's
//!   lateness bound after their generation minute; accepted reports are
//!   held in a buffer and emitted in `analysis_date` order once the
//!   watermark (poll minute − [`CollectorConfig::reorder_horizon`])
//!   passes them.
//! * **Quarantine** — a payload that fails its checksum or does not
//!   decode is never silently dropped: it is kept with a typed
//!   [`IngestError`] for post-campaign inspection.
//!
//! Everything is deterministic: the same feed (same
//! [`FaultPlan`] seed) produces byte-identical
//! [`IngestStats`], independent of upstream generation worker counts.

use std::collections::{BTreeMap, BTreeSet};

use vt_model::ScanReport;
use vt_obs::Obs;
use vt_sim::fault::{FaultPlan, FaultyFeed, FeedEntry};
use vt_store::codec::decode_report;
use vt_store::crc32::crc32;
use vt_store::ReportStore;

/// Collector tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// Poll attempts per minute beyond the first before the minute is
    /// abandoned as a gap.
    pub max_retries: u32,
    /// Reorder-buffer horizon in minutes: a buffered report generated
    /// at minute `g` is emitted once polling reaches `g + horizon`.
    /// Must be ≥ the feed's maximum lateness to fully restore order —
    /// the same bound that makes dedup-key eviction safe (a redelivery
    /// can only arrive within the lateness bound of its generation
    /// minute).
    pub reorder_horizon: u32,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            max_retries: 5,
            reorder_horizon: 64,
        }
    }
}

/// Why an entry was quarantined instead of ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The payload no longer matches its sender-side checksum — damaged
    /// in flight.
    ChecksumMismatch {
        /// Checksum the sender computed.
        expected: u32,
        /// Checksum of the bytes that arrived.
        actual: u32,
    },
    /// The payload passed its checksum but failed to decode as a scan
    /// report (sender-side damage or a framing bug).
    DecodeFailure,
    /// The payload decoded but bytes were left over — the frame holds
    /// more than one report's worth of data.
    TrailingBytes {
        /// Number of undecoded bytes left in the frame.
        leftover: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "payload checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            IngestError::DecodeFailure => write!(f, "payload failed to decode as a scan report"),
            IngestError::TrailingBytes { leftover } => {
                write!(f, "payload decoded with {leftover} trailing bytes")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// A collector configuration rejected by [`Collector::for_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectorConfigError {
    /// The reorder horizon does not cover the feed's lateness bound, so
    /// late arrivals would be emitted out of order and redeliveries
    /// could outlive their dedup keys.
    HorizonTooShort {
        /// The configured [`CollectorConfig::reorder_horizon`].
        horizon: u32,
        /// The plan's maximum lateness in minutes.
        max_lateness: u32,
    },
}

impl std::fmt::Display for CollectorConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectorConfigError::HorizonTooShort {
                horizon,
                max_lateness,
            } => write!(
                f,
                "reorder horizon {horizon} min is shorter than the feed's \
                 lateness bound {max_lateness} min: order restoration and \
                 dedup-key eviction would both be unsound"
            ),
        }
    }
}

impl std::error::Error for CollectorConfigError {}

/// An entry the collector refused, kept for inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedEntry {
    /// The minute whose poll delivered the entry.
    pub delivery_minute: i64,
    /// Why it was refused.
    pub error: IngestError,
    /// The offending entry, byte for byte.
    pub entry: FeedEntry,
}

/// Counters for one ingestion run. With a fixed feed seed these are
/// byte-identical run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Minutes successfully polled (including empty ones).
    pub polled_minutes: u64,
    /// Reports accepted into the output store.
    pub accepted: u64,
    /// Entries dropped as redeliveries of an accepted report.
    pub deduped: u64,
    /// Accepted reports that arrived after their generation minute and
    /// were re-sequenced by the reorder buffer.
    pub reordered: u64,
    /// Entries quarantined with an [`IngestError`].
    pub quarantined: u64,
    /// Failed poll attempts that were retried.
    pub retries: u64,
    /// Minutes abandoned after exhausting retries (hard outages).
    pub gap_minutes: u64,
    /// Entries lost inside abandoned minutes.
    pub lost_entries: u64,
    /// High-water mark of the reorder buffer, in reports.
    pub max_buffer_depth: u64,
    /// High-water mark of the dedup key set. Bounded by the reorder
    /// horizon's report volume, not the campaign length.
    pub max_dedup_keys: u64,
    /// Dedup keys evicted after their analysis minute passed the
    /// reorder watermark (no duplicate can legally arrive that late).
    pub dedup_evicted: u64,
    /// Reports emitted behind an already-emitted later report — 0
    /// whenever the horizon covers the feed's actual lateness bound.
    pub emitted_out_of_order: u64,
}

/// Everything an ingestion run produces.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The sealed store holding every accepted report.
    pub store: ReportStore,
    /// Run counters.
    pub stats: IngestStats,
    /// Refused entries, in delivery order.
    pub quarantine: Vec<QuarantinedEntry>,
}

/// Report identity key, analysis minute first: collision-free for
/// distinct reports because per-sample scan minutes strictly increase
/// in the platform model. The minute-major ordering serves both uses —
/// BTreeMap iteration over the reorder buffer is emission (time) order,
/// and the dedup set can evict everything behind the watermark with one
/// `split_off`.
type ReportKey = (i64, u128, u8);

fn report_key(r: &ScanReport) -> ReportKey {
    (r.analysis_date.0, r.sample.0, r.kind as u8)
}

/// The fault-tolerant feed collector. See the module docs for the
/// pipeline it implements.
#[derive(Debug, Default)]
pub struct Collector {
    config: CollectorConfig,
}

impl Collector {
    /// A collector with the given tuning.
    pub fn new(config: CollectorConfig) -> Self {
        Self { config }
    }

    /// A collector validated against the fault plan it will face:
    /// rejects a reorder horizon shorter than the plan's lateness bound
    /// (which would make both order restoration and dedup-key eviction
    /// unsound) instead of silently emitting out of order.
    pub fn for_plan(
        config: CollectorConfig,
        plan: &FaultPlan,
    ) -> Result<Self, CollectorConfigError> {
        if config.reorder_horizon < plan.max_lateness {
            return Err(CollectorConfigError::HorizonTooShort {
                horizon: config.reorder_horizon,
                max_lateness: plan.max_lateness,
            });
        }
        Ok(Self::new(config))
    }

    /// [`run`](Self::run) timed under the `collector/ingest` span, with
    /// the run's [`IngestStats`] mirrored into `obs` counters
    /// (`collector/accepted`, `collector/deduped`, …) and high-water
    /// gauges (`collector/max_buffer_depth`, `collector/max_dedup_keys`)
    /// afterwards. The ingestion itself is untouched — stats, store and
    /// quarantine are identical whether `obs` is enabled, disabled or
    /// [`Obs::noop`].
    /// `store/*` metrics (encode timings, sealed bytes) are recorded
    /// too: the run's store is built with [`ReportStore::with_obs`].
    pub fn run_with_obs(&self, feed: FaultyFeed, obs: &Obs) -> IngestOutcome {
        let outcome = obs.time("collector/ingest", || {
            self.run_into(feed, ReportStore::with_obs(obs))
        });
        if obs.is_enabled() {
            let s = &outcome.stats;
            obs.counter("collector/polled_minutes")
                .add(s.polled_minutes);
            obs.counter("collector/accepted").add(s.accepted);
            obs.counter("collector/deduped").add(s.deduped);
            obs.counter("collector/reordered").add(s.reordered);
            obs.counter("collector/quarantined").add(s.quarantined);
            obs.counter("collector/retries").add(s.retries);
            obs.counter("collector/gap_minutes").add(s.gap_minutes);
            obs.counter("collector/lost_entries").add(s.lost_entries);
            obs.counter("collector/dedup_evicted").add(s.dedup_evicted);
            obs.counter("collector/emitted_out_of_order")
                .add(s.emitted_out_of_order);
            obs.gauge("collector/max_buffer_depth")
                .set_max(s.max_buffer_depth);
            obs.gauge("collector/max_dedup_keys")
                .set_max(s.max_dedup_keys);
        }
        outcome
    }

    /// Drains `feed` to completion and returns the sealed store, the
    /// run counters, and the quarantine.
    pub fn run(&self, feed: FaultyFeed) -> IngestOutcome {
        self.run_into(feed, ReportStore::new())
    }

    /// [`run`](Self::run) into a caller-provided (possibly instrumented)
    /// empty store. Store content is independent of the store's own
    /// instrumentation.
    fn run_into(&self, mut feed: FaultyFeed, store: ReportStore) -> IngestOutcome {
        let mut stats = IngestStats::default();
        let mut quarantine = Vec::new();
        let mut seen: BTreeSet<ReportKey> = BTreeSet::new();
        // Reorder buffer, keyed so iteration order is emission order.
        let mut buffer: BTreeMap<ReportKey, ScanReport> = BTreeMap::new();
        let mut last_emitted_minute = i64::MIN;

        while let Some(minute) = feed.first_minute() {
            // Poll with retries; simulated exponential backoff (the
            // schedule is virtual-time, so backoff costs no wall clock
            // and adds no nondeterminism).
            let mut attempt = 0u32;
            let delivered = loop {
                match feed.poll(minute, attempt) {
                    Ok(entries) => {
                        stats.polled_minutes += 1;
                        break Some(entries);
                    }
                    Err(_) if attempt < self.config.max_retries => {
                        stats.retries += 1;
                        attempt += 1;
                    }
                    Err(_) => {
                        stats.gap_minutes += 1;
                        stats.lost_entries += feed.abandon(minute) as u64;
                        break None;
                    }
                }
            };

            for entry in delivered.into_iter().flatten() {
                match Self::decode_entry(&entry) {
                    Ok(report) => {
                        let key = report_key(&report);
                        if !seen.insert(key) {
                            stats.deduped += 1;
                            continue;
                        }
                        stats.max_dedup_keys = stats.max_dedup_keys.max(seen.len() as u64);
                        if minute > entry.generated_minute {
                            stats.reordered += 1;
                        }
                        buffer.insert(key, report);
                        stats.max_buffer_depth = stats.max_buffer_depth.max(buffer.len() as u64);
                    }
                    Err(error) => {
                        stats.quarantined += 1;
                        quarantine.push(QuarantinedEntry {
                            delivery_minute: minute,
                            error,
                            entry,
                        });
                    }
                }
            }

            // Emit everything the watermark has passed. Entries still
            // inside the horizon may yet be preceded by a late arrival.
            // The minute's ripe reports land in one `append_batch` (one
            // store-lock acquisition per minute, not per report); batch
            // order is buffer order, so the store content is identical
            // to per-report appends.
            let watermark = minute - self.config.reorder_horizon as i64;
            let mut ripe = Vec::new();
            while let Some((&key, _)) = buffer.iter().next() {
                if key.0 > watermark {
                    break;
                }
                let report = buffer.remove(&key).expect("first key present");
                Self::note_emit(&report, &mut last_emitted_minute, &mut stats);
                ripe.push(report);
            }
            if !ripe.is_empty() {
                store.append_batch(&ripe);
            }

            // Evict dedup keys the watermark has passed: a redelivery
            // arrives at most the lateness bound (≤ horizon) after its
            // generation minute, and future polls are strictly later
            // than this one, so a key at minute ≤ watermark can never
            // recur. Without this the set grows with the campaign.
            let retained = seen.split_off(&(watermark + 1, 0, 0));
            stats.dedup_evicted += seen.len() as u64;
            seen = retained;
        }

        // Feed drained: flush the tail of the buffer in order.
        let tail: Vec<ScanReport> = std::mem::take(&mut buffer).into_values().collect();
        for report in &tail {
            Self::note_emit(report, &mut last_emitted_minute, &mut stats);
        }
        if !tail.is_empty() {
            store.append_batch(&tail);
        }
        store.seal();

        IngestOutcome {
            store,
            stats,
            quarantine,
        }
    }

    /// Verifies and decodes one framed entry.
    fn decode_entry(entry: &FeedEntry) -> Result<ScanReport, IngestError> {
        let actual = crc32(&entry.payload);
        if actual != entry.checksum {
            return Err(IngestError::ChecksumMismatch {
                expected: entry.checksum,
                actual,
            });
        }
        let mut cursor: &[u8] = &entry.payload;
        let (report, _) = decode_report(&mut cursor, 0).ok_or(IngestError::DecodeFailure)?;
        if !cursor.is_empty() {
            return Err(IngestError::TrailingBytes {
                leftover: cursor.len(),
            });
        }
        Ok(report)
    }

    /// Books one report's emission (ordering check + counters); the
    /// caller appends the batch to the store.
    fn note_emit(report: &ScanReport, last_emitted_minute: &mut i64, stats: &mut IngestStats) {
        if report.analysis_date.0 < *last_emitted_minute {
            stats.emitted_out_of_order += 1;
        }
        *last_emitted_minute = (*last_emitted_minute).max(report.analysis_date.0);
        stats.accepted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_sim::fault::FaultPlan;
    use vt_sim::{SimConfig, VirusTotalSim};

    fn sim(samples: u64) -> VirusTotalSim {
        VirusTotalSim::new(SimConfig::new(0xFA117, samples))
    }

    fn feed(sim: &VirusTotalSim, samples: u64, plan: FaultPlan) -> FaultyFeed {
        FaultyFeed::from_sim(sim, 0..samples, plan)
    }

    #[test]
    fn clean_feed_ingests_everything_in_order() {
        let sim = sim(300);
        let expected: usize = vt_sim::TimeOrderedFeed::new(&sim, 0..300).count();
        let outcome = Collector::default().run(feed(&sim, 300, FaultPlan::clean(1)));
        assert_eq!(outcome.stats.accepted as usize, expected);
        assert_eq!(outcome.stats.deduped, 0);
        assert_eq!(outcome.stats.quarantined, 0);
        assert_eq!(outcome.stats.gap_minutes, 0);
        assert_eq!(outcome.stats.emitted_out_of_order, 0);
        assert_eq!(outcome.store.report_count() as usize, expected);
        assert!(outcome.quarantine.is_empty());
    }

    #[test]
    fn duplicates_are_absorbed_exactly() {
        let sim = sim(300);
        let clean: usize = vt_sim::TimeOrderedFeed::new(&sim, 0..300).count();
        let f = feed(&sim, 300, FaultPlan::clean(2).with_duplicates(0.4));
        let dups = f.duplicated_entries();
        assert!(dups > 0);
        let outcome = Collector::default().run(f);
        assert_eq!(outcome.stats.accepted as usize, clean);
        assert_eq!(outcome.stats.deduped, dups, "every duplicate absorbed");
        assert_eq!(outcome.store.report_count() as usize, clean);
    }

    /// Regression for the unbounded dedup set: keys behind the reorder
    /// watermark are evicted (duplicates beyond the lateness bound
    /// cannot legally arrive), yet every duplicate is still absorbed —
    /// including late-delivered ones under combined reordering.
    #[test]
    fn dedup_set_is_bounded_and_still_absorbs_all_duplicates() {
        let sim = sim(300);
        let clean: usize = vt_sim::TimeOrderedFeed::new(&sim, 0..300).count();
        let plan = FaultPlan::clean(7)
            .with_duplicates(0.4)
            .with_reordering(0.4, 30);
        let f = feed(&sim, 300, plan);
        let dups = f.duplicated_entries();
        assert!(dups > 0);
        let outcome = Collector::default().run(f);
        assert_eq!(outcome.stats.accepted as usize, clean);
        assert_eq!(outcome.stats.deduped, dups, "every duplicate absorbed");
        assert_eq!(outcome.store.report_count() as usize, clean);
        // The set was actually evicted down, and its high-water mark
        // stayed far below the campaign's total key count (which is
        // what the old HashSet grew to).
        assert!(outcome.stats.dedup_evicted > 0, "eviction engaged");
        assert!(
            outcome.stats.max_dedup_keys < outcome.stats.accepted / 2,
            "dedup set bounded by the horizon, not the campaign: {} keys vs {} accepted",
            outcome.stats.max_dedup_keys,
            outcome.stats.accepted
        );
        // Eviction accounts for every accepted key that left the set.
        assert!(outcome.stats.dedup_evicted <= outcome.stats.accepted);
    }

    #[test]
    fn reordering_is_restored_within_horizon() {
        let sim = sim(300);
        let plan = FaultPlan::clean(3).with_reordering(0.5, 20);
        let config = CollectorConfig {
            reorder_horizon: 20,
            ..CollectorConfig::default()
        };
        let outcome = Collector::new(config).run(feed(&sim, 300, plan));
        assert!(outcome.stats.reordered > 0, "late arrivals observed");
        assert_eq!(
            outcome.stats.emitted_out_of_order, 0,
            "order fully restored"
        );
    }

    #[test]
    fn corruption_is_quarantined_not_ingested() {
        let sim = sim(300);
        let f = feed(&sim, 300, FaultPlan::clean(4).with_corruption(0.1));
        let corrupted = f.corrupted_entries();
        let scheduled = f.scheduled_entries();
        assert!(corrupted > 0);
        let outcome = Collector::default().run(f);
        assert_eq!(outcome.stats.quarantined, corrupted);
        assert_eq!(outcome.quarantine.len() as u64, corrupted);
        assert_eq!(outcome.stats.accepted, scheduled - corrupted);
        for q in &outcome.quarantine {
            assert!(
                matches!(q.error, IngestError::ChecksumMismatch { .. }),
                "bit flips are caught by the checksum: {:?}",
                q.error
            );
            assert!(!q.entry.checksum_ok());
        }
    }

    #[test]
    fn outages_retry_then_gap() {
        let sim = sim(300);
        let plan = FaultPlan::clean(5).with_outages(0.10, 0.3);
        let outcome = Collector::default().run(feed(&sim, 300, plan));
        assert!(outcome.stats.retries > 0, "transient outages retried");
        assert!(outcome.stats.gap_minutes > 0, "hard outages become gaps");
        assert_eq!(
            outcome.stats.accepted + outcome.stats.lost_entries,
            vt_sim::TimeOrderedFeed::new(&sim, 0..300).count() as u64,
            "every entry is either ingested or accounted lost"
        );
    }

    #[test]
    fn for_plan_rejects_a_horizon_below_the_lateness_bound() {
        let plan = FaultPlan::clean(1).with_reordering(0.3, 40);
        let short = CollectorConfig {
            reorder_horizon: 20,
            ..CollectorConfig::default()
        };
        assert_eq!(
            Collector::for_plan(short, &plan).unwrap_err(),
            CollectorConfigError::HorizonTooShort {
                horizon: 20,
                max_lateness: 40,
            }
        );
        // The default horizon (64) covers the bound.
        assert!(Collector::for_plan(CollectorConfig::default(), &plan).is_ok());
    }

    #[test]
    fn obs_mirrors_stats_without_changing_the_run() {
        let sim = sim(300);
        let plan = FaultPlan::clean(8)
            .with_duplicates(0.3)
            .with_reordering(0.3, 15)
            .with_corruption(0.05);
        let plain = Collector::default().run(feed(&sim, 300, plan));
        let obs = Obs::new();
        let observed = Collector::default().run_with_obs(feed(&sim, 300, plan), &obs);
        assert_eq!(plain.stats, observed.stats);
        assert_eq!(plain.store.report_count(), observed.store.report_count());
        let m = obs.snapshot();
        assert_eq!(m.counter("collector/accepted"), Some(plain.stats.accepted));
        assert_eq!(m.counter("collector/deduped"), Some(plain.stats.deduped));
        assert_eq!(
            m.counter("collector/quarantined"),
            Some(plain.stats.quarantined)
        );
        assert_eq!(
            m.gauge("collector/max_buffer_depth"),
            Some(plain.stats.max_buffer_depth)
        );
        assert_eq!(m.span("collector/ingest").map(|s| s.count), Some(1));
        // The run's store is instrumented too: every accepted report
        // was encoded exactly once.
        assert_eq!(
            m.counter("store/encoded_reports"),
            Some(plain.stats.accepted)
        );
        assert!(m.gauge("store/sealed_bytes").unwrap_or(0) > 0);
        // A disabled handle records nothing and changes nothing.
        let off = Obs::disabled();
        let silent = Collector::default().run_with_obs(feed(&sim, 300, plan), &off);
        assert_eq!(silent.stats, plain.stats);
        assert!(off.snapshot().counters.is_empty());
    }

    #[test]
    fn stats_are_deterministic() {
        let sim = sim(300);
        let plan = FaultPlan::clean(6)
            .with_duplicates(0.2)
            .with_reordering(0.3, 15)
            .with_corruption(0.05)
            .with_outages(0.05, 0.2);
        let a = Collector::default().run(feed(&sim, 300, plan));
        let b = Collector::default().run(feed(&sim, 300, plan));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.quarantine, b.quarantine);
        assert_eq!(a.store.report_count(), b.store.report_count());
    }
}
