//! The columnar trajectory table: the structure-of-arrays layout every
//! analysis stage reads instead of walking `ScanReport` structs.
//!
//! One parallel pass over the records (kernel `table_build`) flattens
//! every trajectory into flat columns — AV-Ranks, analysis-date
//! minutes, verdict bitmap words — indexed CSR-style by per-record
//! offsets, plus per-record precomputed envelopes (`p_min`/`p_max`,
//! hence Δ), dense file-type indices and the membership flags the
//! pipeline keeps re-deriving (`is_multi_report`, `is_stable`,
//! `is_fresh`, `is_top20`, `is_pe`, and *S* membership). The stages
//! then run as [`crate::par::map_ranges`] partition-reductions over
//! index ranges of this table: no stage allocates per record, and no
//! stage touches a `ScanReport` or `VerdictVec` again.
//!
//! Construction is deterministic at every worker count: partitions
//! cover contiguous record ranges and their column chunks are
//! concatenated in partition order, so the table — and therefore every
//! stage output derived from it — is bit-identical whether it was built
//! by 1 thread or 16.

use crate::arena::DecodeArena;
use crate::par;
use crate::records::SampleRecord;
use vt_model::time::Timestamp;
use vt_model::{EngineId, FileType, SampleHash};
use vt_obs::Obs;

/// Per-record membership flags, packed into one byte.
mod flag {
    /// More than one report (§5.1 measurable subset).
    pub const MULTI: u8 = 1 << 0;
    /// Δ = 0 over a non-empty trajectory (§5.1 *stable*).
    pub const STABLE: u8 = 1 << 1;
    /// First submitted inside the observation window.
    pub const FRESH: u8 = 1 << 2;
    /// One of the top-20 named file types.
    pub const TOP20: u8 = 1 << 3;
    /// A PE (Win32 EXE/DLL) sample.
    pub const PE: u8 = 1 << 4;
    /// Member of the fresh dynamic dataset *S* (§5.3.1).
    pub const IN_S: u8 = 1 << 5;
}

/// The columnar (structure-of-arrays) view of a record set.
///
/// Per-report columns are indexed by *row*; record `i`'s rows are
/// `rows(i)` (CSR offsets). Per-record columns are indexed by record.
#[derive(Debug, Clone)]
pub struct TrajectoryTable {
    /// CSR offsets: record `i` owns rows `offsets[i]..offsets[i+1]`.
    offsets: Vec<u64>,
    /// Per-report AV-Rank (the `positives` field).
    positives: Vec<u32>,
    /// Per-report analysis date, in minutes since the epoch.
    date_min: Vec<i64>,
    /// Per-report verdict bitmap: active words.
    active: Vec<[u64; 2]>,
    /// Per-report verdict bitmap: detected words.
    detected: Vec<[u64; 2]>,
    /// Per-record dense file-type index.
    type_idx: Vec<u16>,
    /// Per-record minimum AV-Rank (0 for empty records).
    p_min: Vec<u32>,
    /// Per-record maximum AV-Rank (0 for empty records).
    p_max: Vec<u32>,
    /// Per-record membership flags.
    flags: Vec<u8>,
    /// Per-record sample hash (the record → sample join key).
    hashes: Vec<SampleHash>,
    /// The observation-window start the freshness flags were taken at.
    window_start: Timestamp,
}

/// The final column buffers, pre-sized, that build workers fill in
/// place.
struct Columns {
    positives: Vec<u32>,
    date_min: Vec<i64>,
    active: Vec<[u64; 2]>,
    detected: Vec<[u64; 2]>,
    type_idx: Vec<u16>,
    p_min: Vec<u32>,
    p_max: Vec<u32>,
    flags: Vec<u8>,
    hashes: Vec<SampleHash>,
}

/// One worker's disjoint `&mut` window over [`Columns`]: per-record
/// columns sliced along record boundaries, per-row columns along the
/// corresponding CSR row boundaries.
struct ColumnsMut<'a> {
    positives: &'a mut [u32],
    date_min: &'a mut [i64],
    active: &'a mut [[u64; 2]],
    detected: &'a mut [[u64; 2]],
    type_idx: &'a mut [u16],
    p_min: &'a mut [u32],
    p_max: &'a mut [u32],
    flags: &'a mut [u8],
    hashes: &'a mut [SampleHash],
}

/// Splits `n` elements off the front of `*s`, advancing it.
fn take_front<'a, T>(s: &mut &'a mut [T], n: usize) -> &'a mut [T] {
    let (head, tail) = std::mem::take(s).split_at_mut(n);
    *s = tail;
    head
}

impl Columns {
    /// Zero-initialized buffers for `records` records / `rows` rows.
    /// The zeroing is one `memset` per column — cheap next to the fill —
    /// and every slot is overwritten by exactly one worker.
    fn zeroed(records: usize, rows: usize) -> Self {
        Self {
            positives: vec![0; rows],
            date_min: vec![0; rows],
            active: vec![[0; 2]; rows],
            detected: vec![[0; 2]; rows],
            type_idx: vec![0; records],
            p_min: vec![0; records],
            p_max: vec![0; records],
            flags: vec![0; records],
            hashes: vec![SampleHash(0); records],
        }
    }

    /// Carves the columns into one disjoint [`ColumnsMut`] per record
    /// range (ranges must be contiguous and ascending, as
    /// [`par::partition_ranges`] produces).
    fn split<'a>(
        &'a mut self,
        ranges: &[std::ops::Range<u64>],
        offsets: &[u64],
    ) -> Vec<ColumnsMut<'a>> {
        let mut positives = self.positives.as_mut_slice();
        let mut date_min = self.date_min.as_mut_slice();
        let mut active = self.active.as_mut_slice();
        let mut detected = self.detected.as_mut_slice();
        let mut type_idx = self.type_idx.as_mut_slice();
        let mut p_min = self.p_min.as_mut_slice();
        let mut p_max = self.p_max.as_mut_slice();
        let mut flags = self.flags.as_mut_slice();
        let mut hashes = self.hashes.as_mut_slice();
        ranges
            .iter()
            .map(|r| {
                let recs = (r.end - r.start) as usize;
                let rows = (offsets[r.end as usize] - offsets[r.start as usize]) as usize;
                ColumnsMut {
                    positives: take_front(&mut positives, rows),
                    date_min: take_front(&mut date_min, rows),
                    active: take_front(&mut active, rows),
                    detected: take_front(&mut detected, rows),
                    type_idx: take_front(&mut type_idx, recs),
                    p_min: take_front(&mut p_min, recs),
                    p_max: take_front(&mut p_max, recs),
                    flags: take_front(&mut flags, recs),
                    hashes: take_front(&mut hashes, recs),
                }
            })
            .collect()
    }
}

/// Packs the per-record membership flags from their ingredients —
/// the single definition both build paths share, so flag semantics
/// cannot drift between them.
fn pack_flags(n: usize, p_min: u32, p_max: u32, file_type: FileType, fresh: bool) -> u8 {
    let multi = n > 1;
    let stable = n > 0 && p_min == p_max;
    let top20 = file_type.is_top20();
    let mut f = 0u8;
    f |= if multi { flag::MULTI } else { 0 };
    f |= if stable { flag::STABLE } else { 0 };
    f |= if fresh { flag::FRESH } else { 0 };
    f |= if top20 { flag::TOP20 } else { 0 };
    f |= if file_type.is_pe() { flag::PE } else { 0 };
    if top20 && fresh && multi && !stable {
        f |= flag::IN_S;
    }
    f
}

impl TrajectoryTable {
    /// Builds the table with default parallelism and no observation.
    pub fn build(records: &[SampleRecord], window_start: Timestamp) -> Self {
        Self::build_with(records, window_start, par::default_workers(), Obs::noop())
    }

    /// Builds the table over `workers` threads under the `table_build`
    /// kernel. The result is bit-identical at every worker count.
    ///
    /// Two passes: a serial offsets pass (one report-count read per
    /// record) sizes the CSR layout, then one parallel pass writes every
    /// column value directly into its final slot — each worker owns a
    /// disjoint `&mut` window of the final buffers
    /// ([`par::map_ranges_with_obs`]), so no per-worker chunk
    /// allocation and no concatenation pass exist to pay for.
    pub fn build_with(
        records: &[SampleRecord],
        window_start: Timestamp,
        workers: usize,
        obs: &Obs,
    ) -> Self {
        let mut offsets = Vec::with_capacity(records.len() + 1);
        offsets.push(0u64);
        let mut next = 0u64;
        for r in records {
            next += r.reports.len() as u64;
            offsets.push(next);
        }
        let rows = next as usize;
        let mut cols = Columns::zeroed(records.len(), rows);
        let ranges = par::partition_ranges(records.len() as u64, workers);
        let payloads = cols.split(&ranges, &offsets);
        par::map_ranges_with_obs(
            &ranges,
            payloads,
            obs,
            "table_build",
            |_, range, w: ColumnsMut<'_>| {
                let base = range.start as usize;
                let mut rc = 0usize;
                for (k, r) in records[base..range.end as usize].iter().enumerate() {
                    let mut p_min = u32::MAX;
                    let mut p_max = 0u32;
                    for rep in &r.reports {
                        let p = rep.positives();
                        p_min = p_min.min(p);
                        p_max = p_max.max(p);
                        w.positives[rc] = p;
                        w.date_min[rc] = rep.analysis_date.0;
                        let (a, d) = rep.verdicts.raw();
                        w.active[rc] = a;
                        w.detected[rc] = d;
                        rc += 1;
                    }
                    let n = r.reports.len();
                    if n == 0 {
                        p_min = 0;
                        p_max = 0;
                    }
                    w.type_idx[k] = r.meta.file_type.dense_index() as u16;
                    w.p_min[k] = p_min;
                    w.p_max[k] = p_max;
                    w.flags[k] = pack_flags(
                        n,
                        p_min,
                        p_max,
                        r.meta.file_type,
                        r.meta.is_fresh(window_start),
                    );
                    w.hashes[k] = r.meta.hash;
                }
            },
        );
        Self {
            offsets,
            positives: cols.positives,
            date_min: cols.date_min,
            active: cols.active,
            detected: cols.detected,
            type_idx: cols.type_idx,
            p_min: cols.p_min,
            p_max: cols.p_max,
            flags: cols.flags,
            hashes: cols.hashes,
            window_start,
        }
    }

    /// Builds the table straight from a [`DecodeArena`] of streamed
    /// report rows — the zero-copy segment-fold path: no
    /// `Vec<ScanReport>`, no `SampleRecord`, no per-sample `Vec` is ever
    /// allocated.
    ///
    /// Row order is canonicalized by sorting a permutation of the
    /// arena's rows by `(sample hash, analysis date, arrival index)`.
    /// That reproduces the row-struct path exactly:
    /// [`vt_store::ReportStore::group_by_sample`] groups rows in
    /// physical arrival order, stable-sorts each group by analysis date
    /// (so equal dates keep arrival order), and emits groups
    /// hash-ascending — the same total order. Derived per-record
    /// metadata follows [`crate::records::records_from_store`]: the
    /// file type is the first (earliest, arrival-tie-broken) row's, and
    /// freshness compares the minimum submission date across rows with
    /// `window_start`. The result is therefore bit-identical to
    /// `build_with(records_from_store(store), ..)` at every worker
    /// count.
    pub fn build_from_arena(
        arena: &DecodeArena,
        window_start: Timestamp,
        workers: usize,
        obs: &Obs,
    ) -> Self {
        let rows = arena.rows();
        // Canonical row order: (hash, date, arrival). The arrival index
        // makes the key total, so the unstable sort is deterministic and
        // equal to a stable (hash, date) sort. Keys are packed into a
        // contiguous buffer instead of sorting an index permutation:
        // the comparator then reads sequential 32-byte tuples rather
        // than chasing 48-byte rows at random, which is ~2.4x faster at
        // the 500k-sample bench scale.
        let mut keys: Vec<(u128, i64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.hash.0, r.analysis, i as u32))
            .collect();
        keys.sort_unstable();
        // Serial CSR pass: record boundaries are hash changes.
        let mut offsets = vec![0u64];
        if !rows.is_empty() {
            for k in 1..keys.len() {
                if keys[k - 1].0 != keys[k].0 {
                    offsets.push(k as u64);
                }
            }
            offsets.push(rows.len() as u64);
        }
        let records = offsets.len() - 1;
        let mut cols = Columns::zeroed(records, rows.len());
        let ranges = par::partition_ranges(records as u64, workers);
        let payloads = cols.split(&ranges, &offsets);
        par::map_ranges_with_obs(
            &ranges,
            payloads,
            obs,
            "table_build",
            |_, range, w: ColumnsMut<'_>| {
                let row_base = offsets[range.start as usize] as usize;
                for (k, i) in (range.start as usize..range.end as usize).enumerate() {
                    let span = offsets[i] as usize..offsets[i + 1] as usize;
                    let mut p_min = u32::MAX;
                    let mut p_max = 0u32;
                    let mut first_submission = i64::MAX;
                    for (rc, &(_, _, ri)) in span.clone().zip(&keys[span.clone()]) {
                        let row = &rows[ri as usize];
                        let p = row.detected[0].count_ones() + row.detected[1].count_ones();
                        p_min = p_min.min(p);
                        p_max = p_max.max(p);
                        first_submission = first_submission.min(row.submission);
                        let out = rc - row_base;
                        w.positives[out] = p;
                        w.date_min[out] = row.analysis;
                        w.active[out] = row.active;
                        w.detected[out] = row.detected;
                    }
                    let n = span.len();
                    debug_assert!(n > 0, "records from rows are nonempty");
                    let first = &rows[keys[span.start].2 as usize];
                    let file_type = FileType::from_dense_index(first.type_idx as usize);
                    let fresh = first_submission >= window_start.0;
                    w.type_idx[k] = first.type_idx;
                    w.p_min[k] = p_min;
                    w.p_max[k] = p_max;
                    w.flags[k] = pack_flags(n, p_min, p_max, file_type, fresh);
                    w.hashes[k] = first.hash;
                }
            },
        );
        Self {
            offsets,
            positives: cols.positives,
            date_min: cols.date_min,
            active: cols.active,
            detected: cols.detected,
            type_idx: cols.type_idx,
            p_min: cols.p_min,
            p_max: cols.p_max,
            flags: cols.flags,
            hashes: cols.hashes,
            window_start,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when the table covers no records.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Total report rows across all records.
    pub fn report_rows(&self) -> usize {
        self.positives.len()
    }

    /// The row range of record `i`'s reports, analysis-date ascending.
    pub fn rows(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Record `i`'s report count.
    pub fn report_count(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Record `i`'s AV-Rank sequence, as a contiguous slice.
    pub fn positives_of(&self, i: usize) -> &[u32] {
        &self.positives[self.rows(i)]
    }

    /// Record `i`'s analysis dates in minutes, as a contiguous slice.
    pub fn dates_of(&self, i: usize) -> &[i64] {
        &self.date_min[self.rows(i)]
    }

    /// One row's analysis date.
    pub fn date(&self, row: usize) -> Timestamp {
        Timestamp(self.date_min[row])
    }

    /// One row's active-engine bitmap words.
    pub fn active_words(&self, row: usize) -> [u64; 2] {
        self.active[row]
    }

    /// The whole active-bitmap plane, one `[u64; 2]` per report row —
    /// for streaming kernels that walk every row and want bounds checks
    /// hoisted out of the loop.
    pub fn active_rows(&self) -> &[[u64; 2]] {
        &self.active
    }

    /// The whole detected-bitmap plane, aligned with
    /// [`active_rows`](Self::active_rows).
    pub fn detected_rows(&self) -> &[[u64; 2]] {
        &self.detected
    }

    /// One row's detected-engine bitmap words.
    pub fn detected_words(&self, row: usize) -> [u64; 2] {
        self.detected[row]
    }

    /// One engine's binary label in one row: `None` when the engine was
    /// inactive, else `Some(1)` for malicious / `Some(0)` for benign —
    /// exactly [`vt_model::Verdict::binary_label`] on the original
    /// verdict vector.
    pub fn binary_label(&self, row: usize, engine: EngineId) -> Option<u8> {
        let (w, b) = (engine.index() / 64, engine.index() % 64);
        if self.active[row][w] & (1u64 << b) == 0 {
            None
        } else {
            Some(((self.detected[row][w] >> b) & 1) as u8)
        }
    }

    /// Record `i`'s file type.
    pub fn file_type(&self, i: usize) -> FileType {
        FileType::from_dense_index(self.type_idx[i] as usize)
    }

    /// Record `i`'s dense file-type index.
    pub fn type_idx(&self, i: usize) -> usize {
        self.type_idx[i] as usize
    }

    /// Record `i`'s minimum AV-Rank (0 for empty records).
    pub fn p_min(&self, i: usize) -> u32 {
        self.p_min[i]
    }

    /// Record `i`'s maximum AV-Rank (0 for empty records).
    pub fn p_max(&self, i: usize) -> u32 {
        self.p_max[i]
    }

    /// `Δ = p_max − p_min`; `None` with no reports — exactly
    /// [`SampleRecord::delta_max`].
    pub fn delta_max(&self, i: usize) -> Option<u32> {
        (self.report_count(i) > 0).then(|| self.p_max[i] - self.p_min[i])
    }

    /// True when record `i` has more than one report.
    pub fn is_multi_report(&self, i: usize) -> bool {
        self.flags[i] & flag::MULTI != 0
    }

    /// True when record `i` is §5.1 *stable* (Δ = 0, non-empty).
    pub fn is_stable(&self, i: usize) -> bool {
        self.flags[i] & flag::STABLE != 0
    }

    /// True when record `i` was first submitted inside the window.
    pub fn is_fresh(&self, i: usize) -> bool {
        self.flags[i] & flag::FRESH != 0
    }

    /// True when record `i` is of a top-20 named type.
    pub fn is_top20(&self, i: usize) -> bool {
        self.flags[i] & flag::TOP20 != 0
    }

    /// True when record `i` is a PE (Win32 EXE/DLL) sample.
    pub fn is_pe(&self, i: usize) -> bool {
        self.flags[i] & flag::PE != 0
    }

    /// True when record `i` belongs to the fresh dynamic dataset *S*.
    pub fn in_s(&self, i: usize) -> bool {
        self.flags[i] & flag::IN_S != 0
    }

    /// Record `i`'s sample hash.
    pub fn hash(&self, i: usize) -> SampleHash {
        self.hashes[i]
    }

    /// The per-record sample-hash column.
    pub fn hashes(&self) -> &[SampleHash] {
        &self.hashes
    }

    /// The raw per-record flag bytes — the bulk-scan view the widened
    /// freshdyn kernel reads eight records at a time.
    pub(crate) fn flags_raw(&self) -> &[u8] {
        &self.flags
    }

    /// The raw IN_S flag bit, for mask-based bulk scans over
    /// [`flags_raw`](Self::flags_raw).
    pub(crate) const IN_S_BIT: u8 = flag::IN_S;

    /// The window start the freshness flags were computed against.
    pub fn window_start(&self) -> Timestamp {
        self.window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Study;
    use vt_model::Verdict;
    use vt_sim::SimConfig;

    fn study() -> Study {
        Study::generate_with_workers(SimConfig::new(0x7AB1E, 3_000), 2)
    }

    #[test]
    fn columns_mirror_records() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let t = TrajectoryTable::build(records, ws);
        assert_eq!(t.len(), records.len());
        let rows: usize = records.iter().map(|r| r.reports.len()).sum();
        assert_eq!(t.report_rows(), rows);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(t.report_count(i), r.reports.len());
            assert_eq!(t.positives_of(i), r.positives().as_slice(), "record {i}");
            assert_eq!(t.delta_max(i), r.delta_max());
            assert_eq!(t.is_stable(i), r.is_stable());
            assert_eq!(t.is_multi_report(i), r.is_multi_report());
            assert_eq!(t.is_fresh(i), r.meta.is_fresh(ws));
            assert_eq!(t.is_top20(i), r.meta.file_type.is_top20());
            assert_eq!(t.is_pe(i), r.meta.file_type.is_pe());
            assert_eq!(t.file_type(i), r.meta.file_type);
            assert_eq!(t.type_idx(i), r.meta.file_type.dense_index());
            assert_eq!(t.hash(i), r.meta.hash);
            for (row, rep) in t.rows(i).zip(&r.reports) {
                assert_eq!(t.date(row), rep.analysis_date);
                let (a, d) = rep.verdicts.raw();
                assert_eq!(t.active_words(row), a);
                assert_eq!(t.detected_words(row), d);
            }
        }
    }

    #[test]
    fn build_is_identical_at_every_worker_count() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let base = TrajectoryTable::build_with(records, ws, 1, Obs::noop());
        for workers in [2usize, 3, 8] {
            let t = TrajectoryTable::build_with(records, ws, workers, Obs::noop());
            assert_eq!(t.offsets, base.offsets, "workers={workers}");
            assert_eq!(t.positives, base.positives, "workers={workers}");
            assert_eq!(t.date_min, base.date_min, "workers={workers}");
            assert_eq!(t.active, base.active, "workers={workers}");
            assert_eq!(t.detected, base.detected, "workers={workers}");
            assert_eq!(t.type_idx, base.type_idx, "workers={workers}");
            assert_eq!(t.p_min, base.p_min, "workers={workers}");
            assert_eq!(t.p_max, base.p_max, "workers={workers}");
            assert_eq!(t.flags, base.flags, "workers={workers}");
            assert_eq!(t.hashes, base.hashes, "workers={workers}");
        }
    }

    #[test]
    fn binary_label_matches_verdicts() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let t = TrajectoryTable::build(records, ws);
        let engines = study.sim().fleet().engine_count();
        for (i, r) in records.iter().enumerate().take(200) {
            for (row, rep) in t.rows(i).zip(&r.reports) {
                for e in 0..engines {
                    let id = EngineId::new(e);
                    assert_eq!(
                        t.binary_label(row, id),
                        rep.verdicts.get(id).binary_label(),
                        "record {i} engine {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn in_s_matches_the_freshdyn_filters() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let t = TrajectoryTable::build(records, ws);
        for (i, r) in records.iter().enumerate() {
            let expect = r.meta.file_type.is_top20()
                && r.meta.is_fresh(ws)
                && r.is_multi_report()
                && !r.is_stable();
            assert_eq!(t.in_s(i), expect, "record {i}");
        }
        assert!((0..t.len()).any(|i| t.in_s(i)), "study too small for S");
    }

    #[test]
    fn table_build_kernel_is_instrumented() {
        let study = study();
        let obs = Obs::new();
        let _ = TrajectoryTable::build_with(
            study.records(),
            study.sim().config().window_start(),
            4,
            &obs,
        );
        let m = obs.snapshot();
        assert_eq!(m.counter("par/table_build/invocations"), Some(1));
        assert!(m.histogram("par/table_build/worker_busy_ns").is_some());
    }

    #[test]
    fn empty_record_set() {
        let t = TrajectoryTable::build(&[], Timestamp(0));
        assert!(t.is_empty());
        assert_eq!(t.report_rows(), 0);
    }

    /// `Verdict::binary_label` is the contract `binary_label` mirrors.
    #[test]
    fn binary_label_contract() {
        assert_eq!(Verdict::Malicious.binary_label(), Some(1));
        assert_eq!(Verdict::Benign.binary_label(), Some(0));
        assert_eq!(Verdict::Undetected.binary_label(), None);
    }
}
